"""E9 -- Fig. 6: CKA between the final CLS token and per-block tokens.

Regenerates the depth profile of linear-CKA similarity that motivates
pruning later blocks first (tokens are encoded poorly in front blocks).
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.vit import cls_token_cka_profile


def test_fig6_cka_profile(benchmark, trained_backbone, bench_data):
    _, val = bench_data

    def profile():
        return cls_token_cka_profile(trained_backbone, val.images[:48])

    values = benchmark.pedantic(profile, rounds=1, iterations=1)
    depth = trained_backbone.config.depth
    rows = [(f"block {i}", f"{values[i]:.3f}") for i in range(depth)]
    print_table("Fig. 6: CKA(final CLS, block tokens)",
                ["Block", "CKA"], rows)
    # Weak-to-strong tendency: the last block is the most similar, and
    # the back half dominates the front half on average.
    series = [values[i] for i in range(depth)]
    front = np.mean(series[:depth // 2])
    back = np.mean(series[depth // 2:])
    assert series[-1] >= max(series[:depth // 2])
    assert back >= front
    assert all(0.0 <= v <= 1.0 for v in series)
