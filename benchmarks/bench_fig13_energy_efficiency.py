"""E13 -- Fig. 13: energy efficiency of HeatViT vs TX2 CPU/GPU.

Regenerates the normalized speedup bars and the FPS/W comparison, plus
the pruning/quantization improvement breakdown.
"""

import pytest

from benchmarks.conftest import print_table
from repro.hardware import compare_platforms, speedup_breakdown
from repro.vit import DEIT_BASE, DEIT_SMALL, DEIT_TINY, LVVIT_SMALL, StagePlan

PLAN_RATIOS = (0.70, 0.39, 0.21)
MODELS = [DEIT_TINY, DEIT_SMALL, LVVIT_SMALL, DEIT_BASE]


def run_comparison(config):
    plan = StagePlan.canonical(config.depth, PLAN_RATIOS)
    return compare_platforms(config, plan)


@pytest.mark.parametrize("config", MODELS, ids=lambda c: c.name)
def test_fig13_platforms(benchmark, config):
    results = benchmark(run_comparison, config)
    rows = [(r.platform, "pruned" if r.pruned else "dense",
             f"{r.fps:.2f}", f"{r.power_w:.2f}",
             f"{r.speedup_vs_cpu_dense:.1f}x",
             f"{r.energy_efficiency:.3f}") for r in results]
    print_table(f"Fig. 13 ({config.name})",
                ["Platform", "Mode", "FPS", "Power(W)",
                 "Speedup vs CPU", "FPS/W"], rows)
    by_key = {(r.platform, r.pruned): r for r in results}
    fpga = by_key[("FPGA-HeatViT", True)]
    gpu_pruned = by_key[("TX2-GPU", True)]
    cpu_pruned = by_key[("TX2-CPU", True)]
    # Orderings of the figure.
    assert (fpga.speedup_vs_cpu_dense
            > by_key[("TX2-GPU", False)].speedup_vs_cpu_dense
            > by_key[("TX2-CPU", True)].speedup_vs_cpu_dense
            >= 1.0)
    # Energy-efficiency wins (paper: 3.0-4.7x over GPU, 242-719x CPU).
    assert fpga.energy_efficiency / gpu_pruned.energy_efficiency > 1.5
    assert fpga.energy_efficiency / cpu_pruned.energy_efficiency > 50


def test_fig13_breakdown(benchmark):
    def all_breakdowns():
        return {c.name: speedup_breakdown(
            c, StagePlan.canonical(c.depth, PLAN_RATIOS)) for c in MODELS}

    breakdowns = benchmark(all_breakdowns)
    rows = [(name, f"{b['pruning']:.2f}x", f"{b['quantization']:.2f}x",
             f"{b['total']:.2f}x") for name, b in breakdowns.items()]
    print_table("Fig. 13 improvement breakdown",
                ["Model", "Token pruning", "8-bit quant", "Total"], rows)
    for b in breakdowns.values():
        # Paper: pruning 1.82x-2.58x, quantization ~1.90x.
        assert 1.3 < b["pruning"] < 2.9
        assert 1.5 < b["quantization"] < 2.6
