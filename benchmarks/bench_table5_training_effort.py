"""E5 -- Table V: training effort for different backbones.

Reprints the paper's epoch budget per backbone (an input to the method,
encoded in the configs) and *measures* the claim that the block-to-stage
pipeline costs no more than training from scratch, using the small-scale
trainer.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_CONFIG, fresh_copy, print_table
from repro.core import (BlockToStageTrainer, LatencySparsityTable,
                        TrainConfig)
from repro.vit import (DEIT_BASE, DEIT_SMALL, DEIT_TINY, LVVIT_MEDIUM,
                       LVVIT_SMALL)


def test_table5_epoch_budgets(benchmark):
    def build():
        return [(c.name, c.num_heads, c.embed_dim, c.depth,
                 c.baseline_epochs, c.heatvit_epochs)
                for c in (DEIT_TINY, DEIT_SMALL, DEIT_BASE, LVVIT_SMALL,
                          LVVIT_MEDIUM)]

    rows = benchmark(build)
    print_table("Table V: training effort",
                ["Model", "#Heads", "Embed", "Depth",
                 "Baseline epochs", "HeatViT epochs"], rows)
    for _, _, _, _, baseline, ours in rows:
        assert ours <= baseline          # "roughly 90% of from-scratch"
        assert ours / baseline >= 0.85


def test_table5_pipeline_effort_measured(benchmark, trained_backbone,
                                         bench_data):
    """Run Algorithm 1 at small scale and count epochs actually spent;
    the pipeline must stay within the from-scratch budget (25 epochs at
    this scale)."""
    train, val = bench_data

    def run():
        table = LatencySparsityTable(
            {0.5: 0.62, 0.6: 0.70, 0.7: 0.78, 0.8: 0.86, 0.9: 0.94,
             1.0: 1.0})
        trainer = BlockToStageTrainer(
            fresh_copy(trained_backbone),
            (train.images[:160], train.labels[:160]),
            (val.images, val.labels),
            table,
            TrainConfig(epochs=1, batch_size=32, lr=5e-4,
                        lambda_distill=0.0),
            min_block=2, ratio_grid=(0.7, 0.5),
            rng=np.random.default_rng(6))
        model, report = trainer.run(latency_limit=5.3,
                                    accuracy_drop=0.30)
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nepochs spent by block-to-stage pipeline: "
          f"{report.epochs_spent} (from-scratch budget: 25)")
    print(f"stages: {report.stage_boundaries} "
          f"ratios: {tuple(round(r, 2) for r in report.stage_keep_ratios)}")
    assert report.epochs_spent <= 25
    assert report.epochs_spent > 0
