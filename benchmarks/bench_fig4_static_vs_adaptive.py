"""E7 -- Fig. 4: static vs image-adaptive token pruning.

Static pruning keeps the same fraction for every image; HeatViT's
selector keeps fewer tokens for simple images and more for complex
ones.  We regenerate the per-image keep-ratio distributions per stage
and correlate adaptive keep ratios with ground-truth object size.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_CONFIG, fresh_copy, print_table
from repro.core import HeatViT, PruningRecord, TrainConfig, train_heatvit
from repro.vit import StagePlan

RATIOS = (0.7, 0.5, 0.35)


def build_distributions(trained_backbone, bench_data):
    train, val = bench_data
    plan = StagePlan.canonical(BENCH_CONFIG.depth, RATIOS)
    model = HeatViT(fresh_copy(trained_backbone),
                    dict(zip(plan.boundaries, plan.keep_ratios)),
                    rng=np.random.default_rng(5))
    train_heatvit(model, train.images, train.labels,
                  TrainConfig(epochs=12, batch_size=32, lr=2e-3,
                              lambda_distill=0.0, lambda_ratio=2.0,
                              lambda_confidence=4.0, seed=3))
    model.eval()
    record = PruningRecord()
    model.forward_pruned(val.images[:48], record=record)
    num_patches = BENCH_CONFIG.num_patches
    keep_per_stage = [
        (counts - 2).clip(min=0) / num_patches
        for counts in record.tokens_per_stage]
    object_fractions = val.masks[:48].reshape(48, -1).mean(axis=1)
    return keep_per_stage, object_fractions


def test_fig4_adaptive_distributions(benchmark, trained_backbone,
                                     bench_data):
    keep_per_stage, object_fractions = benchmark.pedantic(
        build_distributions, args=(trained_backbone, bench_data),
        rounds=1, iterations=1)
    rows = []
    for stage, (static_ratio, keeps) in enumerate(
            zip(RATIOS, keep_per_stage)):
        rows.append((f"stage {stage + 1}",
                     f"{static_ratio:.2f} (all images)",
                     f"{keeps.mean():.2f}",
                     f"{keeps.min():.2f}..{keeps.max():.2f}",
                     f"{keeps.std():.3f}"))
    print_table("Fig. 4: static vs adaptive keep ratios",
                ["Stage", "static", "adaptive mean", "adaptive range",
                 "adaptive std"], rows)
    corr = np.corrcoef(keep_per_stage[0], object_fractions)[0, 1]
    print(f"corr(keep ratio, object size) = {corr:+.3f}")
    # Adaptivity: per-image ratios genuinely vary...
    assert any(k.std() > 0.005 for k in keep_per_stage)
    # ...and stages prune progressively.
    means = [k.mean() for k in keep_per_stage]
    assert means[0] >= means[1] >= means[2]
