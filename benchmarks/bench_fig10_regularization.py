"""E10 -- Fig. 10: regularization effect of the approximated GELU.

Regenerates the derivative-vs-input profile of the exact and
approximated GELU and verifies the quantization-error claims of
Eqs. 15-17.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.approx import (derivative_profile, gelu_error_propagation,
                          softmax_error_bound, softmax_error_empirical)


def build_profile():
    return derivative_profile(np.linspace(-6, 6, 25))


def test_fig10_gelu_derivative(benchmark):
    x, exact, approx = benchmark(build_profile)
    rows = [(f"{xi:+.1f}", f"{e:+.3f}", f"{a:+.3f}")
            for xi, e, a in zip(x[::4], exact[::4], approx[::4])]
    print_table("Fig. 10: GELU derivative (exact vs approximated)",
                ["x", "dA_orig/dx", "dA_aprx/dx"], rows)
    # The approximated derivative never reaches 1; the exact one does.
    assert np.abs(approx).max() < 1.0
    assert np.abs(exact).max() > 1.0


def test_fig10_error_shrinks_through_gelu(benchmark):
    x = np.linspace(-8, 8, 1000)

    def propagated():
        return gelu_error_propagation(x, input_error=0.02)

    out_err = benchmark(propagated)
    print(f"\nmax propagated error {out_err.max():.5f} "
          f"(input error 0.02)")
    assert out_err.max() < 0.02


def test_softmax_error_regularization(benchmark):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64,))

    def both():
        return (softmax_error_empirical(x, 0, 1e-3, approx=True),
                softmax_error_empirical(x, 0, 1e-3, approx=False))

    approx_err, exact_err = benchmark(both)
    print(f"\nsoftmax total output error: approx {approx_err:.2e} vs "
          f"exact {exact_err:.2e}")
    assert approx_err < exact_err
