"""cProfile the serving hot path: one batched submission, top-N report.

The tool behind the fast-path work in this repo: build a model, warm a
session up (compile, workspace fill, plan cache), then profile repeated
``InferenceSession.submit`` calls and print the top functions by the
chosen sort key.  Run it before and after a perf change to see where
the submit budget actually goes -- kernel time vs selector boundaries
vs bucketing vs session bookkeeping.

Usage::

    PYTHONPATH=src python benchmarks/profile_hotpath.py --tiny
    PYTHONPATH=src python benchmarks/profile_hotpath.py --backend tensor --sort cumulative
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys

import numpy as np

from bench_engine_throughput import DEFAULT, TINY, build
from repro.engine import InferenceSession


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="small config (matches the engine bench)")
    parser.add_argument("--backend", choices=["tensor", "fastpath"],
                        default="fastpath")
    parser.add_argument("--dtype", choices=["float32", "float64"],
                        default=None,
                        help="fastpath compute dtype (default float32)")
    parser.add_argument("--batch", type=int, default=None)
    parser.add_argument("--calls", type=int, default=20,
                        help="profiled submit calls (after 1 warmup)")
    parser.add_argument("--top", type=int, default=25,
                        help="rows to print")
    parser.add_argument("--sort", default="tottime",
                        choices=["tottime", "cumulative", "ncalls"])
    args = parser.parse_args(argv)

    params = dict(TINY if args.tiny else DEFAULT)
    if args.batch is not None:
        if args.batch < 1:
            parser.error("--batch must be >= 1")
        params["batch"] = args.batch
    model, images, cost_model = build(params)
    dtype = None if args.dtype is None else np.dtype(args.dtype)
    session = InferenceSession(model, batch_size=params["batch"],
                               cost_model=cost_model,
                               backend=args.backend, dtype=dtype)
    result = session.submit(images)            # warmup: compile + buffers

    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(args.calls):
        result = session.submit(images)
    profiler.disable()

    print(f"backend={args.backend} dtype={session.dtype} "
          f"batch={params['batch']} calls={args.calls} "
          f"({result.images_per_second:.0f} img/s on the last call)\n")
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats(args.sort).print_stats(
        args.top)
    print(stream.getvalue())
    if session.executor.workspace is not None:
        print(f"workspace: {session.executor.workspace!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
