"""Throughput: bucketed engine backends vs per-image ``forward_pruned``.

The engine's reason to exist is serving speed.  This benchmark times
four executions of the same images on the same model:

* the reference per-image ``forward_pruned`` loop;
* the bucketed engine on the ``tensor`` backend (float64 autograd
  modules under ``no_grad``);
* the bucketed engine on the ``fastpath`` backend (compiled fused
  float32 kernels with workspace reuse; see
  :mod:`repro.engine.fastpath`);
* the bucketed engine on the ``int8`` backend (the paper's deployment
  numerics: integer GEMMs with float rescale, dynamic activation
  quantization, polynomial GELU/softmax).

It verifies the parity contract of each path -- tensor and float64
fastpath within 1e-8 of the reference, float32 fastpath within 1e-5
with IDENTICAL token-keep decisions and argmax -- and gates two
speedups: engine-vs-loop and fastpath-vs-tensor.

The int8 lanes hold to a different reference: quantization is *meant*
to perturb the numerics, so the float64 int8 grade is checked BITWISE
against the :func:`repro.quant.quantize_model` simulation (the
surgered Tensor model), and the float32 int8 grade is checked against
its float64 twin for top-1/keep-decision agreement (thresholds below).
Wall-clock is gated on a separate dense MLP-heavy shape
(``QUANT_GATE``): on selector-equipped models the float and quantized
paths legitimately keep different token counts (quantization noise
scatters the keep decisions of a near-tie selector), which makes their
wall-clocks incomparable, and the polynomial softmax only pays for
itself where the MLP dominates attention -- matching the paper's
deployment regime, where the GELU unit is the area/latency bottleneck.

Besides the human-readable table it writes a machine-readable
``BENCH_engine.json`` (per-backend throughput, speedups, parity, and
the cost model's predicted-vs-simulator-measured batch latency error)
so the perf trajectory is tracked across commits; CI uploads it as a
workflow artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --tiny  # CI smoke
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
import time

import numpy as np

from repro.core import HeatViT, PruningRecord
from repro.cost import OnlineCostModel
from repro.data import SyntheticConfig, generate_dataset
from repro.engine import BucketingPolicy, InferenceSession, plan_buckets
from repro.hardware.latency_table import (FINE_KEEP_RATIO_GRID,
                                          build_cost_model,
                                          cost_model_prediction_error,
                                          simulated_model_batch_ms)
from repro.quant import PER_CHANNEL_CHILDREN, quantize_model
from repro.vit import VisionTransformer, ViTConfig

DEFAULT = dict(image_size=32, patch_size=8, embed_dim=48, depth=12,
               num_heads=4, selectors={3: 0.7, 6: 0.5, 9: 0.35},
               batch=32, repeats=3)
# The tiny smoke serves 64-patch images: small enough for CI, large
# enough that the backends are measured on real bucketing work instead
# of pure python dispatch.
TINY = dict(image_size=32, patch_size=4, embed_dim=24, depth=4,
            num_heads=3, selectors={1: 0.7, 2: 0.5},
            batch=32, repeats=3)
# The int8 speed gate runs dense (no selectors, so both numerics do
# identical work) on an MLP-heavy shape where the quantized backend's
# polynomial-GELU advantage outweighs its polynomial-softmax cost --
# the regime the paper's accelerator targets.  fc2's reduction length
# (mlp_ratio * embed_dim = 1024) stays inside the float32 exact-GEMM
# window, so the timed lane is the default int8 compile.
QUANT_GATE = dict(image_size=32, patch_size=8, embed_dim=64, depth=4,
                  num_heads=4, mlp_ratio=16.0, selectors={},
                  batch=64, repeats=5)
TOLERANCE = 1e-8
FASTPATH32_TOLERANCE = 1e-5
# int8-f32 vs int8-f64: same quantized arithmetic in two float
# precisions; on the served shapes they agree exactly today, but the
# contract is agreement within these thresholds, not bitwise equality.
INT8_TOP1_MIN = 0.95
# On the dense gate shape the comparison is int8-f32 vs the *float*
# reference, so genuine quantization error shows through (~5% top-1
# flips on a random-weights model whose logit gaps are tiny).
INT8_GATE_TOP1_MIN = 0.90


def build(params, seed=0):
    rng = np.random.default_rng(seed)
    config = ViTConfig(name="bench-engine", image_size=params["image_size"],
                       patch_size=params["patch_size"],
                       embed_dim=params["embed_dim"], depth=params["depth"],
                       num_heads=params["num_heads"],
                       mlp_ratio=params.get("mlp_ratio", 4.0), num_classes=8)
    backbone = VisionTransformer(config, rng=rng)
    model = HeatViT(backbone, params["selectors"], rng=rng)
    model.eval()
    data = generate_dataset(
        SyntheticConfig(image_size=params["image_size"], num_classes=8),
        params["batch"], rng)
    cost_model = build_cost_model(config,
                                  keep_ratios=FINE_KEEP_RATIO_GRID,
                                  extra_tokens=model.non_patch_slots)
    return model, data.images, cost_model


def time_round_robin(paths, repeats, warmup=1):
    """Interleaved best-of-N timing of several callables.

    Each path gets ``warmup`` untimed calls (compilation, workspace
    allocation, plan-cache fill), then the paths run in alternating
    rounds so cache and frequency drift hit all of them equally --
    back-to-back blocks systematically flatter whichever path runs
    last.  Returns ``({name: best_seconds}, {name: last_value})``.
    """
    values = {}
    for name, fn in paths:
        for _ in range(warmup):
            values[name] = fn()
    best = {name: float("inf") for name, _ in paths}
    for _ in range(repeats):
        for name, fn in paths:
            start = time.perf_counter()
            values[name] = fn()
            best[name] = min(best[name], time.perf_counter() - start)
    return best, values


def bucket_plan_diff(policy, static_model, learned_model, lengths):
    """Bucket partitions the two cost models pick for one ``lengths``
    distribution -- the re-planning surface of learned coefficients.

    Returns the two plans as ``(padded_length, images)`` pairs plus an
    ``identical`` verdict; a learned per-launch overhead measured in
    host milliseconds merges buckets the simulator-scale static
    overhead never would.
    """
    static_plan = [(int(p.padded_length), int(p.indices.size))
                   for p in plan_buckets(lengths, policy, static_model)]
    learned_plan = [(int(p.padded_length), int(p.indices.size))
                    for p in plan_buckets(lengths, policy, learned_model)]
    return {
        "lengths": [int(v) for v in lengths],
        "static_plan": static_plan,
        "learned_plan": learned_plan,
        "identical": static_plan == learned_plan,
    }


def mixed_stage_lengths(record, num_tokens, images_per_length=8):
    """A mixed-length batch over the run's observed stage lengths plus
    the unpruned length -- the shape a multi-operating-point serving
    mix hands the planner (a same-ratio batch is a single length and
    plans trivially identically)."""
    candidates = {int(num_tokens)}
    for stage in record.tokens_per_stage:
        candidates.update(int(v) for v in np.unique(stage))
    return np.repeat(sorted(candidates), images_per_length)


def run_learned_vs_static(model, images, cost_model, policy, batch,
                          backend, dtype, warm=4, evals=4):
    """Prediction shootout: static (simulator-calibrated) cost model vs
    an online model refit on measured host wall time.

    ``warm`` submissions bring the online model to its sample
    threshold; each of ``evals`` more records both models' batch
    prediction next to the measured wall.  Reports MAPE per model, the
    learned coefficients, and the bucket plans each model picks for a
    mixed-length batch.
    """
    online = OnlineCostModel(cost_model, min_samples=warm)
    session = InferenceSession(model, batch_size=batch, policy=policy,
                               cost_model=online, backend=backend,
                               dtype=dtype, learn_cost=True)
    static_session = InferenceSession(model, batch_size=batch,
                                      policy=policy, cost_model=cost_model,
                                      backend=backend, dtype=dtype)
    num_images = images.shape[0]
    static_ms = static_session.estimated_batch_cost(num_images).total_ms
    record = PruningRecord()
    for _ in range(warm):
        session.submit(images, record=record)
    flushes = []
    for _ in range(evals):
        learned_ms = session.estimated_batch_cost(num_images).total_ms
        start = time.perf_counter()
        session.submit(images, record=record)
        wall_ms = (time.perf_counter() - start) * 1e3
        flushes.append({"num_images": num_images, "measured_ms": wall_ms,
                        "static_ms": static_ms, "learned_ms": learned_ms})
    static_mape = float(np.mean(
        [abs(f["static_ms"] - f["measured_ms"]) / f["measured_ms"]
         for f in flushes]))
    learned_mape = float(np.mean(
        [abs(f["learned_ms"] - f["measured_ms"]) / f["measured_ms"]
         for f in flushes]))
    return {
        "backend": backend,
        "warmup_submits": warm,
        "eval_submits": evals,
        "static_mape": static_mape,
        "learned_mape": learned_mape,
        "per_flush": flushes,
        "coefficients": online.coefficients(),
        "bucket_plan": bucket_plan_diff(
            policy, cost_model, online,
            mixed_stage_lengths(record, model.config.num_tokens)),
    }


def keep_decisions_identical(record, record_ref):
    if len(record.tokens_per_stage) != len(record_ref.tokens_per_stage):
        return False
    return all(np.array_equal(a, b)
               for a, b in zip(record.tokens_per_stage,
                               record_ref.tokens_per_stage))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="small config for CI smoke runs")
    parser.add_argument("--backend", choices=["tensor", "fastpath", "both"],
                        default="both",
                        help="which engine backends to run (default both)")
    parser.add_argument("--batch", type=int, default=None,
                        help="override the batch size")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-N timing repeats")
    parser.add_argument("--no-padding", action="store_true",
                        help="disable padding merges in the bucketing policy")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero when engine-vs-loop speedup "
                             "is below this (default: 3.0 unless --tiny)")
    parser.add_argument("--min-fastpath-speedup", type=float, default=None,
                        help="exit non-zero when fastpath-vs-tensor "
                             "speedup is below this (default: 2.0; CI "
                             "enforces it on the tiny smoke)")
    parser.add_argument("--min-int8-speedup", type=float, default=None,
                        help="exit non-zero when int8-vs-fastpath speedup "
                             "on the dense QUANT_GATE shape is below this "
                             "(default: 1.2; CI enforces it on the tiny "
                             "smoke)")
    parser.add_argument("--no-int8", action="store_true",
                        help="skip the quantized-backend lanes and gate")
    parser.add_argument("--json", default="BENCH_engine.json",
                        help="write machine-readable results here "
                             "('' disables)")
    args = parser.parse_args(argv)

    params = dict(TINY if args.tiny else DEFAULT)
    if args.batch is not None:
        if args.batch < 1:
            parser.error("--batch must be >= 1")
        params["batch"] = args.batch
    if args.repeats is not None:
        if args.repeats < 1:
            parser.error("--repeats must be >= 1")
        params["repeats"] = args.repeats
    min_speedup = args.min_speedup
    if min_speedup is None:
        # Tiny smoke runs only gate the backend comparison; loop-vs-
        # engine timing noise on a 4-block model says nothing useful.
        min_speedup = 0.0 if args.tiny else 3.0
    min_fastpath = args.min_fastpath_speedup
    if min_fastpath is None:
        min_fastpath = 2.0
    min_int8 = args.min_int8_speedup
    if min_int8 is None:
        min_int8 = 1.2
    run_tensor = args.backend in ("tensor", "both")
    run_fastpath = args.backend in ("fastpath", "both")
    run_int8 = run_fastpath and not args.no_int8

    model, images, cost_model = build(params)
    batch = params["batch"]
    repeats = params["repeats"]
    policy = (BucketingPolicy(allow_padding=False) if args.no_padding
              else BucketingPolicy())
    print(f"model: {model.config.depth} blocks, "
          f"{model.config.num_tokens} tokens, embed "
          f"{model.config.embed_dim}, selectors at "
          f"{dict(zip(model.selector_blocks, model.keep_ratios))}")
    print(f"batch {batch}, best of {repeats} repeats (1 warmup)\n")

    failures = []
    backends = {}
    record_ref = PruningRecord()
    paths = [("loop",
              lambda: model.forward_pruned(images, record=record_ref))]
    sessions, records = {}, {}

    def add_engine_path(name, dtype, label):
        session = InferenceSession(model, batch_size=batch, policy=policy,
                                   cost_model=cost_model, backend=name,
                                   dtype=dtype)
        record = PruningRecord()
        sessions[label], records[label] = session, record
        paths.append(
            (label, lambda: session.submit(images, record=record)))

    if run_tensor:
        add_engine_path("tensor", None, "tensor")
    if run_fastpath:
        add_engine_path("fastpath", np.float32, "fastpath-f32")
    # The int8 lane is timed in the same round robin but judged against
    # the quantized simulation (below), not the float reference -- its
    # keep decisions legitimately differ from float on selector models.
    int8_record = PruningRecord()
    if run_int8:
        int8_session = InferenceSession(model, batch_size=batch,
                                        policy=policy,
                                        cost_model=cost_model,
                                        backend="int8", dtype=np.float32)
        paths.append(("int8-f32",
                      lambda: int8_session.submit(images,
                                                  record=int8_record)))
    times, values = time_round_robin(paths, repeats)
    loop_time, ref = times["loop"], values["loop"]

    rows = [("per-image forward_pruned", loop_time)]
    tolerances = {"tensor": TOLERANCE, "fastpath-f32": FASTPATH32_TOLERANCE}
    for label in sessions:
        result = values[label]
        diff = float(np.abs(result.logits - ref.data).max())
        keeps = keep_decisions_identical(records[label], record_ref)
        argmax_ok = bool((result.logits.argmax(axis=-1)
                          == ref.data.argmax(axis=-1)).all())
        if diff > tolerances[label]:
            failures.append(f"{label}: logit diff {diff:.2e} > "
                            f"{tolerances[label]:.0e}")
        if not keeps:
            failures.append(f"{label}: token-keep decisions diverged")
        if not argmax_ok:
            failures.append(f"{label}: argmax diverged")
        backends[label] = {
            "time_s": times[label],
            "images_per_s": batch / times[label],
            "speedup_vs_loop": loop_time / times[label],
            "max_logit_diff": diff,
            "keep_decisions_identical": keeps,
            "argmax_identical": argmax_ok,
        }
        rows.append((f"bucketed engine [{label}]", times[label]))

    tensor_time = times.get("tensor")
    fastpath_time = times.get("fastpath-f32")
    if run_fastpath:
        # Parity-grade float64 compile: correctness checked, not timed.
        record64 = PruningRecord()
        session64 = InferenceSession(model, batch_size=batch, policy=policy,
                                     cost_model=cost_model,
                                     backend="fastpath", dtype=np.float64)
        result64 = session64.submit(images, record=record64)
        diff64 = float(np.abs(result64.logits - ref.data).max())
        keeps64 = keep_decisions_identical(record64, record_ref)
        if diff64 > TOLERANCE:
            failures.append(f"fastpath-f64: logit diff {diff64:.2e} > "
                            f"{TOLERANCE:.0e}")
        if not keeps64:
            failures.append("fastpath-f64: token-keep decisions diverged")
        backends["fastpath-f64"] = {"max_logit_diff": diff64,
                                    "keep_decisions_identical": keeps64,
                                    "timed": False}
    if run_int8:
        # Bitwise gate: the float64 int8 grade must reproduce the
        # quantize_model simulation exactly -- logits and keeps.
        sim = copy.deepcopy(model)
        quantize_model(sim, bits=8, per_channel=PER_CHANNEL_CHILDREN)
        sim.eval()
        sim_record = PruningRecord()
        sim_result = InferenceSession(
            sim, batch_size=batch, policy=policy, cost_model=cost_model,
            backend="tensor").submit(images, record=sim_record)
        record_q64 = PruningRecord()
        result_q64 = InferenceSession(
            model, batch_size=batch, policy=policy, cost_model=cost_model,
            backend="int8", dtype=np.float64).submit(images,
                                                     record=record_q64)
        bitwise = (result_q64.logits.tobytes() == sim_result.logits.tobytes()
                   and keep_decisions_identical(record_q64, sim_record))
        if not bitwise:
            failures.append("int8-f64: not bitwise equal to the "
                            "quantize_model simulation")
        # Agreement gate: the timed float32 grade against its float64
        # twin -- same quantized arithmetic, different float precision.
        result_q32 = values["int8-f32"]
        top1_q = float((result_q32.logits.argmax(axis=-1)
                        == result_q64.logits.argmax(axis=-1)).mean())
        keeps_q = keep_decisions_identical(int8_record, record_q64)
        diff_q = float(np.abs(result_q32.logits - result_q64.logits).max())
        if top1_q < INT8_TOP1_MIN:
            failures.append(f"int8-f32: top-1 agreement {top1_q:.3f} < "
                            f"{INT8_TOP1_MIN} vs int8-f64")
        if not keeps_q:
            failures.append("int8-f32: token-keep decisions diverged "
                            "from int8-f64")
        backends["int8-f32"] = {
            "time_s": times["int8-f32"],
            "images_per_s": batch / times["int8-f32"],
            "speedup_vs_loop": loop_time / times["int8-f32"],
            "top1_agreement_vs_f64": top1_q,
            "top1_threshold": INT8_TOP1_MIN,
            "top1_reference": "int8-f64",
            "top1_gate_passed": top1_q >= INT8_TOP1_MIN,
            "keep_decisions_identical_vs_f64": keeps_q,
            "max_logit_diff_vs_f64": diff_q,
        }
        backends["int8-f64"] = {
            "bitwise_equal_to_simulation": bitwise, "timed": False}
        rows.append(("bucketed engine [int8-f32]", times["int8-f32"]))
    label = "tensor" if run_tensor else "fastpath-f32"
    session, result = sessions[label], values[label]

    width = max(len(r[0]) for r in rows)
    print(f"{'path':<{width}}  {'time (s)':>10}  {'img/s':>10}")
    for name, seconds in rows:
        print(f"{name:<{width}}  {seconds:>10.4f}  "
              f"{batch / seconds:>10.1f}")
    engine_time = tensor_time if tensor_time is not None else fastpath_time
    speedup = loop_time / engine_time
    print(f"\nengine vs loop speedup: {speedup:.2f}x")
    fastpath_speedup = None
    if tensor_time is not None and fastpath_time is not None:
        fastpath_speedup = tensor_time / fastpath_time
        print(f"fastpath vs tensor speedup: {fastpath_speedup:.2f}x "
              f"(f32 max |logit diff| "
              f"{backends['fastpath-f32']['max_logit_diff']:.2e}, "
              f"f64 {backends['fastpath-f64']['max_logit_diff']:.2e}, "
              f"keep decisions identical: "
              f"{backends['fastpath-f32']['keep_decisions_identical']})")
    int8_speedup = None
    quant_gate = None
    if run_int8:
        print(f"int8-f32 vs f64 top-1 agreement: "
              f"{backends['int8-f32']['top1_agreement_vs_f64']:.3f}   "
              f"f64 bitwise == simulation: "
              f"{backends['int8-f64']['bitwise_equal_to_simulation']}")
        # Dense MLP-heavy speed gate (see QUANT_GATE above): both
        # backends do identical work here, so the wall-clock ratio is a
        # real backend comparison rather than a token-count artifact.
        gate_model, gate_images, gate_cost = build(QUANT_GATE)
        gate_batch = QUANT_GATE["batch"]
        gate_fp = InferenceSession(gate_model, batch_size=gate_batch,
                                   policy=policy, cost_model=gate_cost,
                                   backend="fastpath", dtype=np.float32)
        gate_q8 = InferenceSession(gate_model, batch_size=gate_batch,
                                   policy=policy, cost_model=gate_cost,
                                   backend="int8", dtype=np.float32)
        gate_times, gate_values = time_round_robin(
            [("fastpath-f32", lambda: gate_fp.submit(gate_images)),
             ("int8-f32", lambda: gate_q8.submit(gate_images))],
            QUANT_GATE["repeats"])
        gate_ref = InferenceSession(
            gate_model, batch_size=gate_batch, policy=policy,
            cost_model=gate_cost, backend="fastpath",
            dtype=np.float64).submit(gate_images)
        gate_top1 = float(
            (gate_values["int8-f32"].logits.argmax(axis=-1)
             == gate_ref.logits.argmax(axis=-1)).mean())
        if gate_top1 < INT8_GATE_TOP1_MIN:
            failures.append(f"int8 gate: top-1 agreement {gate_top1:.3f} "
                            f"< {INT8_GATE_TOP1_MIN} vs float64")
        int8_speedup = gate_times["fastpath-f32"] / gate_times["int8-f32"]
        # The recorded agreement and the gate that judged it travel
        # together: this number is int8-f32 vs the dense-shape *float*
        # reference (real quantization error shows through), NOT the
        # 0.95 int8-f32-vs-int8-f64 twin gate recorded per backend.
        quant_gate = {
            "params": {k: v for k, v in QUANT_GATE.items()
                       if k != "selectors"},
            "fastpath_time_s": gate_times["fastpath-f32"],
            "int8_time_s": gate_times["int8-f32"],
            "int8_speedup": int8_speedup,
            "top1_agreement_vs_f64": gate_top1,
            "top1_threshold": INT8_GATE_TOP1_MIN,
            "top1_reference": "fastpath-f64",
            "top1_gate_passed": gate_top1 >= INT8_GATE_TOP1_MIN,
        }
        print(f"int8 vs fastpath speedup (dense gate shape, embed "
              f"{QUANT_GATE['embed_dim']} mlp_ratio "
              f"{QUANT_GATE['mlp_ratio']:.0f}): {int8_speedup:.2f}x "
              f"(top-1 agreement vs f64: {gate_top1:.3f})")
    buckets = [s.num_buckets for s in result.stage_stats]
    padded = sum(s.padded_tokens for s in result.stage_stats)
    print(f"buckets per stage: {buckets}   padded tokens total: {padded}")
    print(f"mean estimated accelerator latency: "
          f"{float(result.latency_ms.mean()):.3f} ms/image")

    # Cost-model fidelity: the session's batch prediction vs the
    # batch-aware FPGA simulator run directly at the operating point.
    predicted_ms = session.estimated_batch_latency_ms(batch)
    measured_ms = simulated_model_batch_ms(
        model.config, batch, selector_blocks=model.selector_blocks,
        keep_ratios=model.keep_ratios)
    batch_error = abs(predicted_ms - measured_ms) / measured_ms
    # Calibration fidelity over the paper's Table IV ratio range (the
    # acceptance bound's grid); the bench grid's sub-0.5 ratios hit
    # tile-quantization regimes on toy patch counts.
    calibration = cost_model_prediction_error(
        model.config, session.cost_model,
        keep_ratios=[ratio for ratio, _ in session.cost_model.table.items()
                     if ratio >= 0.5])
    print(f"cost model: predicted {predicted_ms:.3f} ms vs simulator "
          f"{measured_ms:.3f} ms for the batch "
          f"({100 * batch_error:.1f}% error; calibration grid max "
          f"{100 * calibration['max']:.1f}%)")

    # Online cost-model shootout: host-wall prediction error of the
    # static table vs the learned refit, and the bucket-plan surface.
    learned_vs_static = run_learned_vs_static(
        model, images, cost_model, policy, batch,
        backend=("fastpath" if run_fastpath else "tensor"),
        dtype=(np.float32 if run_fastpath else None))
    plan = learned_vs_static["bucket_plan"]
    print(f"learned vs static host-wall MAPE: "
          f"{100 * learned_vs_static['learned_mape']:.1f}% vs "
          f"{100 * learned_vs_static['static_mape']:.1f}%   "
          f"mixed-length plans identical: {plan['identical']} "
          f"(static {len(plan['static_plan'])} buckets, learned "
          f"{len(plan['learned_plan'])})")

    if args.json:
        payload = {
            "benchmark": "engine_throughput",
            "tiny": bool(args.tiny),
            "batch": batch,
            "repeats": repeats,
            "loop_time_s": loop_time,
            "loop_images_per_s": batch / loop_time,
            "engine_time_s": engine_time,
            "engine_images_per_s": batch / engine_time,
            "speedup": speedup,
            "fastpath_speedup": fastpath_speedup,
            "int8_speedup": int8_speedup,
            "quant_gate": quant_gate,
            "backends": backends,
            "padded_tokens": padded,
            "buckets_per_stage": buckets,
            "predicted_batch_ms": predicted_ms,
            "measured_sim_batch_ms": measured_ms,
            "prediction_error": batch_error,
            "calibration_max_error": calibration["max"],
            "calibration_mean_error": calibration["mean"],
            "learned_vs_static": learned_vs_static,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    if speedup < min_speedup:
        print(f"FAIL: engine speedup {speedup:.2f}x < required "
              f"{min_speedup:.1f}x")
        return 1
    if fastpath_speedup is not None and fastpath_speedup < min_fastpath:
        print(f"FAIL: fastpath speedup {fastpath_speedup:.2f}x < "
              f"required {min_fastpath:.1f}x")
        return 1
    if int8_speedup is not None and int8_speedup < min_int8:
        print(f"FAIL: int8 speedup {int8_speedup:.2f}x < required "
              f"{min_int8:.1f}x")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
