"""Throughput: bucketed engine vs per-image ``forward_pruned`` loop.

The engine's reason to exist is serving speed: the reference deployment
path runs one image at a time (adaptive pruning gives every image its
own length), so its throughput is bounded by Python-loop overhead on
tiny matrices.  This benchmark times both paths on the same model and
images, verifies the logits agree to within 1e-8, and reports the
speedup.  Acceptance bar: >= 3x at batch 32 on the default config.

Besides the human-readable table it writes a machine-readable
``BENCH_engine.json`` (throughput, speedup, and the cost model's
predicted-vs-simulator-measured batch latency error) so the perf
trajectory is tracked across commits.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --tiny  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core import HeatViT
from repro.data import SyntheticConfig, generate_dataset
from repro.engine import BucketingPolicy, InferenceSession
from repro.hardware.latency_table import (FINE_KEEP_RATIO_GRID,
                                          build_cost_model,
                                          cost_model_prediction_error,
                                          simulated_model_batch_ms)
from repro.vit import VisionTransformer, ViTConfig

DEFAULT = dict(image_size=32, patch_size=8, embed_dim=48, depth=12,
               num_heads=4, selectors={3: 0.7, 6: 0.5, 9: 0.35},
               batch=32, repeats=3)
TINY = dict(image_size=16, patch_size=4, embed_dim=24, depth=4,
            num_heads=3, selectors={1: 0.7, 2: 0.5},
            batch=8, repeats=1)
TOLERANCE = 1e-8


def build(params, seed=0):
    rng = np.random.default_rng(seed)
    config = ViTConfig(name="bench-engine", image_size=params["image_size"],
                       patch_size=params["patch_size"],
                       embed_dim=params["embed_dim"], depth=params["depth"],
                       num_heads=params["num_heads"], num_classes=8)
    backbone = VisionTransformer(config, rng=rng)
    model = HeatViT(backbone, params["selectors"], rng=rng)
    model.eval()
    data = generate_dataset(
        SyntheticConfig(image_size=params["image_size"], num_classes=8),
        params["batch"], rng)
    cost_model = build_cost_model(config,
                                  keep_ratios=FINE_KEEP_RATIO_GRID,
                                  extra_tokens=model.non_patch_slots)
    return model, data.images, cost_model


def time_best(fn, repeats):
    """Best-of-N wall time (seconds) and the last return value."""
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="small config for CI smoke runs")
    parser.add_argument("--batch", type=int, default=None,
                        help="override the batch size")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-N timing repeats")
    parser.add_argument("--no-padding", action="store_true",
                        help="disable padding merges in the bucketing policy")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero below this speedup "
                             "(default: 3.0 unless --tiny)")
    parser.add_argument("--json", default="BENCH_engine.json",
                        help="write machine-readable results here "
                             "('' disables)")
    args = parser.parse_args(argv)

    params = dict(TINY if args.tiny else DEFAULT)
    if args.batch is not None:
        if args.batch < 1:
            parser.error("--batch must be >= 1")
        params["batch"] = args.batch
    if args.repeats is not None:
        if args.repeats < 1:
            parser.error("--repeats must be >= 1")
        params["repeats"] = args.repeats
    min_speedup = args.min_speedup
    if min_speedup is None:
        # Tiny smoke runs only check correctness; timing noise on a
        # 4-block model says nothing useful.
        min_speedup = 0.0 if args.tiny else 3.0

    model, images, cost_model = build(params)
    batch = params["batch"]
    policy = (BucketingPolicy(allow_padding=False) if args.no_padding
              else BucketingPolicy())
    print(f"model: {model.config.depth} blocks, "
          f"{model.config.num_tokens} tokens, embed "
          f"{model.config.embed_dim}, selectors at "
          f"{dict(zip(model.selector_blocks, model.keep_ratios))}")
    print(f"batch {batch}, best of {params['repeats']} repeats\n")

    loop_time, ref = time_best(lambda: model.forward_pruned(images),
                               params["repeats"])
    session = InferenceSession(model, batch_size=batch, policy=policy,
                               cost_model=cost_model)
    engine_time, result = time_best(lambda: session.submit(images),
                                    params["repeats"])

    diff = float(np.abs(result.logits - ref.data).max())
    speedup = loop_time / engine_time
    rows = [
        ("per-image forward_pruned", loop_time, batch / loop_time),
        ("bucketed engine", engine_time, batch / engine_time),
    ]
    width = max(len(r[0]) for r in rows)
    print(f"{'path':<{width}}  {'time (s)':>10}  {'img/s':>10}")
    for name, seconds, throughput in rows:
        print(f"{name:<{width}}  {seconds:>10.4f}  {throughput:>10.1f}")
    buckets = [s.num_buckets for s in result.stage_stats]
    padded = sum(s.padded_tokens for s in result.stage_stats)
    print(f"\nspeedup: {speedup:.2f}x   max |logit diff|: {diff:.2e}")
    print(f"buckets per stage: {buckets}   padded tokens total: {padded}")
    print(f"mean estimated accelerator latency: "
          f"{float(result.latency_ms.mean()):.3f} ms/image")

    # Cost-model fidelity: the session's batch prediction vs the
    # batch-aware FPGA simulator run directly at the operating point.
    predicted_ms = session.estimated_batch_latency_ms(batch)
    measured_ms = simulated_model_batch_ms(
        model.config, batch, selector_blocks=model.selector_blocks,
        keep_ratios=model.keep_ratios)
    batch_error = abs(predicted_ms - measured_ms) / measured_ms
    # Calibration fidelity over the paper's Table IV ratio range (the
    # acceptance bound's grid); the bench grid's sub-0.5 ratios hit
    # tile-quantization regimes on toy patch counts.
    calibration = cost_model_prediction_error(
        model.config, session.cost_model,
        keep_ratios=[ratio for ratio, _ in session.cost_model.table.items()
                     if ratio >= 0.5])
    print(f"cost model: predicted {predicted_ms:.3f} ms vs simulator "
          f"{measured_ms:.3f} ms for the batch "
          f"({100 * batch_error:.1f}% error; calibration grid max "
          f"{100 * calibration['max']:.1f}%)")

    if args.json:
        payload = {
            "benchmark": "engine_throughput",
            "tiny": bool(args.tiny),
            "batch": batch,
            "repeats": params["repeats"],
            "loop_time_s": loop_time,
            "engine_time_s": engine_time,
            "loop_images_per_s": batch / loop_time,
            "engine_images_per_s": batch / engine_time,
            "speedup": speedup,
            "max_logit_diff": diff,
            "padded_tokens": padded,
            "buckets_per_stage": buckets,
            "predicted_batch_ms": predicted_ms,
            "measured_sim_batch_ms": measured_ms,
            "prediction_error": batch_error,
            "calibration_max_error": calibration["max"],
            "calibration_mean_error": calibration["mean"],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")

    if diff > TOLERANCE:
        print(f"FAIL: logit mismatch {diff:.2e} > {TOLERANCE:.0e}")
        return 1
    if speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x < required "
              f"{min_speedup:.1f}x")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
