"""Throughput: bucketed engine vs per-image ``forward_pruned`` loop.

The engine's reason to exist is serving speed: the reference deployment
path runs one image at a time (adaptive pruning gives every image its
own length), so its throughput is bounded by Python-loop overhead on
tiny matrices.  This benchmark times both paths on the same model and
images, verifies the logits agree to within 1e-8, and reports the
speedup.  Acceptance bar: >= 3x at batch 32 on the default config.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --tiny  # CI smoke
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core import HeatViT
from repro.data import SyntheticConfig, generate_dataset
from repro.engine import BucketingPolicy, InferenceSession
from repro.vit import VisionTransformer, ViTConfig

DEFAULT = dict(image_size=32, patch_size=8, embed_dim=48, depth=12,
               num_heads=4, selectors={3: 0.7, 6: 0.5, 9: 0.35},
               batch=32, repeats=3)
TINY = dict(image_size=16, patch_size=4, embed_dim=24, depth=4,
            num_heads=3, selectors={1: 0.7, 2: 0.5},
            batch=8, repeats=1)
TOLERANCE = 1e-8


def build(params, seed=0):
    rng = np.random.default_rng(seed)
    config = ViTConfig(name="bench-engine", image_size=params["image_size"],
                       patch_size=params["patch_size"],
                       embed_dim=params["embed_dim"], depth=params["depth"],
                       num_heads=params["num_heads"], num_classes=8)
    backbone = VisionTransformer(config, rng=rng)
    model = HeatViT(backbone, params["selectors"], rng=rng)
    model.eval()
    data = generate_dataset(
        SyntheticConfig(image_size=params["image_size"], num_classes=8),
        params["batch"], rng)
    return model, data.images


def time_best(fn, repeats):
    """Best-of-N wall time (seconds) and the last return value."""
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="small config for CI smoke runs")
    parser.add_argument("--batch", type=int, default=None,
                        help="override the batch size")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-N timing repeats")
    parser.add_argument("--no-padding", action="store_true",
                        help="disable padding merges in the bucketing policy")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero below this speedup "
                             "(default: 3.0 unless --tiny)")
    args = parser.parse_args(argv)

    params = dict(TINY if args.tiny else DEFAULT)
    if args.batch is not None:
        if args.batch < 1:
            parser.error("--batch must be >= 1")
        params["batch"] = args.batch
    if args.repeats is not None:
        if args.repeats < 1:
            parser.error("--repeats must be >= 1")
        params["repeats"] = args.repeats
    min_speedup = args.min_speedup
    if min_speedup is None:
        # Tiny smoke runs only check correctness; timing noise on a
        # 4-block model says nothing useful.
        min_speedup = 0.0 if args.tiny else 3.0

    model, images = build(params)
    batch = params["batch"]
    policy = (BucketingPolicy(allow_padding=False) if args.no_padding
              else BucketingPolicy())
    print(f"model: {model.config.depth} blocks, "
          f"{model.config.num_tokens} tokens, embed "
          f"{model.config.embed_dim}, selectors at "
          f"{dict(zip(model.selector_blocks, model.keep_ratios))}")
    print(f"batch {batch}, best of {params['repeats']} repeats\n")

    loop_time, ref = time_best(lambda: model.forward_pruned(images),
                               params["repeats"])
    session = InferenceSession(model, batch_size=batch, policy=policy)
    engine_time, result = time_best(lambda: session.submit(images),
                                    params["repeats"])

    diff = float(np.abs(result.logits - ref.data).max())
    speedup = loop_time / engine_time
    rows = [
        ("per-image forward_pruned", loop_time, batch / loop_time),
        ("bucketed engine", engine_time, batch / engine_time),
    ]
    width = max(len(r[0]) for r in rows)
    print(f"{'path':<{width}}  {'time (s)':>10}  {'img/s':>10}")
    for name, seconds, throughput in rows:
        print(f"{name:<{width}}  {seconds:>10.4f}  {throughput:>10.1f}")
    buckets = [s.num_buckets for s in result.stage_stats]
    padded = sum(s.padded_tokens for s in result.stage_stats)
    print(f"\nspeedup: {speedup:.2f}x   max |logit diff|: {diff:.2e}")
    print(f"buckets per stage: {buckets}   padded tokens total: {padded}")
    print(f"mean estimated accelerator latency: "
          f"{float(result.latency_ms.mean()):.3f} ms/image")

    if diff > TOLERANCE:
        print(f"FAIL: logit mismatch {diff:.2e} > {TOLERANCE:.0e}")
        return 1
    if speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x < required "
              f"{min_speedup:.1f}x")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
