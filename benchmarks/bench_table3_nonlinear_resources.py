"""E3 -- Table III: FPGA resources for nonlinear functions.

Regenerates the approx-vs-original FF/LUT/DSP comparison from the
analytic resource model and checks it against the paper's measured
synthesis results.
"""

import pytest

from benchmarks.conftest import print_table
from repro.hardware import PAPER_TABLE3, nonlinear_unit_table


def build_table3():
    table = nonlinear_unit_table()
    rows = []
    for fn in ("GELU", "Sigmoid", "Softmax"):
        ours, paper = table[fn], PAPER_TABLE3[fn]
        for kind in ("approx", "orig"):
            rows.append((
                fn, kind,
                ours[kind].ff, paper[kind].ff,
                ours[kind].lut, paper[kind].lut,
                ours[kind].dsp, paper[kind].dsp))
    return rows


def test_table3_resources(benchmark):
    rows = benchmark(build_table3)
    print_table(
        "Table III: nonlinear function units (ours vs paper)",
        ["Fn", "Impl", "FF", "FF(paper)", "LUT", "LUT(paper)",
         "DSP", "DSP(paper)"],
        rows)
    table = nonlinear_unit_table()
    # The headline claim: 1.5x-572x improvement from approximation.
    for fn in table:
        approx, orig = table[fn]["approx"], table[fn]["orig"]
        assert orig.lut > approx.lut
        assert orig.ff > approx.ff
    gelu_gain = table["GELU"]["orig"].lut / table["GELU"]["approx"].lut
    assert gelu_gain > 100     # paper: up to 572x for GELU


def test_table3_matches_paper_within_2x(benchmark):
    def deltas():
        out = []
        table = nonlinear_unit_table()
        for fn in table:
            for kind in ("approx", "orig"):
                for attr in ("ff", "lut"):
                    ours = getattr(table[fn][kind], attr)
                    paper = getattr(PAPER_TABLE3[fn][kind], attr)
                    out.append(ours / paper)
        return out

    ratios = benchmark(deltas)
    print("\nmodel/paper resource ratios:",
          [f"{r:.2f}" for r in ratios])
    assert all(0.3 < r < 2.5 for r in ratios)
