"""E4 -- Table IV: one-block latency vs token keep ratio on ZCU102.

Regenerates the latency-sparsity table from the accelerator simulator
and compares it with the paper's measured values for DeiT-T / DeiT-S.
"""

import pytest

from benchmarks.conftest import print_table
from repro.hardware import PAPER_TABLE4, build_latency_table
from repro.vit import DEIT_SMALL, DEIT_TINY

RATIOS = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5)


@pytest.mark.parametrize("name,config", [("DeiT-T", DEIT_TINY),
                                         ("DeiT-S", DEIT_SMALL)])
def test_table4_block_latency(benchmark, name, config):
    table = benchmark(build_latency_table, config, RATIOS)
    rows = [(ratio,
             f"{table.latency(ratio):.3f}",
             f"{PAPER_TABLE4[name][ratio]:.3f}")
            for ratio in RATIOS]
    print_table(f"Table IV ({name}): ms per block",
                ["Keep ratio", "simulated", "paper"], rows)
    # Monotone in the keep ratio...
    latencies = [table.latency(r) for r in RATIOS]
    assert all(a > b for a, b in zip(latencies, latencies[1:]))
    # ...absolute values within 50% of measured silicon...
    for ratio in RATIOS:
        assert table.latency(ratio) == pytest.approx(
            PAPER_TABLE4[name][ratio], rel=0.5)
    # ...and the *relative* saving from pruning matches tightly.
    ours = table.latency(0.5) / table.latency(1.0)
    paper = PAPER_TABLE4[name][0.5] / PAPER_TABLE4[name][1.0]
    assert ours == pytest.approx(paper, abs=0.12)
