"""Throughput: scheduler-coalesced serving vs per-request submission.

The scheduler's reason to exist is request coalescing: many small
independent requests (the realistic serving arrival shape) executed one
at a time waste the engine's batching entirely.  This benchmark serves
the same request stream twice -- once submitting each request alone,
once through a :class:`repro.serving.Scheduler` that coalesces a burst
into bucketed batches -- verifies per-request logits agree to within
1e-8, and reports the speedup including all queue/routing/slicing
overhead.  Acceptance bar: >= 2x at 32 single-image requests on the
default config.

Besides the human-readable table it writes a machine-readable
``BENCH_scheduler.json`` (throughput, speedup, and the scheduler's
predicted-vs-simulator-measured flush latency error) so the perf
trajectory is tracked across commits.

Usage::

    PYTHONPATH=src python benchmarks/bench_scheduler_throughput.py
    PYTHONPATH=src python benchmarks/bench_scheduler_throughput.py --tiny  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core import HeatViT
from repro.data import SyntheticConfig, generate_dataset
from repro.engine import InferenceSession
from repro.hardware.latency_table import (FINE_KEEP_RATIO_GRID,
                                          build_cost_model,
                                          simulated_model_batch_ms)
from repro.serving import Scheduler, VirtualClock
from repro.vit import VisionTransformer, ViTConfig

DEFAULT = dict(image_size=32, patch_size=8, embed_dim=48, depth=12,
               num_heads=4, selectors={3: 0.7, 6: 0.5, 9: 0.35},
               requests=32, repeats=3)
TINY = dict(image_size=16, patch_size=4, embed_dim=24, depth=4,
            num_heads=3, selectors={1: 0.7, 2: 0.5},
            requests=8, repeats=1)
TOLERANCE = 1e-8


def build(params, seed=0):
    rng = np.random.default_rng(seed)
    config = ViTConfig(name="bench-scheduler",
                       image_size=params["image_size"],
                       patch_size=params["patch_size"],
                       embed_dim=params["embed_dim"], depth=params["depth"],
                       num_heads=params["num_heads"], num_classes=8)
    backbone = VisionTransformer(config, rng=rng)
    model = HeatViT(backbone, params["selectors"], rng=rng)
    model.eval()
    data = generate_dataset(
        SyntheticConfig(image_size=params["image_size"], num_classes=8),
        params["requests"], rng)
    cost_model = build_cost_model(config,
                                  keep_ratios=FINE_KEEP_RATIO_GRID,
                                  extra_tokens=model.non_patch_slots)
    return model, data.images, cost_model


def time_best(fn, repeats):
    """Best-of-N wall time (seconds) and the last return value."""
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def serve_one_at_a_time(session, images):
    return np.concatenate(
        [session.submit(images[i][None]).logits
         for i in range(images.shape[0])], axis=0)


def serve_coalesced(model, images, cost_model):
    """A burst of single-image requests through the scheduler."""
    scheduler = Scheduler(clock=VirtualClock(), batch_window_ms=10.0)
    scheduler.register("default", model, max_batch=images.shape[0],
                       cost_model=cost_model)
    ids = [scheduler.submit(images[i]) for i in range(images.shape[0])]
    results = {r.request_id: r for r in scheduler.flush()}
    logits = np.concatenate([results[i].logits for i in ids], axis=0)
    return logits, scheduler.events


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="small config for CI smoke runs")
    parser.add_argument("--requests", type=int, default=None,
                        help="number of single-image requests in the burst")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-N timing repeats")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero below this speedup "
                             "(default: 2.0 unless --tiny)")
    parser.add_argument("--json", default="BENCH_scheduler.json",
                        help="write machine-readable results here "
                             "('' disables)")
    args = parser.parse_args(argv)

    params = dict(TINY if args.tiny else DEFAULT)
    if args.requests is not None:
        if args.requests < 1:
            parser.error("--requests must be >= 1")
        params["requests"] = args.requests
    if args.repeats is not None:
        if args.repeats < 1:
            parser.error("--repeats must be >= 1")
        params["repeats"] = args.repeats
    min_speedup = args.min_speedup
    if min_speedup is None:
        # Tiny smoke runs only check correctness; timing noise on a
        # 4-block model says nothing useful.
        min_speedup = 0.0 if args.tiny else 2.0

    model, images, cost_model = build(params)
    requests = params["requests"]
    print(f"model: {model.config.depth} blocks, "
          f"{model.config.num_tokens} tokens, selectors at "
          f"{dict(zip(model.selector_blocks, model.keep_ratios))}")
    print(f"{requests} single-image requests, best of "
          f"{params['repeats']} repeats\n")

    session = InferenceSession(model, batch_size=requests,
                               cost_model=cost_model)
    naive_time, naive = time_best(
        lambda: serve_one_at_a_time(session, images), params["repeats"])
    sched_time, (coalesced, events) = time_best(
        lambda: serve_coalesced(model, images, cost_model),
        params["repeats"])

    diff = float(np.abs(coalesced - naive).max())
    speedup = naive_time / sched_time
    rows = [
        ("per-request submission", naive_time, requests / naive_time),
        ("scheduler coalesced", sched_time, requests / sched_time),
    ]
    width = max(len(r[0]) for r in rows)
    print(f"{'path':<{width}}  {'time (s)':>10}  {'req/s':>10}")
    for name, seconds, throughput in rows:
        print(f"{name:<{width}}  {seconds:>10.4f}  {throughput:>10.1f}")
    print(f"\nspeedup: {speedup:.2f}x   max |logit diff|: {diff:.2e}")

    # Cost-model fidelity: the scheduler's per-flush batch prediction
    # vs the batch-aware FPGA simulator run at the operating point.
    predicted_ms = sum(e.estimated_ms for e in events)
    measured_ms = sum(
        simulated_model_batch_ms(model.config, e.num_images,
                                 selector_blocks=model.selector_blocks,
                                 keep_ratios=model.keep_ratios)
        for e in events)
    flush_error = abs(predicted_ms - measured_ms) / measured_ms
    print(f"cost model: predicted {predicted_ms:.3f} ms vs simulator "
          f"{measured_ms:.3f} ms across {len(events)} flushes "
          f"({100 * flush_error:.1f}% error)")

    if args.json:
        payload = {
            "benchmark": "scheduler_throughput",
            "tiny": bool(args.tiny),
            "requests": requests,
            "repeats": params["repeats"],
            "naive_time_s": naive_time,
            "scheduler_time_s": sched_time,
            "naive_requests_per_s": requests / naive_time,
            "scheduler_requests_per_s": requests / sched_time,
            "speedup": speedup,
            "max_logit_diff": diff,
            "num_flushes": len(events),
            "predicted_flush_ms": predicted_ms,
            "measured_sim_flush_ms": measured_ms,
            "prediction_error": flush_error,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")

    if diff > TOLERANCE:
        print(f"FAIL: logit mismatch {diff:.2e} > {TOLERANCE:.0e}")
        return 1
    if speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x < required "
              f"{min_speedup:.1f}x")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
