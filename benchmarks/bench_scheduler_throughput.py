"""Throughput: scheduler-coalesced serving vs per-request submission.

The scheduler's reason to exist is request coalescing: many small
independent requests (the realistic serving arrival shape) executed one
at a time waste the engine's batching entirely.  This benchmark serves
the same request stream -- once submitting each request alone, then
through a :class:`repro.serving.Scheduler` that coalesces a burst into
bucketed batches, on each engine backend (``tensor``, the compiled
``fastpath``, and the quantized ``int8``) -- verifies per-request
logits, and reports the speedup including all queue/routing/slicing
overhead.  Acceptance bar: >= 2x for the tensor backend at 32
single-image requests on the default config; the fastpath and int8
backends ride the same scheduler and are reported per backend.  The
float backends must match the naive reference to float tolerances;
the int8 lane carries real quantization error, so it is verified by
top-1 agreement (>= 90% of requests classify identically).

A second section sweeps **multi-worker serving**
(``Scheduler.register(..., workers=N)``: N executor processes fed by
cost-model placement): the same burst served in-process (``workers=1``)
and fanned out across process pools, verifying bitwise-identical logits
per worker count and reporting the scaling.  ``--min-worker-scaling``
gates the workers=2 speedup (CI runs 1.5x on the tiny config); on a
single-CPU host the gate is skipped -- there is no parallel hardware
for a second worker to use -- and recorded as skipped in the JSON.

A third section, ``--chaos``, serves the same burst twice through a
2-worker pool -- once healthy, once under a deterministic
:class:`repro.serving.FaultPlan` that kills worker 0 on its first batch
-- and gates recovery: every request must still complete (re-dispatched
to the survivor and the respawned slot), the logits must be bitwise
identical to the healthy run, and the recovery counters must record
the respawn.  Recovery overhead (chaos wall vs healthy wall) and the
full recovery telemetry land in the JSON.

Besides the human-readable table it writes a machine-readable
``BENCH_scheduler.json`` (per-backend throughput, speedup, the
scheduler's predicted-vs-simulator-measured flush latency error, the
``workers`` sweep with per-count throughput and the placement
policy's online calibration, and the ``--chaos`` lane's recovery
stats) so the perf trajectory is tracked across commits; CI uploads it
as a workflow artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_scheduler_throughput.py
    PYTHONPATH=src python benchmarks/bench_scheduler_throughput.py --tiny  # CI smoke
    PYTHONPATH=src python benchmarks/bench_scheduler_throughput.py --workers 1,2,4
    PYTHONPATH=src python benchmarks/bench_scheduler_throughput.py --tiny --chaos
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from bench_engine_throughput import bucket_plan_diff, time_round_robin
from repro.core import HeatViT
from repro.cost import OnlineCostModel
from repro.data import SyntheticConfig, generate_dataset
from repro.engine import BucketingPolicy, InferenceSession
from repro.hardware.latency_table import (FINE_KEEP_RATIO_GRID,
                                          build_cost_model,
                                          simulated_model_batch_ms)
from repro.serving import Scheduler, VirtualClock
from repro.vit import VisionTransformer, ViTConfig

DEFAULT = dict(image_size=32, patch_size=8, embed_dim=48, depth=12,
               num_heads=4, selectors={3: 0.7, 6: 0.5, 9: 0.35},
               requests=32, repeats=3, worker_requests=64)
TINY = dict(image_size=32, patch_size=4, embed_dim=24, depth=4,
            num_heads=3, selectors={1: 0.7, 2: 0.5},
            requests=16, repeats=2, worker_requests=64)
TOLERANCE = 1e-8
FASTPATH32_TOLERANCE = 1e-4
# The int8 lane is quantized arithmetic; exact-logit tolerances do not
# apply.  Gate on the serving-relevant outcome instead: the fraction of
# requests whose top-1 class matches the float reference.
INT8_TOP1_MIN = 0.9


def build(params, seed=0):
    rng = np.random.default_rng(seed)
    config = ViTConfig(name="bench-scheduler",
                       image_size=params["image_size"],
                       patch_size=params["patch_size"],
                       embed_dim=params["embed_dim"], depth=params["depth"],
                       num_heads=params["num_heads"], num_classes=8)
    backbone = VisionTransformer(config, rng=rng)
    model = HeatViT(backbone, params["selectors"], rng=rng)
    model.eval()
    data = generate_dataset(
        SyntheticConfig(image_size=params["image_size"], num_classes=8),
        params["requests"], rng)
    cost_model = build_cost_model(config,
                                  keep_ratios=FINE_KEEP_RATIO_GRID,
                                  extra_tokens=model.non_patch_slots)
    return model, data.images, cost_model


def serve_one_at_a_time(session, images):
    return np.concatenate(
        [session.submit(images[i][None]).logits
         for i in range(images.shape[0])], axis=0)


def make_coalesced_path(model, images, cost_model, backend):
    """A burst of single-image requests through one scheduler flush."""
    scheduler = Scheduler(clock=VirtualClock(), batch_window_ms=10.0)
    scheduler.register("default", model, max_batch=images.shape[0],
                       cost_model=cost_model, backend=backend)

    def run():
        ids = [scheduler.submit(images[i]) for i in range(images.shape[0])]
        results = {r.request_id: r for r in scheduler.flush()}
        logits = np.concatenate([results[i].logits for i in ids], axis=0)
        return logits, list(scheduler.events)

    return run


def run_worker_sweep(model, cost_model, params, counts, backend, repeats):
    """Serve one burst at each worker count; returns the sweep stats.

    ``workers=1`` is plain in-process execution (the honest baseline --
    pool transport overhead counts *against* the pooled runs).  Pool
    startup is excluded from timing; per-request logits must stay
    bitwise identical across counts.
    """
    requests = params["worker_requests"]
    rng = np.random.default_rng(123)
    images = generate_dataset(
        SyntheticConfig(image_size=params["image_size"], num_classes=8),
        requests, rng).images
    sweep = {}
    reference = None
    for workers in counts:
        scheduler = Scheduler(clock=VirtualClock(), batch_window_ms=10.0)
        scheduler.register("default", model, batch_size=requests,
                           max_batch=requests, cost_model=cost_model,
                           backend=backend, workers=workers)
        served = scheduler.sessions[0]

        def run():
            ids = [scheduler.submit(images[i]) for i in range(requests)]
            results = {r.request_id: r for r in scheduler.flush()}
            return np.concatenate([results[i].logits for i in ids],
                                  axis=0)

        try:
            logits = run()                                # warmup
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                logits = run()
                best = min(best, time.perf_counter() - start)
        finally:
            scheduler.shutdown()
        if reference is None:
            reference = logits
        sweep[workers] = {
            "time_s": best,
            "requests_per_s": requests / best,
            "bitwise_identical": bool((logits == reference).all()),
            "calibration": (None if served.placement is None
                            else list(served.placement.calibration)),
        }
    baseline = sweep[counts[0]]["time_s"]
    for workers in counts:
        sweep[workers]["speedup_vs_1"] = baseline / sweep[workers]["time_s"]
    return {
        "backend": backend,
        "requests": requests,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "counts": {str(workers): stats
                   for workers, stats in sweep.items()},
    }


def run_chaos_lane(model, cost_model, params, backend):
    """Healthy vs chaos: the same burst with worker 0 scripted to die.

    Both runs serve one burst of single-image requests through a
    2-worker pool.  The chaos run's :class:`FaultPlan` kills worker 0
    (``os._exit``) the moment it receives its first batch, stranding
    half the burst mid-flight; the drain must recover it -- re-dispatch
    to the survivor / the respawned slot -- with zero failed requests
    and logits bitwise identical to the healthy run.  Returns the lane
    stats plus a list of gate failures (empty on success).
    """
    from repro.serving import FaultPlan, FaultSpec, RecoveryPolicy, RetryPolicy

    requests = params["worker_requests"]
    rng = np.random.default_rng(321)
    images = generate_dataset(
        SyntheticConfig(image_size=params["image_size"], num_classes=8),
        requests, rng).images
    # Production-shaped policy with a benchmark-friendly respawn pace.
    recovery = RecoveryPolicy(restart_backoff=RetryPolicy(
        attempts=4, backoff_base_s=0.05, backoff_max_s=0.5))

    def serve(fault_plan):
        scheduler = Scheduler(clock=VirtualClock(), batch_window_ms=10.0)
        scheduler.register("default", model, batch_size=requests,
                           max_batch=requests, cost_model=cost_model,
                           backend=backend, workers=2, recovery=recovery,
                           fault_plan=fault_plan)
        try:
            ids = [scheduler.submit(images[i]) for i in range(requests)]
            start = time.perf_counter()
            results = {r.request_id: r
                       for r in scheduler.drain(timeout_ms=600_000)}
            wall = time.perf_counter() - start
            stats = scheduler.stats()["sessions"]["default"]
            failed = [i for i in ids
                      if i not in results or results[i].failed]
            logits = (None if failed else np.concatenate(
                [results[i].logits for i in ids], axis=0))
            return logits, wall, stats, failed
        finally:
            scheduler.shutdown(drain=False)

    healthy_logits, healthy_wall, _, healthy_failed = serve(None)
    chaos_plan = FaultPlan({0: FaultSpec(kill_at_batch=1)})
    chaos_logits, chaos_wall, chaos_stats, chaos_failed = serve(chaos_plan)

    failures = []
    if healthy_failed:
        failures.append(f"chaos lane baseline: {len(healthy_failed)} "
                        f"request(s) failed in the healthy run")
    if chaos_failed:
        failures.append(f"chaos: {len(chaos_failed)} request(s) did not "
                        f"complete after the worker kill")
    bitwise = (healthy_logits is not None and chaos_logits is not None
               and healthy_logits.tobytes() == chaos_logits.tobytes())
    if not chaos_failed and not healthy_failed and not bitwise:
        failures.append("chaos: recovered logits diverged from the "
                        "healthy run")
    recovery_stats = chaos_stats["recovery"]
    if recovery_stats["respawns"] < 1:
        failures.append("chaos: the killed worker was never respawned")
    if recovery_stats["redispatched_requests"] < 1:
        failures.append("chaos: no stranded request was re-dispatched")
    return {
        "backend": backend,
        "requests": requests,
        "fault": "kill worker 0 at batch 1",
        "healthy_wall_s": healthy_wall,
        "chaos_wall_s": chaos_wall,
        "recovery_overhead_s": chaos_wall - healthy_wall,
        "healthy_requests_per_s": requests / healthy_wall,
        "chaos_requests_per_s": requests / chaos_wall,
        "bitwise_identical": bool(bitwise),
        "failed_requests": len(chaos_failed),
        "recovery": recovery_stats,
        "fleet": {"restarts": list(chaos_stats["fleet"]["restarts"]),
                  "incarnations":
                      list(chaos_stats["fleet"]["incarnations"])},
        "degraded": chaos_stats["degraded"],
    }, failures


def run_learned_vs_static(model, images, cost_model, warm=4, evals=4):
    """Flush-latency prediction shootout on live scheduler traffic.

    One scheduler serves bursts with ``learn_cost=True`` (its online
    cost model refits on measured flush walls); a twin serves the same
    bursts from the static table.  After ``warm`` warm-up bursts, each
    of ``evals`` more records the models' flush predictions next to
    the measured flush wall -- the MAPE pair CI gates (the learned
    model must predict host latency at least as well as the
    simulator-calibrated table).  Burst throughput of both schedulers
    is timed round-robin and recorded, ungated.
    """
    requests = images.shape[0]

    def make(learn):
        scheduler = Scheduler(clock=VirtualClock(), batch_window_ms=10.0)
        served = scheduler.register(
            "default", model, batch_size=requests, max_batch=requests,
            cost_model=(OnlineCostModel(cost_model, min_samples=warm)
                        if learn else cost_model),
            learn_cost=learn)
        return scheduler, served

    def burst(scheduler):
        for i in range(requests):
            scheduler.submit(images[i])
        start = time.perf_counter()
        results = scheduler.flush()
        return (time.perf_counter() - start) * 1e3, results

    learned_sched, learned_served = make(learn=True)
    static_sched, static_served = make(learn=False)
    static_ms = static_served.batch_cost_ms(requests)
    for _ in range(warm):
        burst(learned_sched)
        burst(static_sched)
    flushes = []
    for _ in range(evals):
        learned_ms = learned_served.batch_cost_ms(requests)
        wall_ms, results = burst(learned_sched)
        flushes.append({"num_images": requests, "measured_ms": wall_ms,
                        "static_ms": static_ms, "learned_ms": learned_ms})
    static_mape = float(np.mean(
        [abs(f["static_ms"] - f["measured_ms"]) / f["measured_ms"]
         for f in flushes]))
    learned_mape = float(np.mean(
        [abs(f["learned_ms"] - f["measured_ms"]) / f["measured_ms"]
         for f in flushes]))
    # Burst throughput with learned re-planning vs the static baseline
    # (round-robin so host drift hits both lanes equally).
    times, _ = time_round_robin(
        [("learned", lambda: burst(learned_sched)),
         ("static", lambda: burst(static_sched))], evals, warmup=1)
    # Mixed-length bucket plans: the distribution a multi-operating-
    # point mix hands the planner (one burst is a single length and
    # plans trivially identically).
    candidates = {int(model.config.num_tokens)}
    for stage in results[0].tokens_per_stage:
        candidates.update(int(v) for v in np.unique(stage))
    lengths = np.repeat(sorted(candidates), 8)
    return {
        "burst_requests": requests,
        "warmup_bursts": warm,
        "eval_bursts": evals,
        "static_mape": static_mape,
        "learned_mape": learned_mape,
        "per_flush": flushes,
        "coefficients": learned_served.cost_model.coefficients(),
        "bucket_plan": bucket_plan_diff(
            BucketingPolicy(), cost_model,
            learned_served.cost_model, lengths),
        "throughput": {
            "learned_requests_per_s": requests / times["learned"],
            "static_requests_per_s": requests / times["static"],
            "learned_vs_static": times["static"] / times["learned"],
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="small config for CI smoke runs")
    parser.add_argument("--backend",
                        choices=["tensor", "fastpath", "int8", "both",
                                 "all"],
                        default="all",
                        help="which engine backends to serve: 'both' = "
                             "tensor+fastpath, 'all' adds the quantized "
                             "int8 lane (default all)")
    parser.add_argument("--requests", type=int, default=None,
                        help="number of single-image requests in the burst")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-N timing repeats")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero below this tensor-coalesced "
                             "speedup (default: 2.0 unless --tiny)")
    parser.add_argument("--workers", default="1,2",
                        help="comma-separated worker counts to sweep "
                             "(1 = in-process baseline; '' disables "
                             "the sweep)")
    parser.add_argument("--worker-backend", default="tensor",
                        choices=["tensor", "fastpath"],
                        help="engine backend for the workers sweep")
    parser.add_argument("--worker-requests", type=int, default=None,
                        help="burst size for the workers sweep")
    parser.add_argument("--min-worker-scaling", type=float, default=None,
                        help="exit non-zero if the smallest swept "
                             "count > 1 (workers=2 normally) scales "
                             "below this multiple of workers=1 "
                             "(skipped on single-CPU hosts)")
    parser.add_argument("--chaos", action="store_true",
                        help="run the fault-injection lane: kill one of "
                             "2 workers mid-burst and gate full bitwise "
                             "recovery")
    parser.add_argument("--json", default="BENCH_scheduler.json",
                        help="write machine-readable results here "
                             "('' disables)")
    args = parser.parse_args(argv)

    params = dict(TINY if args.tiny else DEFAULT)
    if args.requests is not None:
        if args.requests < 1:
            parser.error("--requests must be >= 1")
        params["requests"] = args.requests
    if args.repeats is not None:
        if args.repeats < 1:
            parser.error("--repeats must be >= 1")
        params["repeats"] = args.repeats
    min_speedup = args.min_speedup
    if min_speedup is None:
        # Tiny smoke runs only check correctness; timing noise on a
        # 4-block model says nothing useful.
        min_speedup = 0.0 if args.tiny else 2.0
    if args.backend == "both":
        backends = ["tensor", "fastpath"]
    elif args.backend == "all":
        backends = ["tensor", "fastpath", "int8"]
    else:
        backends = [args.backend]

    model, images, cost_model = build(params)
    requests = params["requests"]
    print(f"model: {model.config.depth} blocks, "
          f"{model.config.num_tokens} tokens, selectors at "
          f"{dict(zip(model.selector_blocks, model.keep_ratios))}")
    print(f"{requests} single-image requests, best of "
          f"{params['repeats']} repeats (1 warmup)\n")

    naive_session = InferenceSession(model, batch_size=requests,
                                     cost_model=cost_model)
    paths = [("naive",
              lambda: serve_one_at_a_time(naive_session, images))]
    for backend in backends:
        paths.append((backend,
                      make_coalesced_path(model, images, cost_model,
                                          backend)))
    times, values = time_round_robin(paths, params["repeats"])
    naive_time, naive = times["naive"], values["naive"]

    rows = [("per-request submission", naive_time)]
    failures = []
    backend_stats = {}
    tolerance = {"tensor": TOLERANCE, "fastpath": FASTPATH32_TOLERANCE}
    for backend in backends:
        coalesced, events = values[backend]
        diff = float(np.abs(coalesced - naive).max())
        top1 = float((coalesced.argmax(axis=-1)
                      == naive.argmax(axis=-1)).mean())
        if backend == "int8":
            # Quantized lane: real rounding error, so gate on top-1
            # agreement with the float reference instead of logit bits.
            if top1 < INT8_TOP1_MIN:
                failures.append(f"int8: top-1 agreement {top1:.3f} < "
                                f"{INT8_TOP1_MIN:.2f}")
        else:
            if diff > tolerance[backend]:
                failures.append(f"{backend}: logit diff {diff:.2e} > "
                                f"{tolerance[backend]:.0e}")
            if top1 < 1.0:
                failures.append(f"{backend}: argmax diverged")
        backend_stats[backend] = {
            "time_s": times[backend],
            "requests_per_s": requests / times[backend],
            "speedup": naive_time / times[backend],
            "max_logit_diff": diff,
            "argmax_identical": top1 == 1.0,
            "top1_agreement": top1,
            "num_flushes": len(events),
        }
        rows.append((f"scheduler coalesced [{backend}]", times[backend]))

    width = max(len(r[0]) for r in rows)
    print(f"{'path':<{width}}  {'time (s)':>10}  {'req/s':>10}")
    for name, seconds in rows:
        print(f"{name:<{width}}  {seconds:>10.4f}  "
              f"{requests / seconds:>10.1f}")
    for backend in backends:
        stats = backend_stats[backend]
        print(f"\n[{backend}] speedup: {stats['speedup']:.2f}x   "
              f"max |logit diff|: {stats['max_logit_diff']:.2e}   "
              f"top-1 agreement: {stats['top1_agreement']:.3f}")

    # Cost-model fidelity: the scheduler's per-flush batch prediction
    # vs the batch-aware FPGA simulator run at the operating point.
    _, events = values[backends[0]]
    predicted_ms = sum(e.estimated_ms for e in events)
    measured_ms = sum(
        simulated_model_batch_ms(model.config, e.num_images,
                                 selector_blocks=model.selector_blocks,
                                 keep_ratios=model.keep_ratios)
        for e in events)
    flush_error = abs(predicted_ms - measured_ms) / measured_ms
    print(f"\ncost model: predicted {predicted_ms:.3f} ms vs simulator "
          f"{measured_ms:.3f} ms across {len(events)} flushes "
          f"({100 * flush_error:.1f}% error)")

    # ------------------------------------------------------------------
    # Online cost model vs the static table: flush-latency prediction
    # MAPE (gated: learned must not predict worse than static) and
    # burst throughput with learned re-planning (recorded, ungated).
    # ------------------------------------------------------------------
    learned_vs_static = run_learned_vs_static(model, images, cost_model)
    plan = learned_vs_static["bucket_plan"]
    throughput = learned_vs_static["throughput"]
    print(f"\nlearned vs static flush MAPE: "
          f"{100 * learned_vs_static['learned_mape']:.1f}% vs "
          f"{100 * learned_vs_static['static_mape']:.1f}%   "
          f"burst throughput learned/static: "
          f"{throughput['learned_vs_static']:.2f}x   "
          f"mixed-length plans identical: {plan['identical']}")
    if learned_vs_static["learned_mape"] > learned_vs_static["static_mape"]:
        failures.append(
            f"learned cost model predicts flush latency worse than the "
            f"static table: MAPE "
            f"{100 * learned_vs_static['learned_mape']:.1f}% > "
            f"{100 * learned_vs_static['static_mape']:.1f}%")

    # ------------------------------------------------------------------
    # Multi-worker sweep: N executor processes vs in-process execution.
    # ------------------------------------------------------------------
    worker_counts = sorted({int(w) for w in args.workers.split(",") if w})
    worker_sweep = None
    worker_gate_failure = None
    if worker_counts:
        if worker_counts[0] != 1:
            worker_counts.insert(0, 1)    # the baseline is always run
        if args.worker_requests is not None:
            if args.worker_requests < 1:
                parser.error("--worker-requests must be >= 1")
            params["worker_requests"] = args.worker_requests
        worker_sweep = run_worker_sweep(
            model, cost_model, params, worker_counts,
            args.worker_backend, params["repeats"])
        print(f"\nmulti-worker sweep [{args.worker_backend}] "
              f"({worker_sweep['requests']} requests, "
              f"{worker_sweep['cpu_count']} CPU(s)):")
        print(f"{'workers':>8}  {'time (s)':>10}  {'req/s':>10}  "
              f"{'scaling':>8}  bitwise")
        for workers in worker_counts:
            stats = worker_sweep["counts"][str(workers)]
            print(f"{workers:>8}  {stats['time_s']:>10.4f}  "
                  f"{stats['requests_per_s']:>10.1f}  "
                  f"{stats['speedup_vs_1']:>7.2f}x  "
                  f"{stats['bitwise_identical']}")
            if not stats["bitwise_identical"]:
                failures.append(
                    f"workers={workers}: logits diverged from workers=1")
        if args.min_worker_scaling is not None:
            gated = [w for w in worker_counts if w > 1]
            if not gated:
                parser.error("--min-worker-scaling needs a worker "
                             "count > 1 in --workers")
            gate_count = min(gated)     # 2 in the standard sweep
            scaling = worker_sweep["counts"][str(gate_count)][
                "speedup_vs_1"]
            worker_sweep["scaling_gate_workers"] = gate_count
            if (worker_sweep["cpu_count"] or 1) < 2:
                worker_sweep["scaling_gate"] = "skipped (single-CPU host)"
                print(f"worker scaling gate SKIPPED: "
                      f"{worker_sweep['cpu_count']} CPU(s) -- no "
                      f"parallel hardware for a second worker "
                      f"(measured {scaling:.2f}x)")
            elif scaling < args.min_worker_scaling:
                worker_sweep["scaling_gate"] = "failed"
                worker_gate_failure = (
                    f"workers={gate_count} scaling {scaling:.2f}x < "
                    f"required {args.min_worker_scaling:.1f}x")
            else:
                worker_sweep["scaling_gate"] = "passed"
                print(f"worker scaling gate passed: workers={gate_count} "
                      f"at {scaling:.2f}x >= "
                      f"{args.min_worker_scaling:.1f}x")

    # ------------------------------------------------------------------
    # Chaos lane: scripted worker kill mid-burst, gated bitwise recovery.
    # ------------------------------------------------------------------
    chaos = None
    if args.chaos:
        if args.worker_requests is not None:
            params["worker_requests"] = args.worker_requests
        chaos, chaos_failures = run_chaos_lane(
            model, cost_model, params, args.worker_backend)
        failures.extend(chaos_failures)
        print(f"\nchaos lane [{chaos['backend']}] "
              f"({chaos['requests']} requests, {chaos['fault']}):")
        print(f"  healthy: {chaos['healthy_wall_s']:.4f} s "
              f"({chaos['healthy_requests_per_s']:.1f} req/s)   "
              f"chaos: {chaos['chaos_wall_s']:.4f} s "
              f"({chaos['chaos_requests_per_s']:.1f} req/s)   "
              f"recovery overhead: {chaos['recovery_overhead_s']:.4f} s")
        print(f"  bitwise identical: {chaos['bitwise_identical']}   "
              f"failed: {chaos['failed_requests']}   "
              f"respawns: {chaos['recovery']['respawns']}   "
              f"re-dispatched: "
              f"{chaos['recovery']['redispatched_requests']}   "
              f"lost batches: {chaos['recovery']['lost_batches']}")

    gate_backend = "tensor" if "tensor" in backend_stats else backends[0]
    speedup = backend_stats[gate_backend]["speedup"]
    if args.json:
        payload = {
            "benchmark": "scheduler_throughput",
            "tiny": bool(args.tiny),
            "requests": requests,
            "repeats": params["repeats"],
            "naive_time_s": naive_time,
            "naive_requests_per_s": requests / naive_time,
            "scheduler_time_s": times[gate_backend],
            "scheduler_requests_per_s": requests / times[gate_backend],
            "speedup": speedup,
            "max_logit_diff": backend_stats[gate_backend]["max_logit_diff"],
            "backends": backend_stats,
            "num_flushes": backend_stats[gate_backend]["num_flushes"],
            "predicted_flush_ms": predicted_ms,
            "measured_sim_flush_ms": measured_ms,
            "prediction_error": flush_error,
            "learned_vs_static": learned_vs_static,
        }
        if worker_sweep is not None:
            payload["workers"] = worker_sweep
        if chaos is not None:
            payload["chaos"] = chaos
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    if speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x < required "
              f"{min_speedup:.1f}x")
        return 1
    if worker_gate_failure is not None:
        print(f"FAIL: {worker_gate_failure}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
