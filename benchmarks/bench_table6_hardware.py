"""E6 -- Table VI: hardware results under different pruning settings.

Regenerates the full table -- resource utilization, power, FPS
(acceleration rate), and energy efficiency -- for the baseline (16-bit,
dense) and HeatViT (8-bit, token selector) designs of every backbone,
at the paper's three keep-ratio settings.
"""

import pytest

from benchmarks.conftest import print_table
from repro.hardware import ViTAcceleratorSim, baseline_design, heatvit_design
from repro.vit import (DEIT_BASE, DEIT_SMALL, DEIT_TINY, LVVIT_SMALL,
                       StagePlan, pruned_model_gmacs, model_gmacs)

SETTINGS = [(0.90, 0.84, 0.61), (0.70, 0.39, 0.21), (0.42, 0.21, 0.13)]
MODELS = [DEIT_TINY, DEIT_SMALL, LVVIT_SMALL, DEIT_BASE]
# Paper Table VI total speedups (final rows per model).
PAPER_TOTAL_SPEEDUP = {"DeiT-T": 3.46, "DeiT-S": 4.22, "LV-ViT-S": 4.59,
                       "DeiT-B": 4.89}


def simulate_model(config):
    base = ViTAcceleratorSim(config, baseline_design(config)).simulate()
    heat = ViTAcceleratorSim(config, heatvit_design(config))
    rows = [("baseline", "1/1/1", f"{model_gmacs(config):.2f}", 16,
             base.resources["dsp"],
             f"{base.resources['lut'] / 1000:.1f}k",
             base.resources["bram36"], f"{base.power_w:.2f}",
             f"{base.fps:.1f}", "1.00x",
             f"{base.energy_efficiency:.2f}")]
    reports = []
    for ratios in SETTINGS:
        plan = StagePlan.canonical(config.depth, ratios)
        report = heat.simulate(plan)
        reports.append(report)
        rows.append((
            "HeatViT", "/".join(f"{r:.2f}" for r in ratios),
            f"{pruned_model_gmacs(config, plan):.2f}", 8,
            report.resources["dsp"],
            f"{report.resources['lut'] / 1000:.1f}k",
            report.resources["bram36"], f"{report.power_w:.2f}",
            f"{report.fps:.1f}",
            f"{report.speedup_over(base):.2f}x",
            f"{report.energy_efficiency:.2f}"))
    return rows, base, reports


@pytest.mark.parametrize("config", MODELS, ids=lambda c: c.name)
def test_table6(benchmark, config):
    rows, base, reports = benchmark(simulate_model, config)
    print_table(
        f"Table VI ({config.name})",
        ["Design", "Keep 1/2/3", "GMACs", "bits", "DSP", "LUT",
         "BRAM36", "Power(W)", "FPS", "Speedup", "FPS/W"],
        rows)
    paper_speedup = PAPER_TOTAL_SPEEDUP[config.name]
    best = max(r.speedup_over(base) for r in reports)
    print(f"best speedup {best:.2f}x (paper: {paper_speedup}x)")
    # Shape checks: aggressive pruning is fastest, speedups in band.
    fps = [r.fps for r in reports]
    assert fps[0] < fps[1] < fps[2]
    assert best == pytest.approx(paper_speedup, rel=0.45)
    # Resource overhead of the token selector stays trivial.
    for report in reports:
        dsp_points = (report.utilization["dsp"]
                      - base.utilization["dsp"]) * 100
        assert dsp_points < 20
