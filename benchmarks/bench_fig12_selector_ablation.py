"""E12 -- Fig. 12: token selector structure ablation.

MLP-based selectors vs a convolution-based selector, and GELU vs ReLU
vs Hardswish activations inside the classifier -- all fine-tuned under
the same budget, reported as accuracy at matched pruning plans.  The
paper finds MLP+GELU best (and only the MLP variant reuses the GEMM
engine on hardware).
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_CONFIG, fresh_copy, print_table
from repro import nn
from repro.core import ConvTokenClassifier, HeatViT, TrainConfig, train_heatvit
from repro.vit import StagePlan

RATIOS = (0.7, 0.5, 0.35)
TRAIN = TrainConfig(epochs=5, batch_size=32, lr=2e-3,
                    lambda_distill=0.0, lambda_ratio=2.0,
                    lambda_confidence=4.0, seed=5)


def _fit_variant(trained_backbone, bench_data, selector_swap=None,
                 **heatvit_kwargs):
    train, val = bench_data
    plan = StagePlan.canonical(BENCH_CONFIG.depth, RATIOS)
    model = HeatViT(fresh_copy(trained_backbone),
                    dict(zip(plan.boundaries, plan.keep_ratios)),
                    rng=np.random.default_rng(9), **heatvit_kwargs)
    if selector_swap is not None:
        for position, old in enumerate(list(model.selectors)):
            replacement = selector_swap(old, np.random.default_rng(9))
            model.selectors.register_module(str(position), replacement)
    train_heatvit(model, train.images, train.labels, TRAIN)
    model.eval()
    return model.accuracy(val.images, val.labels)


def build_ablation(trained_backbone, bench_data):
    from repro.core import UniformHeadSelector, make_single_head_factory
    grid = BENCH_CONFIG.image_size // BENCH_CONFIG.patch_size

    def conv_factory(rng):
        return ConvTokenClassifier(BENCH_CONFIG.embed_dim,
                                   BENCH_CONFIG.num_heads, grid, rng=rng)

    def uniform_swap(old, rng):
        replacement = UniformHeadSelector(
            BENCH_CONFIG.embed_dim, BENCH_CONFIG.num_heads,
            keep_ratio=old.keep_ratio, rng=rng)
        return replacement

    variants = {
        "MLP + GELU": dict(),
        "MLP + ReLU": dict(activation=nn.ReLU),
        "MLP + Hardswish": dict(activation=nn.Hardswish),
        "Conv + GELU": dict(classifier_factory=conv_factory),
        "single-head (DynamicViT-like)": dict(
            classifier_factory=make_single_head_factory(
                BENCH_CONFIG.embed_dim, BENCH_CONFIG.num_heads)),
        "no attention branch": dict(selector_swap=uniform_swap),
    }
    return {name: _fit_variant(trained_backbone, bench_data, **kwargs)
            for name, kwargs in variants.items()}


def test_fig12_selector_structures(benchmark, trained_backbone,
                                   bench_data):
    accuracies = benchmark.pedantic(
        build_ablation, args=(trained_backbone, bench_data),
        rounds=1, iterations=1)
    rows = [(name, f"{acc:.3f}") for name, acc in accuracies.items()]
    print_table("Fig. 12: selector structure ablation (same plan)",
                ["Selector", "Top-1"], rows)
    # All variants function (well above chance at 4 classes)...
    assert all(acc > 0.3 for acc in accuracies.values())
    # ...and the hardware-relevant headline: only the MLP variants reuse
    # the GEMM engine; the conv variant must not win by a large margin
    # to justify the MLP design.
    mlp_best = max(accuracies["MLP + GELU"], accuracies["MLP + ReLU"],
                   accuracies["MLP + Hardswish"])
    assert accuracies["Conv + GELU"] <= mlp_best + 0.08


def test_fig12_conv_rejects_pruned_input(trained_backbone):
    """The hardware objection, executable: a conv classifier cannot
    score an irregular (already pruned) token set."""
    grid = BENCH_CONFIG.image_size // BENCH_CONFIG.patch_size
    classifier = ConvTokenClassifier(BENCH_CONFIG.embed_dim,
                                     BENCH_CONFIG.num_heads, grid,
                                     rng=np.random.default_rng(0))
    bad_tokens = nn.Tensor(np.zeros((1, grid * grid - 3,
                                     BENCH_CONFIG.embed_dim)))
    with pytest.raises(ValueError):
        classifier(bad_tokens)
