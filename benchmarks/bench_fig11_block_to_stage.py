"""E11 -- Fig. 11: accuracy / token sparsity after block-to-stage training.

Regenerates the per-insertion trace of Algorithm 1: for each block the
selector was inserted before, the accepted keep ratio and the accuracy
after fine-tuning -- showing front blocks resist pruning (the reason
insertion stops before the first blocks).
"""

import numpy as np
import pytest

from benchmarks.conftest import fresh_copy, print_table
from repro.core import (BlockToStageTrainer, LatencySparsityTable,
                        TrainConfig)


def test_fig11_insertion_trace(benchmark, trained_backbone, bench_data):
    train, val = bench_data

    def run():
        table = LatencySparsityTable(
            {0.5: 0.62, 0.6: 0.70, 0.7: 0.78, 0.8: 0.86, 0.9: 0.94,
             1.0: 1.0})
        trainer = BlockToStageTrainer(
            fresh_copy(trained_backbone),
            (train.images[:160], train.labels[:160]),
            (val.images, val.labels),
            table,
            TrainConfig(epochs=1, batch_size=32, lr=5e-4,
                        lambda_distill=0.0),
            min_block=2, ratio_grid=(0.8, 0.6, 0.4),
            rng=np.random.default_rng(8))
        return trainer.run(latency_limit=4.6, accuracy_drop=0.25)

    model, report = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(f"before block {t.block}", f"{t.keep_ratio:.2f}",
             f"{1.0 - t.keep_ratio:.2f}", f"{t.accuracy:.3f}",
             f"{t.latency_ms:.2f}") for t in report.traces]
    print_table("Fig. 11: block-to-stage insertion trace",
                ["Insertion", "keep ratio", "token sparsity",
                 "accuracy", "model latency (ms)"], rows)
    print(f"baseline accuracy: {report.baseline_accuracy:.3f}; "
          f"final: {report.final_accuracy:.3f} at "
          f"{report.final_latency_ms:.2f} ms "
          f"(stages {report.stage_boundaries})")
    # Structure checks: latency never increases as insertions proceed,
    # and the final model meets the structural constraints.
    latencies = [t.latency_ms for t in report.traces]
    assert all(b <= a + 1e-9 for a, b in zip(latencies, latencies[1:]))
    assert report.final_accuracy >= report.baseline_accuracy - 0.30
    assert min(report.stage_boundaries) >= 2   # protected front blocks
