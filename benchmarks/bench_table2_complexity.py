"""E2 -- Table II: computational complexity of one ViT block.

Regenerates the six-row MAC breakdown and the closed-form total for the
paper's backbones, and checks the dense-model GMACs against the numbers
the paper reports (Table VI GMACs column).
"""

import pytest

from benchmarks.conftest import print_table
from repro.vit import (DEIT_BASE, DEIT_SMALL, DEIT_TINY, LVVIT_MEDIUM,
                       LVVIT_SMALL, block_layer_costs, block_macs,
                       model_gmacs)

PAPER_DENSE_GMACS = {"DeiT-T": 1.30, "DeiT-S": 4.60, "DeiT-B": 17.60,
                     "LV-ViT-S": 6.55}


def build_table2(config):
    rows = block_layer_costs(config.num_tokens, config.embed_dim,
                             config.num_heads, config.mlp_hidden_dim)
    return [(r.index, r.module, r.computation, r.input_size,
             r.output_size, f"{r.macs:,}") for r in rows]


def test_table2_rows(benchmark):
    rows = benchmark(build_table2, DEIT_SMALL)
    print_table("Table II (DeiT-S, N=197)",
                ["#", "Module", "Computation", "Input", "Output", "MACs"],
                rows)
    total = block_macs(197, 384, 6, 4 * 384)
    n, d = 197, 384
    assert total == 4 * n * d * d + 2 * n * n * d + 8 * n * d * d


@pytest.mark.parametrize("config", [DEIT_TINY, DEIT_SMALL, DEIT_BASE,
                                    LVVIT_SMALL, LVVIT_MEDIUM],
                         ids=lambda c: c.name)
def test_dense_gmacs_vs_paper(benchmark, config):
    gmacs = benchmark(model_gmacs, config)
    paper = PAPER_DENSE_GMACS.get(config.name)
    print(f"\n{config.name}: measured {gmacs:.2f} GMACs"
          + (f" (paper: {paper})" if paper else " (paper: n/a)"))
    if paper is not None:
        # LV-ViT backbones add a 4-layer convolutional patch stem that
        # the Table II encoder-only model ignores (~7% of total MACs).
        tolerance = 0.08 if config.name.startswith("LV") else 0.06
        assert gmacs == pytest.approx(paper, rel=tolerance)
