"""Shared fixtures for the benchmark harness.

Accuracy experiments (Figs. 2, 4, 5, 6, 11, 12) share one trained
small-scale backbone so the whole ``pytest benchmarks/`` run stays in
the minutes range.  Hardware experiments (Tables III, IV, VI; Figs. 10,
13) use the analytical simulator at full paper scale and need no
training.
"""

import numpy as np
import pytest

from repro.core import TrainConfig, train_backbone
from repro.data import SyntheticConfig, generate_dataset
from repro.vit import VisionTransformer, ViTConfig

# Small-scale stand-in for DeiT-T: a 6x6 patch grid (36 patches) so the
# three-stage pruning pipeline has room to act, while the whole bench
# suite stays in the minutes range.
BENCH_CONFIG = ViTConfig(name="bench-vit", image_size=24, patch_size=4,
                         embed_dim=36, depth=6, num_heads=3,
                         num_classes=4)

DATA_CONFIG = SyntheticConfig(image_size=24, num_classes=4,
                              noise_std=0.08,
                              object_scale_range=(0.25, 0.7),
                              center_jitter=0.3)


@pytest.fixture(scope="session")
def bench_data():
    rng = np.random.default_rng(2023)
    data = generate_dataset(DATA_CONFIG, 440, rng)
    return data.split(train_fraction=0.85, rng=np.random.default_rng(0))


@pytest.fixture(scope="session")
def trained_backbone(bench_data):
    """A backbone trained well above chance (shared by all benches)."""
    train, val = bench_data
    model = VisionTransformer(BENCH_CONFIG, rng=np.random.default_rng(7))
    config = TrainConfig(epochs=25, batch_size=32, lr=2.5e-3,
                         weight_decay=0.01, seed=0)
    train_backbone(model, train.images, train.labels, config)
    model.eval()
    accuracy = model.accuracy(val.images, val.labels)
    print(f"\n[bench setup] backbone val accuracy: {accuracy:.3f}")
    return model


def fresh_copy(backbone):
    """Clone a backbone so destructive experiments stay isolated."""
    copy = VisionTransformer(backbone.config, rng=np.random.default_rng(0))
    copy.load_state_dict(backbone.state_dict())
    copy.eval()
    return copy


def print_table(title, headers, rows):
    """Uniform fixed-width table output for every benchmark."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
