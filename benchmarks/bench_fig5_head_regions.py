"""E8 -- Fig. 5: information regions detected by each attention head.

The paper visualizes the CLS token's attention per head and observes
each head attends to *different* image regions -- the motivation for
the multi-head token classifier.  We regenerate the per-head CLS
attention maps for every block, quantify head diversity (pairwise
total-variation distance between the heads' attention distributions),
and measure how much attention mass lands on ground-truth object
tokens.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_CONFIG, print_table
from repro import nn
from repro.data import patch_object_fraction


def head_attention_stats(trained_backbone, bench_data):
    _, val = bench_data
    images = val.images[:32]
    with nn.no_grad():
        trained_backbone(images)
    heads = trained_backbone.config.num_heads
    per_block = []
    for block in trained_backbone.blocks:
        cls_attn = block.attn.cls_attention()[:, :, 1:]     # (B, h, N)
        cls_attn = cls_attn / cls_attn.sum(-1, keepdims=True)
        distances = []
        for i in range(heads):
            for j in range(i + 1, heads):
                tv = 0.5 * np.abs(cls_attn[:, i]
                                  - cls_attn[:, j]).sum(-1)
                distances.append(float(tv.mean()))
        per_block.append((cls_attn, np.array(distances)))
    coverage = patch_object_fraction(val.masks[:32],
                                     BENCH_CONFIG.patch_size)
    return per_block, coverage


def test_fig5_head_diversity(benchmark, trained_backbone, bench_data):
    per_block, coverage = benchmark.pedantic(
        head_attention_stats, args=(trained_backbone, bench_data),
        rounds=1, iterations=1)
    rows = [(f"block {i}",
             " / ".join(f"{d:.3f}" for d in distances))
            for i, (_, distances) in enumerate(per_block)]
    print_table("Fig. 5: pairwise head TV distance per block",
                ["Block", "head-pair TV distances"], rows)
    # Pick the most head-diverse block (the paper hand-picks heads of
    # a pretrained DeiT-T; head specialization depth varies by model).
    best_index = int(np.argmax([d.mean() for _, d in per_block]))
    _, distances = per_block[best_index]
    uniform_mass = coverage.mean()
    # Object alignment peaks at a *different* (semantic, later) block
    # than raw head diversity (which is positional in early blocks) --
    # report per-block alignment and check the best one.
    alignment_by_block = []
    for attn, _ in per_block:
        alignment_by_block.append(max(
            (attn[:, h] * coverage).sum(-1).mean()
            for h in range(attn.shape[1])))
    best_align = int(np.argmax(alignment_by_block))
    print(f"most diverse block: {best_index} "
          f"(mean TV {distances.mean():.3f}); best object alignment at "
          f"block {best_align}: {alignment_by_block[best_align]:.3f} "
          f"(uniform would be {uniform_mass:.3f})")
    # Headline claims: heads genuinely attend to different regions...
    assert distances.mean() > 0.05
    # ...and in at least one block, some head concentrates on the
    # object region more than uniform attention would.
    assert max(alignment_by_block) > uniform_mass
