"""E1 -- Fig. 2: accuracy vs GMACs trade-off against pruning baselines.

At paper scale this is the ImageNet comparison table (HeatViT-T0 ...
HeatViT-LV-M1); here we regenerate the *shape* of the comparison on the
synthetic task and small backbone: HeatViT (adaptive + packager) against
static top-k pruning, EViT-style fusion, head pruning, and token-channel
pruning at matched compute budgets.

Also reprints the paper's own model-zoo GMAC numbers from the analytic
complexity model (checked in bench_table2/bench_table6).
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_CONFIG, fresh_copy, print_table
from repro.baselines import (ChannelPrunedViT, EViTStyleModel,
                             HeadPrunedViT, StaticTokenPruningViT,
                             rank_channels_by_importance,
                             rank_heads_by_importance)
from repro.core import HeatViT, TrainConfig, train_heatvit
from repro.vit import StagePlan, model_gmacs, pruned_model_gmacs

RATIOS = (0.7, 0.5, 0.35)


def build_tradeoff(trained_backbone, bench_data):
    train, val = bench_data
    config = BENCH_CONFIG
    depth = config.depth
    plan = StagePlan.canonical(depth, RATIOS)
    boundaries = dict(zip(plan.boundaries, plan.keep_ratios))
    rows = []

    dense_acc = trained_backbone.accuracy(val.images, val.labels)
    rows.append(("dense backbone", f"{model_gmacs(config):.4f}",
                 f"{dense_acc:.3f}"))

    # HeatViT: fine-tune selectors (frozen backbone copy for fairness).
    heat = HeatViT(fresh_copy(trained_backbone), boundaries,
                   rng=np.random.default_rng(1))
    train_heatvit(heat, train.images, train.labels,
                  TrainConfig(epochs=10, batch_size=32, lr=2e-3,
                              lambda_distill=0.5, lambda_ratio=2.0,
                              lambda_confidence=4.0, seed=0),
                  teacher=trained_backbone)
    heat.eval()
    heat_acc = heat.accuracy(val.images, val.labels, pruned=True)
    heat_gmacs = float(heat.measured_gmacs(val.images[:24]).mean())
    rows.append(("HeatViT (adaptive+package)", f"{heat_gmacs:.4f}",
                 f"{heat_acc:.3f}"))

    # Adaptive without the packager (IA-RED2/Evo-ViT style discard).
    discard = HeatViT(fresh_copy(trained_backbone), boundaries,
                      rng=np.random.default_rng(1), use_packager=False)
    discard.load_state_dict(heat.state_dict())
    discard.eval()
    discard_acc = discard.accuracy(val.images, val.labels, pruned=True)
    rows.append(("adaptive discard (no package)", f"{heat_gmacs:.4f}",
                 f"{discard_acc:.3f}"))

    # Static top-k and EViT-style fusion at the same plan.
    static = StaticTokenPruningViT(trained_backbone, plan)
    rows.append(("static top-k", f"{static.gmacs():.4f}",
                 f"{static.accuracy(val.images, val.labels):.3f}"))
    evit = EViTStyleModel(trained_backbone, plan)
    rows.append(("EViT-style fusion", f"{evit.gmacs():.4f}",
                 f"{evit.accuracy(val.images, val.labels):.3f}"))

    # Head pruning at a few budgets.
    ranking = rank_heads_by_importance(trained_backbone, val.images[:32])
    for count in (4, 8):
        pruned = HeadPrunedViT(trained_backbone, ranking[:count])
        rows.append((f"head pruning ({count} heads)",
                     f"{pruned.gmacs():.4f}",
                     f"{pruned.accuracy(val.images, val.labels):.3f}"))

    # Token-channel pruning.
    channels = rank_channels_by_importance(trained_backbone)
    for fraction in (0.25, 0.5):
        count = int(fraction * BENCH_CONFIG.embed_dim)
        pruned = ChannelPrunedViT(trained_backbone, channels[:count])
        rows.append((f"channel pruning ({fraction:.0%})",
                     f"{pruned.gmacs():.4f}",
                     f"{pruned.accuracy(val.images, val.labels):.3f}"))
    return rows, dense_acc, heat_acc, discard_acc


def test_fig2_tradeoff(benchmark, trained_backbone, bench_data):
    rows, dense_acc, heat_acc, discard_acc = benchmark.pedantic(
        build_tradeoff, args=(trained_backbone, bench_data),
        rounds=1, iterations=1)
    print_table("Fig. 2: accuracy vs GMACs (synthetic scale)",
                ["Method", "GMACs", "Top-1"], rows)
    # Headline shapes: HeatViT stays close to the dense baseline...
    assert heat_acc > dense_acc - 0.15
    # ...and the packager never hurts relative to plain discarding.
    assert heat_acc >= discard_acc - 0.05
    # Pruned GMACs are genuinely below dense.
    assert float(rows[1][1]) < float(rows[0][1])


def test_fig2_paper_model_zoo(benchmark):
    """Reprint the paper's headline HeatViT model zoo (analytic)."""
    from repro.vit import DEIT_BASE, DEIT_SMALL, DEIT_TINY

    def zoo():
        entries = []
        for config, ratios, name, paper in [
                (DEIT_TINY, (0.70, 0.39, 0.21), "HeatViT-T2-like", 0.75),
                (DEIT_TINY, (0.85, 0.79, 0.51), "HeatViT-T-mid", 1.00),
                (DEIT_TINY, (0.76, 0.70, 0.41), "HeatViT-T1-like", 0.90),
                (DEIT_SMALL, (0.90, 0.84, 0.61), "HeatViT-S3", 3.86),
                (DEIT_SMALL, (0.42, 0.21, 0.13), "HeatViT-S-agg", 2.02),
                (DEIT_BASE, (0.70, 0.39, 0.21), "HeatViT-B-mid", 10.11)]:
            plan = StagePlan.canonical(config.depth, ratios)
            entries.append((name, pruned_model_gmacs(config, plan), paper))
        return entries

    entries = benchmark(zoo)
    print_table("Fig. 2 model zoo GMACs (analytic vs paper)",
                ["Model", "ours", "paper"],
                [(n, f"{g:.2f}", p) for n, g, p in entries])
    for _, ours, paper in entries:
        assert ours == pytest.approx(paper, rel=0.12)
