"""HTTP front door under two-tier load: SLO hit rates + admission.

The serving story's end-to-end benchmark: a real
:class:`repro.serving.FrontDoor` (asyncio HTTP/JSON server) serving a
premium (class-0) request stream riding on bursty bulk (class-1)
traffic, replayed over real sockets by the trace load generator at
wall-clock pacing.  The bulk bursts are sized past the scheduler's
priced admission capacity, so the run exercises the whole overload
policy: class 1 is first *degraded* to the cheaper (more aggressively
pruned) serving target and then *shed* with HTTP 429, while class 0 --
exempt from shedding and eligible for flush preemption -- keeps its
deadline tier.

Acceptance bar: tier-0 deadline-hit rate >= 0.95 (``--min-tier0-hit``)
*while the overload machinery demonstrably fired* (at least one shed
and one degraded bulk request; ``--no-require-overload`` disables that
gate for exploratory runs).  Deadlines are wall-clock and sized for a
pure-python engine on a loaded CI box; the benchmark's claim is about
scheduling behavior, not kernel speed.

Besides the human-readable report it writes ``BENCH_frontdoor.json``
(per-class SLO outcomes, admission/degradation counts, wait-time
percentiles, HTTP throughput) so the serving trajectory is tracked
across commits; CI uploads it as a workflow artifact.  The exact
workload can be pinned for replay elsewhere: ``--save-trace`` writes
the generated trace as JSONL, ``--trace`` replays one from disk.

Usage::

    PYTHONPATH=src python benchmarks/bench_frontdoor.py
    PYTHONPATH=src python benchmarks/bench_frontdoor.py --tiny   # CI smoke
    PYTHONPATH=src python benchmarks/bench_frontdoor.py --speed 2 --save-trace trace.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core import HeatViT
from repro.hardware.latency_table import (FINE_KEEP_RATIO_GRID,
                                          build_cost_model)
from repro.serving import (FrontDoor, FrontDoorClient,
                           HighestFidelityRouter, Scheduler, load_jsonl,
                           replay, save_jsonl, two_tier_trace)
from repro.vit import VisionTransformer, ViTConfig

DEFAULT = dict(image_size=32, patch_size=8, embed_dim=48, depth=12,
               num_heads=4,
               mild_selectors={3: 0.7, 6: 0.5, 9: 0.35},
               aggressive_selectors={3: 0.5, 6: 0.35, 9: 0.25},
               duration_ms=2_000.0, premium_period_ms=50.0,
               bulk_burst_size=32, bulk_burst_period_ms=200.0,
               capacity_images=12, batch_window_ms=40.0,
               tier0_deadline_ms=500.0, tier1_deadline_ms=5_000.0)
TINY = dict(image_size=16, patch_size=4, embed_dim=24, depth=4,
            num_heads=3,
            mild_selectors={2: 0.8},
            aggressive_selectors={1: 0.5, 2: 0.5},
            duration_ms=600.0, premium_period_ms=40.0,
            bulk_burst_size=20, bulk_burst_period_ms=120.0,
            capacity_images=6, batch_window_ms=25.0,
            tier0_deadline_ms=400.0, tier1_deadline_ms=4_000.0)


def build_models(params, seed=0):
    config = ViTConfig(name="bench-frontdoor",
                       image_size=params["image_size"],
                       patch_size=params["patch_size"],
                       embed_dim=params["embed_dim"],
                       depth=params["depth"],
                       num_heads=params["num_heads"], num_classes=8)
    backbone = VisionTransformer(config, rng=np.random.default_rng(seed))
    models = {}
    for name, selectors in (("mild", params["mild_selectors"]),
                            ("aggressive",
                             params["aggressive_selectors"])):
        model = HeatViT(backbone, selectors,
                        rng=np.random.default_rng(seed + 1))
        model.eval()
        models[name] = model
    cost_model = build_cost_model(
        config, keep_ratios=FINE_KEEP_RATIO_GRID,
        extra_tokens=models["mild"].non_patch_slots)
    return models, cost_model


def percentile(values, q):
    return float(np.percentile(values, q)) if values else None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="small config for CI smoke runs")
    parser.add_argument("--speed", type=float, default=1.0,
                        help="trace time compression for the replay "
                             "(2.0 = twice as fast)")
    parser.add_argument("--trace", default=None,
                        help="replay this JSONL trace instead of "
                             "generating the two-tier workload")
    parser.add_argument("--save-trace", default=None,
                        help="write the replayed trace as JSONL")
    parser.add_argument("--min-tier0-hit", type=float, default=0.95,
                        help="exit non-zero below this tier-0 "
                             "deadline-hit rate (0 disables)")
    parser.add_argument("--no-require-overload", action="store_true",
                        help="do not require sheds/degrades to have "
                             "happened (exploratory traces)")
    parser.add_argument("--json", default="BENCH_frontdoor.json",
                        help="write machine-readable results here "
                             "('' disables)")
    args = parser.parse_args(argv)
    if args.speed <= 0:
        parser.error("--speed must be > 0")

    params = dict(TINY if args.tiny else DEFAULT)
    models, cost_model = build_models(params)
    scheduler = Scheduler(
        batch_window_ms=params["batch_window_ms"],
        router=HighestFidelityRouter(),
        priority_tiers={0: params["tier0_deadline_ms"],
                        1: params["tier1_deadline_ms"]})
    mild = scheduler.register("mild", models["mild"],
                              cost_model=cost_model)
    scheduler.register("aggressive", models["aggressive"],
                       cost_model=cost_model)
    scheduler.admission_capacity_ms = mild.batch_cost_ms(
        params["capacity_images"])

    if args.trace:
        trace = load_jsonl(args.trace)
    else:
        trace = two_tier_trace(
            duration_ms=params["duration_ms"],
            premium_period_ms=params["premium_period_ms"],
            bulk_burst_size=params["bulk_burst_size"],
            bulk_burst_period_ms=params["bulk_burst_period_ms"],
            seed=42)
    if args.save_trace:
        save_jsonl(trace, args.save_trace)
        print(f"wrote {args.save_trace}")

    by_class = {}
    for request in trace:
        by_class.setdefault(request.priority, []).append(request)
    print(f"serving {len(trace)} requests over HTTP "
          f"(speed {args.speed:g}x): "
          + ", ".join(f"class {cls}: {len(reqs)}"
                      for cls, reqs in sorted(by_class.items())))
    print(f"admission capacity: {scheduler.admission_capacity_ms:.3f} ms "
          f"(priced, = {params['capacity_images']} images on 'mild'); "
          f"bursts of {params['bulk_burst_size']}")

    wall_start = time.perf_counter()
    with FrontDoor(scheduler, poll_ms=1.0) as door:
        with FrontDoorClient("127.0.0.1", door.port) as client:
            outcomes = replay(trace, client.submit_trace_request,
                              speed=args.speed)
            queued, shed = [], []
            for request, outcome in outcomes:
                if isinstance(outcome, Exception):
                    raise outcome
                status, payload = outcome
                if status == 200:
                    queued.append((request, payload["request_id"]))
                elif status == 429:
                    shed.append(request)
                else:
                    raise RuntimeError(
                        f"unexpected submit response {status}: {payload}")
            completions = {}
            for request, request_id in queued:
                status, result = client.result(request_id, wait=True,
                                               timeout_ms=120_000.0)
                if status != 200:
                    raise RuntimeError(
                        f"result {request_id} not delivered: "
                        f"{status} {result}")
                completions[request_id] = (request, result)
            _, stats = client.stats()
    wall_s = time.perf_counter() - wall_start

    classes = {}
    failures = []
    for cls, requests in sorted(by_class.items()):
        done = [res for req, res in completions.values()
                if req.priority == cls]
        judged = [res for res in done if res["deadline_ms"] is not None]
        hits = sum(res["deadline_met"] for res in judged)
        waits = [res["wait_ms"] for res in done]
        entry = {
            "offered": len(requests),
            "completed": len(done),
            "shed": sum(req.priority == cls for req in shed),
            "degraded": stats["classes"].get(str(cls), {}).get(
                "degraded", 0),
            "deadline_hit_rate": (hits / len(judged)) if judged else None,
            "wait_ms_p50": percentile(waits, 50),
            "wait_ms_p95": percentile(waits, 95),
            "sessions": sorted({res["session"] for res in done}),
        }
        classes[cls] = entry
        rate = ("-" if entry["deadline_hit_rate"] is None
                else f"{entry['deadline_hit_rate']:.3f}")
        print(f"class {cls}: {entry['completed']}/{entry['offered']} "
              f"completed, {entry['shed']} shed, "
              f"{entry['degraded']} degraded, hit rate {rate}, "
              f"wait p50/p95 {entry['wait_ms_p50']:.1f}/"
              f"{entry['wait_ms_p95']:.1f} ms, "
              f"sessions {entry['sessions']}")

    throughput = len(completions) / wall_s
    print(f"wall time {wall_s:.2f} s, {throughput:.1f} completed "
          f"requests/s over HTTP "
          f"({stats['server']['http_requests']} HTTP requests)")

    tier0 = classes.get(0)
    if args.min_tier0_hit > 0:
        if tier0 is None or tier0["deadline_hit_rate"] is None:
            failures.append("no tier-0 deadline-carrying traffic to gate")
        elif tier0["deadline_hit_rate"] < args.min_tier0_hit:
            failures.append(
                f"tier-0 hit rate {tier0['deadline_hit_rate']:.3f} < "
                f"required {args.min_tier0_hit:.2f}")
    if not args.no_require_overload:
        if not shed:
            failures.append("no request was shed: the workload did not "
                            "exercise admission control")
        if not any(entry["degraded"] for entry in classes.values()):
            failures.append("no request was degraded: the workload did "
                            "not exercise the degradation path")
        if tier0 is not None and tier0["shed"]:
            failures.append("class-0 traffic was shed")

    if args.json:
        payload = {
            "benchmark": "frontdoor",
            "tiny": bool(args.tiny),
            "speed": args.speed,
            "offered_requests": len(trace),
            "completed_requests": len(completions),
            "shed_requests": len(shed),
            "wall_s": wall_s,
            "completed_requests_per_s": throughput,
            "admission_capacity_ms": scheduler.admission_capacity_ms,
            "batch_window_ms": params["batch_window_ms"],
            "priority_tiers": {str(cls): ms for cls, ms in
                               scheduler.priority_tiers.items()},
            "classes": {str(cls): entry
                        for cls, entry in classes.items()},
            "flush_reasons": stats["flush_reasons"],
            "server": stats["server"],
            "min_tier0_hit": args.min_tier0_hit,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
