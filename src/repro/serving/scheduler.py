"""Async deadline-aware request scheduler with multi-model routing.

The serving front door for the bucketed engine.  Callers ``submit``
single images or small stacks without blocking; the scheduler coalesces
them into large bucketed batches and executes each batch on one of
several registered :class:`repro.engine.InferenceSession`\\ s (multiple
HeatViT variants or keep-ratio operating points in one process).

Batch formation is priced by each session's batch-aware
:class:`repro.cost.CostModel` (Eq. 18 marginals plus the calibrated
per-batch overhead, via ``InferenceSession.estimated_batch_cost``), and
a flush fires for the first of

* **deadline** -- the earliest queued deadline would no longer survive
  the batch's estimated execution time (a request near its deadline
  forces the flush);
* **capacity** -- pending images reach the session's batch capacity;
* **budget** -- the batch's estimated execution latency reaches the
  configured ``latency_budget_ms`` (collect requests *up to* a latency
  budget, then run);
* **window** -- the oldest pending request has waited ``batch_window_ms``.

A flush takes the earliest-deadline-first prefix of the queue that fits
the capacity/budget caps; what does not fit stays queued and is merged
with the next burst -- partially-filled buckets carry over between
submits via :meth:`repro.engine.InferenceSession.submit_many`, whose
grouped chunking is bitwise-identical to fresh submission.

Production shaping (what the HTTP front door in
:mod:`repro.serving.http` leans on): requests carry a **priority
class** mapped to an SLO deadline tier (``priority_tiers``), the
pending queue orders priority-first then EDF, **admission control**
sheds or degrades sheddable classes when a target's priced backlog
(via :mod:`repro.cost`) exceeds ``admission_capacity_ms``, and
**flush preemption** lets a premium arrival fire a due flush at
submit time instead of waiting out the step/window cadence.

Multi-worker targets are **self-healing** (see
:class:`repro.serving.RecoveryPolicy`): every collect pass runs a
recovery sweep -- hung workers (no reply within the cost-model-derived
dispatch deadline) are terminated, batches stranded on dead workers are
re-dispatched to survivors in EDF order with placement tickets
released, dead workers are respawned under the pool's supervision
budget, and a request whose batches keep killing workers is
*quarantined*: failed cleanly to its caller (a
:class:`~repro.serving.request.RequestResult` with ``error`` set)
after its retry budget, never retried forever.  When the whole pool is
permanently lost the target degrades to in-process execution on the
parent session -- results stay bitwise identical (grouped execution is
placement-invariant), only throughput degrades -- and ``stats()``
records every recovery action.

Time comes from a :class:`repro.serving.clock.Clock` (milliseconds).
The scheduler is step-driven and thread-safe: call :meth:`step` from
your own loop (deterministically, in tests, against a
:class:`VirtualClock`), or :meth:`start` a background thread against
the real clock and collect responses with :meth:`wait_result`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.engine.session import InferenceSession
from repro.serving.clock import Clock, SystemClock
from repro.serving.placement import PlacementPolicy
from repro.serving.queue import RequestQueue
from repro.serving.request import DEFAULT_PRIORITY, Request, RequestResult
from repro.serving.router import LeastLatencyRouter, backend_fidelity
from repro.serving.worker import RecoveryPolicy, WorkerDiedError, WorkerPool

__all__ = ["Scheduler", "ServedModel", "FlushEvent", "AdmissionError"]


class AdmissionError(RuntimeError):
    """A submission was shed by admission control.

    Raised when the priced backlog of every eligible serving target
    exceeds the scheduler's ``admission_capacity_ms`` and the request's
    priority class is sheddable (``priority > 0``).  Carries enough to
    answer an HTTP 429: the class, the backlog that tripped, and the
    capacity it exceeded.
    """

    def __init__(self, message, *, priority, backlog_ms, capacity_ms):
        super().__init__(message)
        self.priority = priority
        self.backlog_ms = backlog_ms
        self.capacity_ms = capacity_ms


@dataclass
class _InFlight:
    """One batch dispatched to a worker, awaiting its reply.

    ``deadline_s`` is **host-monotonic** (``time.monotonic()``), not
    scheduler-clock: the dispatch deadline detects a *process* that
    stopped answering, which only host time can witness -- a virtual
    scheduler clock may not advance at all while a worker hangs.
    """

    requests: list
    ticket: object                  # repro.serving.Placement
    reason: str
    estimated_ms: float = 0.0       # placement-predicted cost (backlog)
    dispatched_s: float = 0.0       # host-monotonic dispatch time
    deadline_s: float = None        # host-monotonic hung-batch deadline
    incarnation: int = 0            # worker incarnation dispatched to


def _recovery_counters():
    """Fresh per-target recovery telemetry (reported by ``stats()``)."""
    return {
        "respawns": 0,               # dead workers restarted
        "lost_batches": 0,           # in-flight batches stranded by deaths
        "hung_workers": 0,           # terminated for missing the deadline
        "redispatched_requests": 0,  # requeued to survivors after a loss
        "failed_requests": 0,        # poison quarantine: budget exhausted
        "shed_on_recovery": 0,       # expired sheddable requests dropped
        "worker_errors": 0,          # error replies absorbed (not raised)
        "corrupt_replies": 0,        # malformed payloads rejected
        "duplicate_replies": 0,      # stale/duplicate replies dropped
        "degraded_flushes": 0,       # in-process flushes after collapse
    }


@dataclass
class ServedModel:
    """One registered serving target.

    With ``workers >= 2`` the target owns a
    :class:`repro.serving.WorkerPool` of executor processes and a
    :class:`repro.serving.PlacementPolicy`; flushed batches are then
    dispatched (non-blocking) instead of executed inline, and
    ``pending`` tracks the in-flight dispatches until their replies are
    collected.
    """

    name: str
    session: InferenceSession
    max_batch: int
    queue: RequestQueue = field(default_factory=RequestQueue)
    pool: WorkerPool = None
    placement: PlacementPolicy = None
    pending: dict = field(default_factory=dict)
    recovery: dict = field(default_factory=_recovery_counters)

    @property
    def degraded(self):
        """Whether the target's worker fleet is permanently lost and
        flushes run in-process (the HTTP front door answers 503 +
        ``Retry-After`` for sheddable classes while this holds)."""
        return self.pool is not None and self.pool.fleet_down

    @property
    def cost_model(self):
        """The session's batch-aware pricing oracle."""
        return self.session.cost_model

    @property
    def marginal_image_ms(self):
        """Per-image marginal cost at the session's operating point.
        Delegates to the session's cached estimate so
        ``invalidate_estimate`` (after ``set_keep_ratios``) reaches
        routing and flush decisions too."""
        return self.session.marginal_image_ms

    def batch_cost(self, num_images):
        """Price an ``num_images`` flush on this target: the session's
        :class:`repro.cost.BatchCost` (per-batch overhead included).
        Routing feasibility and every flush trigger share this single
        estimate."""
        return self.session.estimated_batch_cost(num_images)

    def batch_cost_ms(self, num_images):
        """Scalar shorthand for ``batch_cost(num_images).total_ms``."""
        return self.batch_cost(num_images).total_ms

    @property
    def fidelity(self):
        """Numerics grade of the session's backend/dtype
        (:func:`repro.serving.backend_fidelity`); the
        :class:`HighestFidelityRouter` breaks cost ties toward the
        higher grade when float and quantized replicas serve the same
        operating point."""
        return backend_fidelity(self.session.backend, self.session.dtype)

    @property
    def image_shape(self):
        config = self.session.model.config
        return (config.in_channels, config.image_size, config.image_size)

    def priced_backlog_ms(self):
        """Cost-model price of everything committed to this target:
        the queued images as one batch plus the estimated cost of every
        in-flight dispatch.  The quantity admission control compares
        against capacity."""
        queued = self.queue.pending_images
        total = self.batch_cost_ms(queued) if queued else 0.0
        for inflight in list(self.pending.values()):
            total += inflight.estimated_ms
        return total

    def projected_backlog_ms(self, extra_images):
        """:meth:`priced_backlog_ms` if ``extra_images`` more images
        joined the queue -- priced as one merged batch with the queued
        images, so the per-batch overhead is not double-counted."""
        total = self.batch_cost_ms(self.queue.pending_images + extra_images)
        for inflight in list(self.pending.values()):
            total += inflight.estimated_ms
        return total


@dataclass
class FlushEvent:
    """Telemetry for one executed batch (asserted by the simulation
    harness: flush timing, trigger reason, and remainder carry-over).

    ``worker`` is the executor-process index for multi-worker targets
    (the placement decision), ``None`` for in-process execution; for
    dispatched batches ``estimated_ms`` is the placement policy's
    calibrated prediction."""

    time_ms: float
    session: str
    reason: str
    request_ids: list
    num_images: int
    estimated_ms: float
    carried_requests: int
    worker: int = None


class Scheduler:
    """Deadline-aware batching scheduler over registered sessions.

    Parameters
    ----------
    clock: time source in milliseconds; default real monotonic time.
    router: policy choosing a session for requests without an explicit
        ``model``; default :class:`LeastLatencyRouter` (minimum
        table-estimated latency subject to the deadline).
    batch_window_ms: maximum time any request waits before its session
        flushes regardless of batch fill.
    latency_budget_ms: optional cap on a batch's estimated execution
        latency; reaching it triggers a flush and bounds the batch size.
    deadline_margin_ms: safety margin subtracted from deadlines when
        deciding whether a flush must fire now.
    max_events: cap on the :class:`FlushEvent` telemetry log (oldest
        entries drop first); ``None`` keeps everything (simulations).
    priority_tiers: optional mapping of priority class to a default
        *relative* deadline in ms, applied when a submission names a
        class but no explicit deadline -- the SLO-tier contract clients
        program against (e.g. ``{0: 20.0, 1: 200.0}``).
    admission_capacity_ms: optional priced-backlog capacity.  When a
        sheddable submission (``priority > 0``) would push its routed
        target's :meth:`ServedModel.priced_backlog_ms` past this, the
        scheduler first tries to *degrade* -- re-route to a cheaper
        (lower-fidelity / more aggressively pruned) same-shape session
        with headroom -- and only sheds (:class:`AdmissionError`) when
        no target fits.  Class-0 traffic is never shed.
    preempt_priority: arrivals with ``priority <= preempt_priority``
        re-evaluate the flush condition *at submit time* and fire it
        inline instead of waiting for the next :meth:`step` -- without
        it, a premium request landing just after a step waits out a
        full batch window (worst-case lateness one window).  ``None``
        disables preemption.  Default 0: only the premium tier
        preempts.
    """

    def __init__(self, clock=None, router=None, batch_window_ms=10.0,
                 latency_budget_ms=None, deadline_margin_ms=0.0,
                 max_events=10_000, priority_tiers=None,
                 admission_capacity_ms=None, preempt_priority=0):
        if batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0")
        if latency_budget_ms is not None and latency_budget_ms <= 0:
            raise ValueError("latency_budget_ms must be > 0")
        if priority_tiers is not None:
            priority_tiers = {int(cls): float(ms)
                              for cls, ms in priority_tiers.items()}
            if any(cls < 0 for cls in priority_tiers):
                raise ValueError("priority classes must be >= 0")
            if any(ms <= 0 for ms in priority_tiers.values()):
                raise ValueError("tier deadlines are relative, must be > 0")
        if admission_capacity_ms is not None and admission_capacity_ms <= 0:
            raise ValueError("admission_capacity_ms must be > 0")
        self.clock = clock if clock is not None else SystemClock()
        if not isinstance(self.clock, Clock):
            raise TypeError("clock must be a repro.serving.Clock")
        self.router = router if router is not None else LeastLatencyRouter()
        self.batch_window_ms = float(batch_window_ms)
        self.latency_budget_ms = latency_budget_ms
        self.deadline_margin_ms = float(deadline_margin_ms)
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be >= 1 or None")
        self.max_events = max_events
        self.priority_tiers = priority_tiers
        self.admission_capacity_ms = admission_capacity_ms
        self.preempt_priority = preempt_priority
        self.events = []
        # Per-priority-class serving counters (submitted / completed /
        # deadline hits / degraded / shed), mutated under _results_cond
        # and reported by stats().
        self._class_stats = {}
        self._served = {}
        self._results = {}
        self._results_cond = threading.Condition()
        # _registry_lock guards the _served dict and is only ever held
        # briefly, so submit/routing stays non-blocking while a batch
        # executes; _step_lock serializes flush execution (and is never
        # taken while holding _registry_lock, only the reverse).
        self._registry_lock = threading.Lock()
        self._step_lock = threading.Lock()
        self._next_id = 0
        self._next_task_id = 0
        self._thread = None
        self._stop_event = None
        self._background_error = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name, model=None, *, session=None, batch_size=32,
                 policy=None, cost_model=None, latency_table=None,
                 max_batch=None, backend="tensor", dtype=None,
                 workers=1, worker_ctx="spawn", learn_cost=False,
                 recovery=None, fault_plan=None):
        """Register a serving target under ``name``.

        Pass either a ready :class:`InferenceSession` or a HeatViT
        ``model`` (a session is built around it; with no explicit
        ``cost_model`` / ``latency_table`` the session calibrates a
        batch-aware cost model from the FPGA simulator for the model's
        own config).  ``max_batch`` caps images per flush; default is
        the session's ``batch_size``.  ``backend`` / ``dtype`` select
        the session's compute backend (``"fastpath"`` runs the compiled
        fused-kernel path, ``"int8"``/``"int16"`` the quantized
        deployment numerics; see :mod:`repro.engine.fastpath`).  Mixed
        registrations -- the same checkpoint as a float and an int8
        target -- route by cost with fidelity tie-breaks (see
        :mod:`repro.serving.router`); worker pools rebuild quantized
        sessions from their :class:`repro.engine.SessionSpec`
        bitwise-identically, backend and dtype included.

        ``workers >= 2`` serves the target from a pool of that many
        executor *processes* (see :mod:`repro.serving.worker`): each
        flush is split into up to ``workers`` balanced shards and
        dispatched without blocking to the worker with the lowest
        cost-model-predicted completion time
        (:class:`repro.serving.PlacementPolicy`, online-calibrated from
        the workers' measured timings).  Results are reassembled per
        request and are bitwise identical to in-process execution.
        ``worker_ctx`` picks the multiprocessing start method
        (``"spawn"`` default; the session is shipped as a
        :class:`repro.engine.SessionSpec` when possible).  Call
        :meth:`shutdown` (or use the scheduler as a context manager) to
        join the pools deterministically.

        ``learn_cost=True`` builds the session with an online cost
        model (:class:`repro.cost.OnlineCostModel` around the resolved
        static model): every flush trigger, budget pop, admission
        check, and routing decision for this target then prices from
        coefficients refit against measured host wall time -- the
        in-process path observes its own ``submit_many`` timings, and
        multi-worker targets additionally fold every worker reply's
        shape + timing into the parent's model.  Prediction only:
        logits are unchanged.  A ready ``session`` must be built with
        ``learn_cost=True`` itself.

        ``recovery`` (a :class:`repro.serving.RecoveryPolicy`) tunes
        the target's self-healing: supervision restart budget and
        backoff, heartbeat cadence, per-request re-dispatch budget,
        hung-batch dispatch deadlines, and the per-worker in-flight
        bound (which also caps the placement policy).  ``fault_plan``
        (a :class:`repro.serving.FaultPlan`) scripts deterministic
        worker failures -- the chaos-test hook; leave it ``None`` in
        production.  Both apply to multi-worker targets only.
        """
        if (model is None) == (session is None):
            raise ValueError("pass exactly one of model= or session=")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if session is None:
            session = InferenceSession(model, batch_size=batch_size,
                                       policy=policy,
                                       cost_model=cost_model,
                                       latency_table=latency_table,
                                       backend=backend, dtype=dtype,
                                       learn_cost=learn_cost)
        elif learn_cost and not session.learns_cost:
            raise ValueError(
                "learn_cost=True with a ready session: build the "
                "session with InferenceSession(..., learn_cost=True)")
        max_batch = session.batch_size if max_batch is None else int(max_batch)
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        pool = placement = None
        if workers > 1:
            pool = WorkerPool(session, workers, ctx=worker_ctx,
                              recovery=recovery, fault_plan=fault_plan)
            placement = PlacementPolicy(
                workers, cost_model=session.cost_model,
                max_in_flight=pool.recovery.max_in_flight_per_worker)
        served = ServedModel(name=name, session=session,
                             max_batch=max_batch, pool=pool,
                             placement=placement)
        with self._registry_lock:
            if name in self._served:
                if pool is not None:
                    pool.close()
                raise ValueError(f"session {name!r} already registered")
            self._served[name] = served
        return served

    @property
    def sessions(self):
        """Registered :class:`ServedModel` entries, in registration order."""
        with self._registry_lock:
            return list(self._served.values())

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def submit(self, images, deadline_ms=None, model=None, priority=None):
        """Accept a request; returns its ``request_id`` without blocking.

        ``images``: one image ``(C, H, W)`` or a stack ``(n, C, H, W)``.
        ``deadline_ms``: optional deadline *relative to now* (> 0);
        when omitted and ``priority`` names a configured tier, the
        tier's default deadline applies.
        ``model``: explicit session name; ``None`` lets the router pick
        among the sessions serving this image shape.
        ``priority``: SLO class (lower = more urgent, 0 = premium);
        default :data:`repro.serving.DEFAULT_PRIORITY`.

        Raises :class:`AdmissionError` when admission control is
        configured, the request is sheddable, and no eligible target
        has priced-backlog headroom.  A premium arrival (``priority <=
        preempt_priority``) may execute a due flush inline before
        returning -- worst-case lateness is then bounded by execution
        time, not by the batch window.
        """
        # Snapshot the registry ONCE under its lock: concurrent
        # register() calls mutate _served, and every later read in this
        # method must see one consistent view of it.
        with self._registry_lock:
            served_by_name = dict(self._served)
        if not served_by_name:
            raise RuntimeError("no sessions registered")
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[None]
        if images.ndim != 4 or images.shape[0] < 1:
            raise ValueError(
                "images must be (C, H, W) or (n >= 1, C, H, W); "
                f"got shape {images.shape}")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError("deadline_ms is relative and must be > 0")
        if model is not None and model not in served_by_name:
            raise KeyError(f"unknown session {model!r}; registered: "
                           f"{sorted(served_by_name)}")
        priority = DEFAULT_PRIORITY if priority is None else int(priority)
        if priority < 0:
            raise ValueError("priority must be >= 0 (0 = most urgent)")
        if (deadline_ms is None and self.priority_tiers is not None
                and priority in self.priority_tiers):
            deadline_ms = self.priority_tiers[priority]
        now = self.clock.now()
        with self._results_cond:
            request_id = self._next_id
            self._next_id += 1
        request = Request(
            request_id=request_id, images=images, arrival_ms=now,
            deadline_ms=(None if deadline_ms is None
                         else now + float(deadline_ms)),
            priority=priority, model=model)
        if model is not None:
            served = served_by_name[model]
            if images.shape[1:] != served.image_shape:
                raise ValueError(
                    f"session {served.name!r} serves images of shape "
                    f"{served.image_shape}; got {images.shape[1:]}")
            candidates = [served]
        else:
            candidates = [s for s in served_by_name.values()
                          if images.shape[1:] == s.image_shape]
            if not candidates:
                raise ValueError(
                    f"no session serves images of shape {images.shape[1:]}; "
                    f"registered shapes: "
                    f"{sorted({s.image_shape for s in served_by_name.values()})}")
            served = self.router.route(request, candidates, now)
        served = self._admit(request, served, candidates)
        served.queue.push(request)
        self._count(priority, "submitted")
        if (self.preempt_priority is not None
                and priority <= self.preempt_priority):
            self._preempt(served)
        return request_id

    def _count(self, priority, key, amount=1):
        with self._results_cond:
            stats = self._class_stats.setdefault(priority, {
                "submitted": 0, "completed": 0, "deadline_hits": 0,
                "deadline_misses": 0, "degraded": 0, "shed": 0,
                "failed": 0})
            stats[key] += amount

    # ------------------------------------------------------------------
    # Admission control: shed or degrade when backlog exceeds capacity
    # ------------------------------------------------------------------
    def _admit(self, request, served, candidates):
        """Admission-check ``request`` against its routed target.

        Returns the target to queue on -- usually ``served``; under
        priced-backlog overload a sheddable request is instead
        *degraded* to the cheapest same-shape session with headroom
        (lower fidelity / lower keep-ratio: the INFaaS move -- serve a
        cheaper variant rather than drop), and shed with
        :class:`AdmissionError` only when nowhere fits.  Premium
        (class-0) traffic is exempt: it always lands on its routed
        target.
        """
        capacity = self.admission_capacity_ms
        if capacity is None or request.priority <= 0:
            return served
        backlog = served.projected_backlog_ms(request.num_images)
        if backlog <= capacity:
            return served
        fitting = []
        for candidate in candidates:
            if candidate is served:
                continue
            projected = candidate.projected_backlog_ms(request.num_images)
            if projected <= capacity:
                fitting.append((candidate.marginal_image_ms,
                                -candidate.fidelity, candidate.name,
                                candidate))
        if fitting:
            degraded = min(fitting)[-1]
            self._count(request.priority, "degraded")
            return degraded
        self._count(request.priority, "shed")
        raise AdmissionError(
            f"request {request.request_id} (class {request.priority}) "
            f"shed: priced backlog {backlog:.3f} ms exceeds capacity "
            f"{capacity:.3f} ms on every eligible session",
            priority=request.priority, backlog_ms=backlog,
            capacity_ms=capacity)

    # ------------------------------------------------------------------
    # Flush preemption: premium arrivals do not wait for the next step
    # ------------------------------------------------------------------
    def _preempt(self, served):
        """Re-evaluate the flush condition for ``served`` right now.

        Called at submit time for premium-tier arrivals: if the new
        request makes a flush due (its deadline is inside the pending
        batch's estimated execution time, or it filled the batch), the
        flush fires inline instead of waiting out the step/window
        cadence.  Runs under the step lock, so it serializes cleanly
        with a concurrent :meth:`step`; by the time the lock is
        acquired a racing step may have already flushed -- then
        ``_flush_reason`` is simply ``None`` and this is a no-op.
        """
        with self._step_lock:
            while True:
                now = self.clock.now()
                reason = self._flush_reason(served, now)
                if reason is None:
                    break
                self._execute(served, now, reason)
            self._collect(served, block=False)

    def pending_requests(self):
        return sum(len(s.queue) for s in self.sessions)

    def in_flight_batches(self):
        """Batches dispatched to worker pools, awaiting their replies."""
        return sum(len(s.pending) for s in self.sessions)

    # ------------------------------------------------------------------
    # Batch formation and execution
    # ------------------------------------------------------------------
    def step(self):
        """Fire every due flush at the current clock time.

        Returns the :class:`RequestResult`\\ s completed by this call
        (also retained for :meth:`wait_result` / :meth:`pop_result`).
        Drive this from a loop -- the simulation harness advances a
        virtual clock between calls; :meth:`start` runs it on a thread.
        """
        completed = []
        with self._step_lock:
            for served in self.sessions:
                while True:
                    # Re-read per flush: with a real clock, earlier
                    # batches in this step consumed host time, and both
                    # the flush decision and completed_ms must see it.
                    now = self.clock.now()
                    reason = self._flush_reason(served, now)
                    if reason is None:
                        break
                    completed.extend(self._execute(served, now, reason))
                # Multi-worker targets complete asynchronously: pick up
                # whatever replies have arrived, without blocking.
                completed.extend(self._collect(served, block=False))
        return completed

    def flush(self, model=None, wait=True):
        """Force-run everything pending (for ``model``, or everywhere).

        For multi-worker targets the queued batches are dispatched
        across the pool and, with ``wait=True`` (default), their
        results collected before returning; ``wait=False`` leaves them
        in flight (pick them up via :meth:`step` or :meth:`drain`).
        """
        completed = []
        if model is not None:
            with self._registry_lock:
                if model not in self._served:
                    raise KeyError(f"unknown session {model!r}; "
                                   f"registered: {sorted(self._served)}")
                targets = [self._served[model]]
        with self._step_lock:
            if model is None:
                targets = self.sessions
            for served in targets:
                completed.extend(self._run_down(served, wait=wait))
        return completed

    def drain(self, timeout_ms=None):
        """Run every queued request and every in-flight batch to
        completion; returns the newly completed results.

        The deterministic end-of-stream operation: after it returns,
        no request is queued and no batch is in flight on any worker.
        Worker deaths during the drain are *recovered*, not raised --
        stranded batches re-dispatch to survivors (respawned under the
        supervision budget) and quarantined requests come back as
        failed results.  ``timeout_ms`` bounds the whole per-target
        run-down (``TimeoutError`` on expiry); ``None`` waits until
        everything completes or fails cleanly.
        """
        completed = []
        with self._step_lock:
            for served in self.sessions:
                completed.extend(self._run_down(served, wait=True,
                                                timeout_ms=timeout_ms))
        return completed

    def _run_down(self, served, wait, timeout_ms=None):
        """Dispatch/execute everything queued on ``served``; with
        ``wait``, alternate dispatch and collect (recovery included)
        until nothing is queued or in flight.

        The alternation is what makes run-down converge under
        failures: a dispatch round may find every eligible worker
        saturated (shards bounce back to the queue) or lose a worker
        mid-burst (recovery requeues its batches), and the following
        collect frees capacity, respawns, or fails quarantined
        requests -- the per-request retry budget bounds how often any
        request can cycle, so the loop terminates.
        """
        completed = []
        deadline = (None if timeout_ms is None
                    else time.monotonic() + timeout_ms / 1e3)
        while True:
            progressed = False
            while len(served.queue):
                before = len(served.queue)
                completed.extend(self._execute(served, self.clock.now(),
                                               "forced"))
                if len(served.queue) >= before:
                    break           # saturated: shards bounced back
                progressed = True
            if not wait:
                break
            remaining_ms = (None if deadline is None else
                            max(0.0, (deadline - time.monotonic()) * 1e3))
            completed.extend(self._collect(
                served, block=bool(served.pending),
                timeout_ms=remaining_ms))
            if not len(served.queue) and not served.pending:
                break
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"{len(served.pending)} in-flight batch(es) and "
                    f"{len(served.queue)} queued request(s) on "
                    f"{served.name!r} not completed in {timeout_ms} ms")
            if not progressed and not served.pending:
                # Queue blocked on a respawn backoff window: nothing in
                # flight to wait on, so yield briefly instead of
                # spinning until the supervisor may restart a worker.
                time.sleep(0.005)
        return completed

    def _flush_reason(self, served, now):
        queue = served.queue
        pending_images = queue.pending_images
        if not pending_images:
            return None
        if not self._can_dispatch(served):
            # Backpressure: every live worker is at its in-flight bound
            # (or the fleet is mid-respawn).  Defer the flush -- the
            # queue keeps absorbing arrivals and the next collect frees
            # capacity.  A permanently-lost fleet does NOT defer: it
            # falls through and flushes in-process (degraded mode).
            return None
        if pending_images >= served.max_batch:
            return "capacity"
        batch_cost = served.batch_cost_ms(min(pending_images,
                                              served.max_batch))
        if (self.latency_budget_ms is not None
                and batch_cost >= self.latency_budget_ms):
            return "budget"
        earliest = queue.earliest_deadline_ms
        if (earliest is not None
                and now + batch_cost + self.deadline_margin_ms >= earliest):
            return "deadline"
        oldest = queue.oldest_arrival_ms
        if oldest is not None and now - oldest >= self.batch_window_ms:
            return "window"
        return None

    def _can_dispatch(self, served):
        """Whether a flush on ``served`` has somewhere to go: some live
        worker under its in-flight bound, or the degraded in-process
        path (no pool, or the fleet permanently lost)."""
        if served.pool is None or served.pool.fleet_down:
            return True
        return any(served.placement.has_capacity(worker)
                   for worker in served.pool.alive_workers())

    def _log_event(self, event):
        self.events.append(event)
        if (self.max_events is not None
                and len(self.events) > self.max_events):
            del self.events[:len(self.events) - self.max_events]

    def _store(self, completed):
        with self._results_cond:
            for item in completed:
                self._results[item.request_id] = item
                stats = self._class_stats.setdefault(item.priority, {
                    "submitted": 0, "completed": 0, "deadline_hits": 0,
                    "deadline_misses": 0, "degraded": 0, "shed": 0,
                    "failed": 0})
                if item.failed:
                    # Quarantined/shed by recovery: a clean failure is
                    # not a completion, and it never judged a deadline.
                    stats["failed"] += 1
                    continue
                stats["completed"] += 1
                if item.deadline_ms is not None:
                    key = ("deadline_hits" if item.deadline_met
                           else "deadline_misses")
                    stats[key] += 1
            self._results_cond.notify_all()
        return completed

    def stats(self):
        """Serving telemetry snapshot (what ``GET /stats`` reports).

        Per-session queue depth / priced backlog / in-flight batches,
        per-priority-class admission and deadline counters (with the
        derived ``deadline_hit_rate`` over deadline-carrying completions),
        and a histogram of flush-trigger reasons from the event log.
        """
        sessions = {}
        for served in self.sessions:
            entry = {
                "queued_requests": len(served.queue),
                "queued_images": served.queue.pending_images,
                "priced_backlog_ms": served.priced_backlog_ms(),
                "in_flight_batches": len(served.pending),
                "backend": served.session.backend,
                "fidelity": served.fidelity,
                "workers": (served.pool.num_workers
                            if served.pool is not None else 1),
                "recovery": dict(served.recovery),
            }
            if served.pool is not None:
                entry["degraded"] = served.degraded
                entry["fleet"] = served.pool.supervision_snapshot()
            sessions[served.name] = entry
        reasons = {}
        with self._results_cond:
            classes = {}
            for priority, counters in sorted(self._class_stats.items()):
                entry = dict(counters)
                judged = entry["deadline_hits"] + entry["deadline_misses"]
                entry["deadline_hit_rate"] = (
                    entry["deadline_hits"] / judged if judged else None)
                classes[priority] = entry
            pending_results = len(self._results)
        for event in list(self.events):
            reasons[event.reason] = reasons.get(event.reason, 0) + 1
        return {
            "sessions": sessions,
            "classes": classes,
            "flush_reasons": reasons,
            "num_events": len(self.events),
            "pending_results": pending_results,
            "admission_capacity_ms": self.admission_capacity_ms,
            "priority_tiers": (dict(self.priority_tiers)
                               if self.priority_tiers else None),
            "preempt_priority": self.preempt_priority,
        }

    def _execute(self, served, now, reason):
        requests = served.queue.pop_batch(
            max_images=served.max_batch,
            latency_budget_ms=self.latency_budget_ms,
            batch_cost_ms=served.batch_cost_ms)
        if served.pool is not None and not served.pool.fleet_down:
            return self._dispatch(served, requests, now, reason)
        try:
            result, slices = served.session.submit_many(
                [r.images for r in requests])
        except Exception:
            # Never lose co-batched requests to one failing execution.
            for request in requests:
                served.queue.push(request)
            raise
        if served.pool is not None:
            # The fleet is permanently lost; this flush ran in-process
            # on the parent session (graceful degradation -- identical
            # logits, reduced throughput).  Record it.
            served.recovery["degraded_flushes"] += 1
        num_images = sum(r.num_images for r in requests)
        self._log_event(FlushEvent(
            time_ms=now, session=served.name, reason=reason,
            request_ids=[r.request_id for r in requests],
            num_images=num_images,
            estimated_ms=served.batch_cost_ms(num_images),
            carried_requests=len(served.queue)))
        completed = []
        for request, rows in zip(requests, slices):
            completed.append(RequestResult(
                request_id=request.request_id,
                logits=result.logits[rows],
                latency_ms=result.latency_ms[rows],
                session=served.name,
                arrival_ms=request.arrival_ms,
                completed_ms=now,
                deadline_ms=request.deadline_ms,
                priority=request.priority,
                tokens_per_stage=[stage[rows] for stage in
                                  result.tokens_per_stage]))
        return self._store(completed)

    # ------------------------------------------------------------------
    # Multi-worker dispatch and reassembly
    # ------------------------------------------------------------------
    @staticmethod
    def _shard_requests(requests, num_shards):
        """Split a popped batch into up to ``num_shards`` contiguous,
        image-count-balanced shards (requests stay atomic, EDF order is
        preserved -- shard 0 holds the earliest deadlines)."""
        k = min(num_shards, len(requests))
        if k <= 1:
            return [requests]
        total = sum(r.num_images for r in requests)
        shards, current, images_done = [], [], 0
        for index, request in enumerate(requests):
            current.append(request)
            images_done += request.num_images
            remaining = len(requests) - index - 1
            if (len(shards) + 1 < k and remaining >= 1
                    and images_done * k >= total * (len(shards) + 1)):
                shards.append(current)
                current = []
        shards.append(current)
        return shards

    def _dispatch(self, served, requests, now, reason):
        """Fan a popped batch out across the worker pool, non-blocking.

        Each shard goes to the live, under-capacity worker with the
        lowest cost-model-predicted completion time; replies are
        reassembled by :meth:`_collect`.  Shards that find no eligible
        worker (the fleet saturated or mid-respawn) -- or whose target
        dies between placement and enqueue (:class:`WorkerDiedError`)
        -- bounce back onto the queue, which re-sorts them into EDF
        position; nothing is ever stranded on a dead worker's queue.
        Returns ``[]`` -- nothing completes synchronously.
        """
        pool, policy = served.pool, served.pool.recovery
        deferred = []
        for shard in self._shard_requests(requests, pool.num_workers):
            num_images = sum(r.num_images for r in shard)
            raw_ms = served.batch_cost_ms(num_images)
            eligible = [worker for worker in pool.alive_workers()
                        if served.placement.has_capacity(worker)]
            if not eligible:
                deferred.append(shard)
                continue
            ticket = None
            try:
                ticket = served.placement.assign(
                    raw_ms, now_ms=now, num_images=num_images,
                    candidates=eligible)
                with self._results_cond:
                    task_id = self._next_task_id
                    self._next_task_id += 1
                incarnation = served.pool.dispatch(
                    task_id, [r.images for r in shard], ticket.worker)
            except LookupError:
                deferred.append(shard)
                continue
            except WorkerDiedError:
                # Died between the liveness snapshot and the enqueue;
                # recovery will respawn it -- just redirect the shard.
                served.placement.complete(ticket, now_ms=now)
                deferred.append(shard)
                continue
            except Exception:
                if ticket is not None:
                    served.placement.complete(ticket, now_ms=now)
                deferred.append(shard)
                for waiting in deferred:
                    for request in waiting:
                        served.queue.push(request)
                raise
            # Hung-batch deadline: host time, scaled off the placement
            # prediction so big batches get proportionally more rope,
            # floored so estimator noise never kills healthy workers.
            dispatched_s = time.monotonic()
            predicted_s = max(ticket.completion_ms - now, 0.0) / 1e3
            deadline_s = dispatched_s + max(
                policy.min_dispatch_timeout_s,
                policy.dispatch_timeout_factor * predicted_s)
            served.pending[task_id] = _InFlight(
                requests=shard, ticket=ticket, reason=reason,
                estimated_ms=ticket.predicted_ms,
                dispatched_s=dispatched_s, deadline_s=deadline_s,
                incarnation=incarnation)
            self._log_event(FlushEvent(
                time_ms=now, session=served.name, reason=reason,
                request_ids=[r.request_id for r in shard],
                num_images=num_images,
                estimated_ms=ticket.predicted_ms,
                carried_requests=len(served.queue),
                worker=ticket.worker))
        for shard in deferred:
            for request in shard:
                served.queue.push(request)
        return []

    def _collect(self, served, block=False, timeout_ms=None):
        """Reassemble finished worker batches into request results.

        Every pass runs the recovery sweep (hung-worker termination,
        lost-batch re-dispatch, supervision respawns) before polling,
        so background serving heals on the non-blocking :meth:`step`
        path too, not only in drains.  Non-blocking by default;
        ``block=True`` waits until no batch of this target is in
        flight (recovery may move its requests back to the queue --
        the caller's run-down loop re-dispatches them), raising
        ``TimeoutError`` when ``timeout_ms`` expires first.
        """
        completed = []
        if served.pool is None:
            return completed
        deadline = (None if timeout_ms is None
                    else time.monotonic() + timeout_ms / 1e3)
        while True:
            completed.extend(self._recover_lost_workers(served))
            replies = served.pool.poll(
                timeout_s=0.05 if (block and served.pending) else 0.0)
            for reply in replies:
                completed.extend(self._finish_reply(served, reply))
            if not served.pending:
                break
            if not replies:
                if not block:
                    break
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(
                        f"{len(served.pending)} in-flight batch(es) on "
                        f"{served.name!r} not completed in {timeout_ms} ms")
        return completed

    def _recover_lost_workers(self, served):
        """The recovery sweep: terminate hung workers, re-dispatch
        batches stranded on dead ones, respawn under the supervision
        budget.  Returns the failed results it produced (quarantined or
        shed requests) -- never raises for a worker failure.

        A batch is *lost* when its worker is dead **or** its slot has
        moved to a newer incarnation -- supervision may respawn a dead
        worker before this sweep ever saw the death (the respawn races
        the sweep, including from a concurrent stepping thread), and
        aliveness alone would then strand the dead incarnation's
        batches until the hung deadline terminated the healthy
        replacement.  Hung first: an in-flight batch past its
        host-monotonic dispatch deadline means *the incarnation it was
        dispatched to* took the task and went silent (``is_alive()``
        cannot see it); that incarnation is terminated -- the kill is
        incarnation-guarded, so a respawn that slipped in is never
        executed for its predecessor's batch -- and it joins the dead
        set this same sweep, its batches recovering through the one
        path below.  Each stranded request pays one unit of its retry
        budget; over budget is the **poison quarantine** -- the
        request is failed cleanly to its caller (some batches *cause*
        crashes, and re-dispatching one forever would grind the fleet
        down worker by worker).  Expired sheddable requests fail
        through the shed accounting instead of being silently served
        late.
        """
        pool = served.pool
        failed = []
        if pool is None or pool.closed:
            return failed
        host_now = time.monotonic()
        alive, incarnations = pool.liveness()

        def is_lost(inflight):
            worker = inflight.ticket.worker
            return (worker not in alive
                    or incarnations[worker] != inflight.incarnation)

        hung = {(inflight.ticket.worker, inflight.incarnation)
                for inflight in served.pending.values()
                if (not is_lost(inflight)
                    and inflight.deadline_s is not None
                    and host_now > inflight.deadline_s)}
        for worker, incarnation in sorted(hung):
            pool.terminate_worker(worker, incarnation=incarnation)
            served.recovery["hung_workers"] += 1
        if hung:
            alive, incarnations = pool.liveness()
        lost = [task_id for task_id, inflight in served.pending.items()
                if is_lost(inflight)]
        if lost:
            now = self.clock.now()
            for task_id in sorted(lost):
                inflight = served.pending.pop(task_id)
                served.placement.complete(inflight.ticket, now_ms=now)
                served.recovery["lost_batches"] += 1
                failed.extend(self._requeue_recovered(
                    served, inflight.requests, now,
                    f"worker {inflight.ticket.worker} lost batch "
                    f"{task_id} on {served.name!r}"))
        respawned = pool.respawn_dead()
        served.recovery["respawns"] += len(respawned)
        return self._store(failed) if failed else failed

    def _requeue_recovered(self, served, requests, now, why):
        """Route one lost batch's requests: back onto the queue (the
        push re-sorts them into EDF position) while their retry budget
        lasts, else a clean failure; expired sheddable requests fail
        through the shed accounting.  Returns the failed results (the
        caller stores them)."""
        policy = served.pool.recovery
        failed = []
        for request in requests:
            request.retries += 1
            if request.retries > policy.max_request_retries:
                served.recovery["failed_requests"] += 1
                failed.append(self._failed_result(
                    served, request, now,
                    f"{why}; re-dispatch budget "
                    f"({policy.max_request_retries}) exhausted -- "
                    f"poison-batch quarantine"))
                continue
            if (policy.shed_expired_on_recovery
                    and request.priority > 0
                    and request.deadline_ms is not None
                    and now > request.deadline_ms):
                self._count(request.priority, "shed")
                served.recovery["shed_on_recovery"] += 1
                failed.append(self._failed_result(
                    served, request, now,
                    f"{why}; deadline passed during recovery, shed"))
                continue
            served.queue.push(request)
            served.recovery["redispatched_requests"] += 1
        return failed

    def _failed_result(self, served, request, now, error):
        """A clean failure: the terminal answer recovery owes a caller
        it cannot serve (poison quarantine / shed-on-recovery)."""
        return RequestResult(
            request_id=request.request_id, logits=None, latency_ms=None,
            session=served.name, arrival_ms=request.arrival_ms,
            completed_ms=now, deadline_ms=request.deadline_ms,
            priority=request.priority, error=str(error))

    def _finish_reply(self, served, reply):
        inflight = served.pending.pop(reply.task_id, None)
        if inflight is None:
            # At-most-once delivery: a duplicate of a reply already
            # finished, or a stale reply for a batch recovery already
            # retired (the worker enqueued it before dying, or the
            # pipe drained late).  Either way the requests were (or
            # will be) answered elsewhere -- results are bitwise
            # reproducible, so the extra copy is simply dropped.
            served.recovery["duplicate_replies"] += 1
            return []
        now = self.clock.now()
        if reply.kind == "error":
            # The worker survived; the *batch* failed.  Absorb it into
            # the retry budget instead of raising -- one poisoned
            # execution must not kill the serving loop.
            served.placement.complete(inflight.ticket, now_ms=now)
            served.recovery["worker_errors"] += 1
            failed = self._requeue_recovered(
                served, inflight.requests, now,
                f"worker {reply.worker} failed executing batch "
                f"{reply.task_id} on {served.name!r}: {reply.error}")
            return self._store(failed) if failed else failed
        expected = sum(r.num_images for r in inflight.requests)
        rows = (None if reply.logits is None
                else int(reply.logits.shape[0]))
        if rows != expected:
            # Malformed payload (truncated on the wire / fault
            # injection): reject and retry, never deliver wrong rows.
            served.placement.complete(inflight.ticket, now_ms=now)
            served.recovery["corrupt_replies"] += 1
            failed = self._requeue_recovered(
                served, inflight.requests, now,
                f"worker {reply.worker} returned a corrupt reply for "
                f"batch {reply.task_id} on {served.name!r} "
                f"({rows} logits rows, expected {expected})")
            return self._store(failed) if failed else failed
        served.placement.complete(inflight.ticket, now_ms=now,
                                  measured_ms=reply.wall_time_s * 1e3)
        # Worker replies are measurements too: fold the shard's shape +
        # timing into the parent session's online cost model, so flush
        # and admission pricing for this target learns from the whole
        # pool, not only from in-process executions.
        if served.session.learns_cost and reply.num_images:
            chunks = -(-reply.num_images // served.session.batch_size)
            served.session.cost_model.observe_batch(
                reply.num_images, reply.wall_time_s * 1e3,
                num_batches=chunks)
        completed, offset = [], 0
        for request in inflight.requests:
            rows = slice(offset, offset + request.num_images)
            offset += request.num_images
            completed.append(RequestResult(
                request_id=request.request_id,
                logits=reply.logits[rows],
                latency_ms=reply.latency_ms[rows],
                session=served.name,
                arrival_ms=request.arrival_ms,
                completed_ms=now,
                deadline_ms=request.deadline_ms,
                priority=request.priority,
                tokens_per_stage=[stage[rows] for stage in
                                  reply.tokens_per_stage]))
        return self._store(completed)

    # ------------------------------------------------------------------
    # Result retrieval
    # ------------------------------------------------------------------
    def pop_result(self, request_id):
        """Return and forget a completed result, or ``None`` if pending."""
        with self._results_cond:
            return self._results.pop(request_id, None)

    def wait_result(self, request_id, timeout_ms=None):
        """Block until ``request_id`` completes (background-thread mode).

        Raises ``TimeoutError`` after ``timeout_ms`` (``None`` waits
        forever), or ``RuntimeError`` if the background stepping thread
        died -- waiters are woken instead of hanging on a flush that can
        never fire.  With a step-driven scheduler, something must call
        :meth:`step` or :meth:`flush` concurrently, or this would wait
        for a flush that never fires.
        """
        timeout = None if timeout_ms is None else timeout_ms / 1e3
        with self._results_cond:
            done = self._results_cond.wait_for(
                lambda: (request_id in self._results
                         or self._background_error is not None),
                timeout=timeout)
            if request_id in self._results:
                return self._results.pop(request_id)
            if self._background_error is not None:
                raise RuntimeError(
                    "scheduler background thread died"
                ) from self._background_error
            raise TimeoutError(
                f"request {request_id} not completed in {timeout_ms} ms")

    # ------------------------------------------------------------------
    # Background driver (real-clock serving)
    # ------------------------------------------------------------------
    def start(self, poll_ms=1.0):
        """Run :meth:`step` on a daemon thread every ``poll_ms``."""
        if self._thread is not None:
            raise RuntimeError("scheduler already started")
        self._stop_event = threading.Event()
        self._background_error = None

        def loop():
            while not self._stop_event.is_set():
                try:
                    self.step()
                except Exception as exc:       # surface, don't hang waiters
                    with self._results_cond:
                        self._background_error = exc
                        self._results_cond.notify_all()
                    return
                self._stop_event.wait(poll_ms / 1e3)

        self._thread = threading.Thread(target=loop, daemon=True,
                                        name="repro-serving-scheduler")
        self._thread.start()

    def stop(self, drain=True):
        """Stop the background thread; by default run remaining requests
        (queued *and* in flight on worker pools) to completion."""
        if self._thread is None:
            return []
        self._stop_event.set()
        self._thread.join()
        self._thread = None
        self._stop_event = None
        return self.drain() if drain else []

    def shutdown(self, drain=True):
        """Graceful end of life, deterministic and idempotent.

        Joins the background stepping thread (if running), runs every
        queued request and in-flight batch to completion (``drain=True``
        default), then joins every worker pool's processes.  After it
        returns no scheduler thread or executor process is alive --
        what tests assert to guarantee no daemon-thread or process
        leaks.  Returns the drained results.  The scheduler remains
        usable for in-process targets afterwards, but multi-worker
        targets are closed for good.
        """
        results = self.stop(drain=False)
        if drain:
            results = results + self.drain()
        for served in self.sessions:
            if served.pool is not None:
                served.pool.close()
        return results

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.shutdown(drain=exc_type is None)
