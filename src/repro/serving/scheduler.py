"""Async deadline-aware request scheduler with multi-model routing.

The serving front door for the bucketed engine.  Callers ``submit``
single images or small stacks without blocking; the scheduler coalesces
them into large bucketed batches and executes each batch on one of
several registered :class:`repro.engine.InferenceSession`\\ s (multiple
HeatViT variants or keep-ratio operating points in one process).

Batch formation is priced by each session's batch-aware
:class:`repro.cost.CostModel` (Eq. 18 marginals plus the calibrated
per-batch overhead, via ``InferenceSession.estimated_batch_cost``), and
a flush fires for the first of

* **deadline** -- the earliest queued deadline would no longer survive
  the batch's estimated execution time (a request near its deadline
  forces the flush);
* **capacity** -- pending images reach the session's batch capacity;
* **budget** -- the batch's estimated execution latency reaches the
  configured ``latency_budget_ms`` (collect requests *up to* a latency
  budget, then run);
* **window** -- the oldest pending request has waited ``batch_window_ms``.

A flush takes the earliest-deadline-first prefix of the queue that fits
the capacity/budget caps; what does not fit stays queued and is merged
with the next burst -- partially-filled buckets carry over between
submits via :meth:`repro.engine.InferenceSession.submit_many`, whose
grouped chunking is bitwise-identical to fresh submission.

Time comes from a :class:`repro.serving.clock.Clock` (milliseconds).
The scheduler is step-driven and thread-safe: call :meth:`step` from
your own loop (deterministically, in tests, against a
:class:`VirtualClock`), or :meth:`start` a background thread against
the real clock and collect responses with :meth:`wait_result`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.engine.session import InferenceSession
from repro.serving.clock import Clock, SystemClock
from repro.serving.queue import RequestQueue
from repro.serving.request import Request, RequestResult
from repro.serving.router import LeastLatencyRouter

__all__ = ["Scheduler", "ServedModel", "FlushEvent"]


@dataclass
class ServedModel:
    """One registered serving target."""

    name: str
    session: InferenceSession
    max_batch: int
    queue: RequestQueue = field(default_factory=RequestQueue)

    @property
    def cost_model(self):
        """The session's batch-aware pricing oracle."""
        return self.session.cost_model

    @property
    def marginal_image_ms(self):
        """Per-image marginal cost at the session's operating point.
        Delegates to the session's cached estimate so
        ``invalidate_estimate`` (after ``set_keep_ratios``) reaches
        routing and flush decisions too."""
        return self.session.marginal_image_ms

    def batch_cost(self, num_images):
        """Price an ``num_images`` flush on this target: the session's
        :class:`repro.cost.BatchCost` (per-batch overhead included).
        Routing feasibility and every flush trigger share this single
        estimate."""
        return self.session.estimated_batch_cost(num_images)

    def batch_cost_ms(self, num_images):
        """Scalar shorthand for ``batch_cost(num_images).total_ms``."""
        return self.batch_cost(num_images).total_ms

    @property
    def image_shape(self):
        config = self.session.model.config
        return (config.in_channels, config.image_size, config.image_size)


@dataclass
class FlushEvent:
    """Telemetry for one executed batch (asserted by the simulation
    harness: flush timing, trigger reason, and remainder carry-over)."""

    time_ms: float
    session: str
    reason: str
    request_ids: list
    num_images: int
    estimated_ms: float
    carried_requests: int


class Scheduler:
    """Deadline-aware batching scheduler over registered sessions.

    Parameters
    ----------
    clock: time source in milliseconds; default real monotonic time.
    router: policy choosing a session for requests without an explicit
        ``model``; default :class:`LeastLatencyRouter` (minimum
        table-estimated latency subject to the deadline).
    batch_window_ms: maximum time any request waits before its session
        flushes regardless of batch fill.
    latency_budget_ms: optional cap on a batch's estimated execution
        latency; reaching it triggers a flush and bounds the batch size.
    deadline_margin_ms: safety margin subtracted from deadlines when
        deciding whether a flush must fire now.
    max_events: cap on the :class:`FlushEvent` telemetry log (oldest
        entries drop first); ``None`` keeps everything (simulations).
    """

    def __init__(self, clock=None, router=None, batch_window_ms=10.0,
                 latency_budget_ms=None, deadline_margin_ms=0.0,
                 max_events=10_000):
        if batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0")
        if latency_budget_ms is not None and latency_budget_ms <= 0:
            raise ValueError("latency_budget_ms must be > 0")
        self.clock = clock if clock is not None else SystemClock()
        if not isinstance(self.clock, Clock):
            raise TypeError("clock must be a repro.serving.Clock")
        self.router = router if router is not None else LeastLatencyRouter()
        self.batch_window_ms = float(batch_window_ms)
        self.latency_budget_ms = latency_budget_ms
        self.deadline_margin_ms = float(deadline_margin_ms)
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be >= 1 or None")
        self.max_events = max_events
        self.events = []
        self._served = {}
        self._results = {}
        self._results_cond = threading.Condition()
        # _registry_lock guards the _served dict and is only ever held
        # briefly, so submit/routing stays non-blocking while a batch
        # executes; _step_lock serializes flush execution (and is never
        # taken while holding _registry_lock, only the reverse).
        self._registry_lock = threading.Lock()
        self._step_lock = threading.Lock()
        self._next_id = 0
        self._thread = None
        self._stop_event = None
        self._background_error = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name, model=None, *, session=None, batch_size=32,
                 policy=None, cost_model=None, latency_table=None,
                 max_batch=None, backend="tensor", dtype=None):
        """Register a serving target under ``name``.

        Pass either a ready :class:`InferenceSession` or a HeatViT
        ``model`` (a session is built around it; with no explicit
        ``cost_model`` / ``latency_table`` the session calibrates a
        batch-aware cost model from the FPGA simulator for the model's
        own config).  ``max_batch`` caps images per flush; default is
        the session's ``batch_size``.  ``backend`` / ``dtype`` select
        the session's compute backend (``"fastpath"`` runs the compiled
        fused-kernel path; see :mod:`repro.engine.fastpath`).
        """
        if (model is None) == (session is None):
            raise ValueError("pass exactly one of model= or session=")
        if session is None:
            session = InferenceSession(model, batch_size=batch_size,
                                       policy=policy,
                                       cost_model=cost_model,
                                       latency_table=latency_table,
                                       backend=backend, dtype=dtype)
        max_batch = session.batch_size if max_batch is None else int(max_batch)
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        served = ServedModel(name=name, session=session,
                             max_batch=max_batch)
        with self._registry_lock:
            if name in self._served:
                raise ValueError(f"session {name!r} already registered")
            self._served[name] = served
        return served

    @property
    def sessions(self):
        """Registered :class:`ServedModel` entries, in registration order."""
        with self._registry_lock:
            return list(self._served.values())

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def submit(self, images, deadline_ms=None, model=None):
        """Accept a request; returns its ``request_id`` without blocking.

        ``images``: one image ``(C, H, W)`` or a stack ``(n, C, H, W)``.
        ``deadline_ms``: optional deadline *relative to now* (> 0).
        ``model``: explicit session name; ``None`` lets the router pick
        among the sessions serving this image shape.
        """
        sessions = self.sessions
        if not sessions:
            raise RuntimeError("no sessions registered")
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[None]
        if images.ndim != 4 or images.shape[0] < 1:
            raise ValueError(
                "images must be (C, H, W) or (n >= 1, C, H, W); "
                f"got shape {images.shape}")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError("deadline_ms is relative and must be > 0")
        if model is not None and model not in self._served:
            raise KeyError(f"unknown session {model!r}; registered: "
                           f"{sorted(self._served)}")
        now = self.clock.now()
        with self._results_cond:
            request_id = self._next_id
            self._next_id += 1
        request = Request(
            request_id=request_id, images=images, arrival_ms=now,
            deadline_ms=(None if deadline_ms is None
                         else now + float(deadline_ms)),
            model=model)
        if model is not None:
            served = self._served[model]
            if images.shape[1:] != served.image_shape:
                raise ValueError(
                    f"session {served.name!r} serves images of shape "
                    f"{served.image_shape}; got {images.shape[1:]}")
        else:
            candidates = [s for s in sessions
                          if images.shape[1:] == s.image_shape]
            if not candidates:
                raise ValueError(
                    f"no session serves images of shape {images.shape[1:]}; "
                    f"registered shapes: "
                    f"{sorted({s.image_shape for s in sessions})}")
            served = self.router.route(request, candidates, now)
        served.queue.push(request)
        return request_id

    def pending_requests(self):
        return sum(len(s.queue) for s in self.sessions)

    # ------------------------------------------------------------------
    # Batch formation and execution
    # ------------------------------------------------------------------
    def step(self):
        """Fire every due flush at the current clock time.

        Returns the :class:`RequestResult`\\ s completed by this call
        (also retained for :meth:`wait_result` / :meth:`pop_result`).
        Drive this from a loop -- the simulation harness advances a
        virtual clock between calls; :meth:`start` runs it on a thread.
        """
        completed = []
        with self._step_lock:
            for served in self.sessions:
                while True:
                    # Re-read per flush: with a real clock, earlier
                    # batches in this step consumed host time, and both
                    # the flush decision and completed_ms must see it.
                    now = self.clock.now()
                    reason = self._flush_reason(served, now)
                    if reason is None:
                        break
                    completed.extend(self._execute(served, now, reason))
        return completed

    def flush(self, model=None):
        """Force-run everything pending (for ``model``, or everywhere)."""
        completed = []
        with self._step_lock:
            targets = ([self._served[model]] if model is not None
                       else self.sessions)
            for served in targets:
                while len(served.queue):
                    completed.extend(self._execute(served, self.clock.now(),
                                                   "forced"))
        return completed

    def _flush_reason(self, served, now):
        queue = served.queue
        pending_images = queue.pending_images
        if not pending_images:
            return None
        if pending_images >= served.max_batch:
            return "capacity"
        batch_cost = served.batch_cost_ms(min(pending_images,
                                              served.max_batch))
        if (self.latency_budget_ms is not None
                and batch_cost >= self.latency_budget_ms):
            return "budget"
        earliest = queue.earliest_deadline_ms
        if (earliest is not None
                and now + batch_cost + self.deadline_margin_ms >= earliest):
            return "deadline"
        oldest = queue.oldest_arrival_ms
        if oldest is not None and now - oldest >= self.batch_window_ms:
            return "window"
        return None

    def _execute(self, served, now, reason):
        requests = served.queue.pop_batch(
            max_images=served.max_batch,
            latency_budget_ms=self.latency_budget_ms,
            batch_cost_ms=served.batch_cost_ms)
        try:
            result, slices = served.session.submit_many(
                [r.images for r in requests])
        except Exception:
            # Never lose co-batched requests to one failing execution.
            for request in requests:
                served.queue.push(request)
            raise
        num_images = sum(r.num_images for r in requests)
        self.events.append(FlushEvent(
            time_ms=now, session=served.name, reason=reason,
            request_ids=[r.request_id for r in requests],
            num_images=num_images,
            estimated_ms=served.batch_cost_ms(num_images),
            carried_requests=len(served.queue)))
        if (self.max_events is not None
                and len(self.events) > self.max_events):
            del self.events[:len(self.events) - self.max_events]
        completed = []
        for request, rows in zip(requests, slices):
            completed.append(RequestResult(
                request_id=request.request_id,
                logits=result.logits[rows],
                latency_ms=result.latency_ms[rows],
                session=served.name,
                arrival_ms=request.arrival_ms,
                completed_ms=now,
                deadline_ms=request.deadline_ms,
                tokens_per_stage=[stage[rows] for stage in
                                  result.tokens_per_stage]))
        with self._results_cond:
            for item in completed:
                self._results[item.request_id] = item
            self._results_cond.notify_all()
        return completed

    # ------------------------------------------------------------------
    # Result retrieval
    # ------------------------------------------------------------------
    def pop_result(self, request_id):
        """Return and forget a completed result, or ``None`` if pending."""
        with self._results_cond:
            return self._results.pop(request_id, None)

    def wait_result(self, request_id, timeout_ms=None):
        """Block until ``request_id`` completes (background-thread mode).

        Raises ``TimeoutError`` after ``timeout_ms`` (``None`` waits
        forever), or ``RuntimeError`` if the background stepping thread
        died -- waiters are woken instead of hanging on a flush that can
        never fire.  With a step-driven scheduler, something must call
        :meth:`step` or :meth:`flush` concurrently, or this would wait
        for a flush that never fires.
        """
        timeout = None if timeout_ms is None else timeout_ms / 1e3
        with self._results_cond:
            done = self._results_cond.wait_for(
                lambda: (request_id in self._results
                         or self._background_error is not None),
                timeout=timeout)
            if request_id in self._results:
                return self._results.pop(request_id)
            if self._background_error is not None:
                raise RuntimeError(
                    "scheduler background thread died"
                ) from self._background_error
            raise TimeoutError(
                f"request {request_id} not completed in {timeout_ms} ms")

    # ------------------------------------------------------------------
    # Background driver (real-clock serving)
    # ------------------------------------------------------------------
    def start(self, poll_ms=1.0):
        """Run :meth:`step` on a daemon thread every ``poll_ms``."""
        if self._thread is not None:
            raise RuntimeError("scheduler already started")
        self._stop_event = threading.Event()
        self._background_error = None

        def loop():
            while not self._stop_event.is_set():
                try:
                    self.step()
                except Exception as exc:       # surface, don't hang waiters
                    with self._results_cond:
                        self._background_error = exc
                        self._results_cond.notify_all()
                    return
                self._stop_event.wait(poll_ms / 1e3)

        self._thread = threading.Thread(target=loop, daemon=True,
                                        name="repro-serving-scheduler")
        self._thread.start()

    def stop(self, drain=True):
        """Stop the background thread; by default run remaining requests."""
        if self._thread is None:
            return []
        self._stop_event.set()
        self._thread.join()
        self._thread = None
        self._stop_event = None
        return self.flush() if drain else []
