"""Serving layer: async deadline-aware scheduling over the engine.

Builds the request-level serving story on top of
:mod:`repro.engine`'s bucketed batch execution:

* :class:`Scheduler` -- non-blocking ``submit``, deadline-aware batch
  formation priced by each session's batch-aware
  :class:`repro.cost.CostModel` (Eq. 18 marginals + calibrated
  per-batch overhead), remainder carry-over between bursts, multi-model
  routing;
* :class:`RequestQueue` -- EDF-ordered pending requests with
  capacity/budget-capped batch popping;
* routers -- :class:`LeastLatencyRouter` (fastest session that meets
  the deadline) and :class:`HighestFidelityRouter` (most accurate
  session that meets the deadline, numerics grade included: cost ties
  between float and quantized replicas break toward the higher
  :func:`backend_fidelity`);
* clocks -- all serving time is in milliseconds;
  :class:`VirtualClock` makes scheduler behavior exactly simulable
  (``tests/serving/harness.py``);
* multi-worker fan-out -- :class:`WorkerPool` executor processes
  (spawn-safe via :class:`repro.engine.SessionSpec`) with
  :class:`PlacementPolicy` cost-model placement and online calibration
  (``Scheduler.register(..., workers=N)``).
"""

from repro.serving.clock import Clock, SystemClock, VirtualClock
from repro.serving.placement import Placement, PlacementPolicy
from repro.serving.queue import RequestQueue
from repro.serving.request import Request, RequestResult
from repro.serving.router import (BACKEND_FIDELITY, HighestFidelityRouter,
                                  LeastLatencyRouter, Router,
                                  backend_fidelity, request_cost_ms)
from repro.serving.scheduler import FlushEvent, Scheduler, ServedModel
from repro.serving.worker import WorkerPool, WorkerReply, worker_payload

__all__ = [
    "Clock", "SystemClock", "VirtualClock",
    "Request", "RequestResult", "RequestQueue",
    "Router", "LeastLatencyRouter", "HighestFidelityRouter",
    "request_cost_ms", "backend_fidelity", "BACKEND_FIDELITY",
    "Scheduler", "ServedModel", "FlushEvent",
    "Placement", "PlacementPolicy",
    "WorkerPool", "WorkerReply", "worker_payload",
]
