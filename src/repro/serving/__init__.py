"""Serving layer: async deadline-aware scheduling over the engine.

Builds the request-level serving story on top of
:mod:`repro.engine`'s bucketed batch execution:

* :class:`Scheduler` -- non-blocking ``submit``, deadline-aware batch
  formation priced by each session's batch-aware
  :class:`repro.cost.CostModel` (Eq. 18 marginals + calibrated
  per-batch overhead), remainder carry-over between bursts, multi-model
  routing;
* :class:`RequestQueue` -- EDF-ordered pending requests with
  capacity/budget-capped batch popping;
* routers -- :class:`LeastLatencyRouter` (fastest session that meets
  the deadline) and :class:`HighestFidelityRouter` (most accurate
  session that meets the deadline, numerics grade included: cost ties
  between float and quantized replicas break toward the higher
  :func:`backend_fidelity`);
* clocks -- all serving time is in milliseconds;
  :class:`VirtualClock` makes scheduler behavior exactly simulable
  (``tests/serving/harness.py``);
* multi-worker fan-out -- :class:`WorkerPool` executor processes
  (spawn-safe via :class:`repro.engine.SessionSpec`) with
  :class:`PlacementPolicy` cost-model placement and online calibration
  (``Scheduler.register(..., workers=N)``);
* self-healing -- supervision with bounded backoff respawns
  (:class:`RecoveryPolicy`), heartbeat liveness, hung-worker dispatch
  deadlines, stranded-batch re-dispatch with per-request retry budgets
  and poison quarantine, graceful in-process degradation, and the
  deterministic chaos harness (:class:`FaultPlan` /
  :class:`FaultSpec`) plus the shared :class:`RetryPolicy` backoff
  contract;
* SLO tiers and overload behavior -- priority classes mapped to
  deadline tiers (``Scheduler(priority_tiers=...)``), priced-backlog
  admission control that degrades to cheaper sessions or sheds
  (:class:`AdmissionError`), and flush preemption for premium
  arrivals;
* the network face -- :class:`FrontDoor` (asyncio HTTP/JSON server:
  submit / poll / await / health / stats) with
  :class:`FrontDoorClient`, and :mod:`repro.serving.trace` replayable
  JSONL workload traces plus the load-generator :func:`replay`.
"""

from repro.serving.clock import Clock, SystemClock, VirtualClock
from repro.serving.faults import FaultPlan, FaultSpec
from repro.serving.http import FrontDoor, FrontDoorClient
from repro.serving.placement import Placement, PlacementPolicy
from repro.serving.queue import RequestQueue
from repro.serving.request import DEFAULT_PRIORITY, Request, RequestResult
from repro.serving.router import (BACKEND_FIDELITY, HighestFidelityRouter,
                                  LeastLatencyRouter, Router,
                                  backend_fidelity, request_cost_ms)
from repro.serving.scheduler import (AdmissionError, FlushEvent, Scheduler,
                                     ServedModel)
from repro.serving.retry import RetryPolicy
from repro.serving.trace import (TraceRequest, adversarial_trace,
                                 bursty_trace, load_jsonl, replay,
                                 save_jsonl, synth_images, two_tier_trace,
                                 uniform_trace)
from repro.serving.worker import (RecoveryPolicy, WorkerDiedError,
                                  WorkerPool, WorkerReply, worker_payload)

__all__ = [
    "Clock", "SystemClock", "VirtualClock",
    "Request", "RequestResult", "RequestQueue", "DEFAULT_PRIORITY",
    "Router", "LeastLatencyRouter", "HighestFidelityRouter",
    "request_cost_ms", "backend_fidelity", "BACKEND_FIDELITY",
    "Scheduler", "ServedModel", "FlushEvent", "AdmissionError",
    "Placement", "PlacementPolicy",
    "WorkerPool", "WorkerReply", "worker_payload",
    "WorkerDiedError", "RecoveryPolicy", "RetryPolicy",
    "FaultPlan", "FaultSpec",
    "FrontDoor", "FrontDoorClient",
    "TraceRequest", "synth_images", "save_jsonl", "load_jsonl",
    "uniform_trace", "bursty_trace", "adversarial_trace",
    "two_tier_trace", "replay",
]
