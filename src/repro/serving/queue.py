"""Priority/deadline-ordered pending-request queue.

One :class:`RequestQueue` holds the requests routed to (but not yet
executed by) one serving session.  Requests pop in priority order
first (lower class = more urgent), then earliest-deadline-first within
a class (best-effort requests sort last, then by arrival, so a
deadline-free single-class workload degenerates to plain FIFO).
``pop_batch`` takes a *prefix* of that order subject to an image-count
cap and an estimated latency budget -- whatever does not fit stays
queued as the carried remainder for the next flush (continuous
re-bucketing across bursts).

The queue is kept **sorted on push** (``bisect.insort`` against
:func:`_order_key`; requests are immutable once queued, so the key
never changes underneath the ordering) and a batch leaves as an index
prefix -- ``pop_batch`` is O(k + log n) per flush, not the O(n^2)
re-sort-plus-``list.remove`` it used to be.  That matters exactly when
admission control does: a priced backlog large enough to shed is a
backlog large enough to make quadratic popping the bottleneck.

All mutators take an internal lock, so producers on other threads can
``push`` while a scheduler thread drains.
"""

from __future__ import annotations

import threading
from bisect import insort

__all__ = ["RequestQueue"]


def _order_key(request):
    """Pop order: priority class, then EDF, then arrival/id FIFO ties.

    ``priority`` leads the key, so a class-0 request outranks every
    later class regardless of deadlines -- priority classes are strict
    tiers, deadlines order *within* a tier.
    """
    deadline = (request.deadline_ms if request.deadline_ms is not None
                else float("inf"))
    return (request.priority, deadline, request.arrival_ms,
            request.request_id)


class RequestQueue:
    def __init__(self):
        self._lock = threading.Lock()
        self._requests = []          # invariant: sorted by _order_key
        self._pending_images = 0

    def __len__(self):
        with self._lock:
            return len(self._requests)

    @property
    def pending_images(self):
        with self._lock:
            return self._pending_images

    def push(self, request):
        if request.num_images < 1:
            raise ValueError("a request must carry at least one image")
        with self._lock:
            insort(self._requests, request, key=_order_key)
            self._pending_images += request.num_images

    def snapshot(self):
        """The queued requests in pop order, without removing."""
        with self._lock:
            return list(self._requests)

    @property
    def oldest_arrival_ms(self):
        with self._lock:
            if not self._requests:
                return None
            return min(r.arrival_ms for r in self._requests)

    @property
    def earliest_deadline_ms(self):
        with self._lock:
            deadlines = [r.deadline_ms for r in self._requests
                         if r.deadline_ms is not None]
            return min(deadlines) if deadlines else None

    def pop_batch(self, max_images=None, latency_budget_ms=None,
                  batch_cost_ms=None):
        """Remove and return the next batch of whole requests.

        Requests leave in priority-then-EDF order; the batch is the
        longest prefix whose total image count stays within
        ``max_images`` and whose estimated execution cost stays within
        ``latency_budget_ms``.  ``batch_cost_ms`` prices a candidate
        prefix by its *total* image count (the session's batch-aware
        ``estimated_batch_cost(n).total_ms``, so the per-batch overhead
        is paid once by the whole prefix, not per request); with a
        zero-overhead cost model this reduces exactly to the legacy
        per-image accumulation.  The first request is always taken -- a
        single request bigger than either cap must still run (the
        session chunks internally) -- so the queue always drains.
        Requests are atomic: one request's images never split across
        flushes, which keeps its logits rows contiguous in one batch.
        """
        if latency_budget_ms is not None and batch_cost_ms is None:
            raise ValueError(
                "latency_budget_ms requires a batch_cost_ms pricer")
        with self._lock:
            images = 0
            count = 0
            for request in self._requests:
                if count:
                    if (max_images is not None
                            and images + request.num_images > max_images):
                        break
                    if (latency_budget_ms is not None
                            and batch_cost_ms(images + request.num_images)
                            > latency_budget_ms):
                        break
                count += 1
                images += request.num_images
            taken = self._requests[:count]
            del self._requests[:count]
            self._pending_images -= images
            return taken
