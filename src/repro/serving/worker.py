"""Multi-process execution backend: a self-healing pool of executor
workers.

A :class:`WorkerPool` spawns N OS processes, each owning a full
:class:`repro.engine.InferenceSession` rebuilt in the child from a
:class:`repro.engine.SessionSpec` (config + weights -- the spawn-safe
road) or, for models a spec cannot describe, from the pickled session
itself.  The parent dispatches flushed request batches to a chosen
worker (see :class:`repro.serving.PlacementPolicy`) and collects
replies from **per-worker reply pipes**; each reply carries the
worker's host-measured execution time, which feeds the placement
policy's online calibration.

Reply transport is deliberately *not* a shared ``multiprocessing``
queue.  A shared queue serializes writers through one cross-process
write lock, and a worker that dies abruptly (``kill -9``, OOM, a
scripted chaos kill) while its feeder thread holds that lock strands
it forever -- every other worker, including freshly respawned ones,
then wedges on its next reply and the whole fleet stalls behind one
corpse.  Instead each worker owns a private pipe and writes
length-prefixed pickled :class:`WorkerReply` frames; the parent reads
every pipe non-blockingly and reassembles frames per worker.  A dying
writer can at worst leave a *torn trailing frame in its own pipe*,
which the parent discards when it retires the dead incarnation's
reader -- no lock, no shared state, no cross-worker blast radius.

Because every image's compute is independent of its batch neighbours
(the engine's grouped-execution invariant), a batch executed by any
worker returns logits bitwise identical to in-process execution --
multi-worker serving changes *where* batches run, never *what* they
compute.  That invariant is also what makes **recovery** exact: a
batch lost to a dead worker re-executes anywhere with bitwise-identical
results.

Self-healing (the fleet side; batch re-dispatch lives in the
scheduler):

* **Supervision** -- dead workers are respawned from the original
  payload, bounded per slot (``max_restarts``) and spaced by the
  shared :class:`repro.serving.RetryPolicy` exponential backoff.  A
  respawn re-snapshots the session's learned
  :class:`repro.cost.OnlineCostModel` (when cost learning is on), so
  the replacement prices batches from everything the fleet measured
  before the crash instead of re-learning from scratch.
* **Heartbeats** -- idle workers beat on their reply pipe every
  ``heartbeat_s``; the pool tracks ``last_seen`` per worker.  A worker
  that is *executing* cannot beat, so heartbeats are the idle-liveness
  signal -- the scheduler's per-batch dispatch deadline (derived from
  the cost model) is what catches a worker hung mid-batch.
* **Liveness-checked dispatch** -- dispatching to a dead worker raises
  :class:`WorkerDiedError` instead of burying the task in a queue no
  process will ever read (respawns get a *fresh* task queue; anything
  in the old one is gone by design -- the scheduler re-dispatches from
  its own in-flight table).

Deterministic failure for tests comes from
:mod:`repro.serving.faults`: a :class:`~repro.serving.faults.FaultPlan`
passed at construction scripts kills, hangs, delays, and corrupt or
duplicate replies per worker incarnation.

The pool stays deliberately dumb about *work*: no queues of its own
beyond transport, no policy.  Batch formation stays in the scheduler,
placement in the policy, pricing in the cost model -- the pool owns
only its processes.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
import select
import struct
import threading
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from repro.serving.retry import RetryPolicy

__all__ = ["WorkerPool", "WorkerReply", "WorkerDiedError",
           "RecoveryPolicy", "worker_payload"]

_SENTINEL = None
_READY = "ready"
_HEARTBEAT = "heartbeat"

#: BLAS/threading knobs capped to 1 in spawned workers: N workers x M
#: BLAS threads oversubscribes the host and ruins scaling.
_THREAD_VARS = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                "MKL_NUM_THREADS", "NUMEXPR_NUM_THREADS")


#: Reply wire format: a 4-byte big-endian length prefix, then that many
#: bytes of pickled :class:`WorkerReply`.  Each pipe has exactly one
#: writer (its worker's main loop), so frames never interleave; a
#: writer that dies mid-write leaves at most one torn trailing frame,
#: confined to its own pipe.
_FRAME = struct.Struct(">I")


def _write_frame(fd, payload, limit=None):
    """Blocking write of one framed reply onto ``fd``.

    ``limit`` is the fault-injection hook: write only the first
    ``limit`` bytes of the frame (a torn frame, as an abrupt
    mid-write death would leave) and return.
    """
    data = _FRAME.pack(len(payload)) + payload
    if limit is not None:
        data = data[:limit]
    view = memoryview(data)
    while view:
        view = view[os.write(fd, view):]


def _send_reply(conn, reply):
    _write_frame(conn.fileno(),
                 pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL))


class _ReplyReader:
    """Parent half of one worker's reply pipe.

    The descriptor is non-blocking: :meth:`drain` reads whatever the
    OS has buffered, reassembles complete frames, and never waits --
    a worker that died mid-write can therefore stall nothing.  Its
    torn trailing frame simply never completes and is dropped with
    the reader.  ``eof`` flips once every write end is closed (the
    worker exited and, under fork, so did any siblings that inherited
    the descriptor); an ``eof`` reader with no complete frame left is
    exhausted and can be closed.
    """

    def __init__(self, conn):
        self._conn = conn
        os.set_blocking(conn.fileno(), False)
        self._buffer = bytearray()
        self.eof = False

    def fileno(self):
        """File descriptor, so ``select`` can wait on readers."""
        return self._conn.fileno()

    def drain(self):
        """Non-blocking: consume available bytes, return the complete
        :class:`WorkerReply` frames they finish."""
        while not self.eof:
            try:
                chunk = os.read(self._conn.fileno(), 1 << 16)
            except BlockingIOError:
                break
            except (OSError, ValueError):     # pipe closed under us
                self.eof = True
                break
            if not chunk:
                self.eof = True
                break
            self._buffer.extend(chunk)
        replies = []
        while len(self._buffer) >= _FRAME.size:
            size = _FRAME.unpack_from(self._buffer)[0]
            if len(self._buffer) - _FRAME.size < size:
                break                          # incomplete (or torn) frame
            frame = bytes(self._buffer[_FRAME.size:_FRAME.size + size])
            del self._buffer[:_FRAME.size + size]
            try:
                replies.append(pickle.loads(frame))
            except Exception:                  # pragma: no cover
                # A length-complete frame that does not unpickle means
                # the writer is garbage; stop trusting the stream.
                self.eof = True
                self._buffer.clear()
                break
        return replies

    def close(self):
        try:
            self._conn.close()
        except OSError:                        # pragma: no cover
            pass


class WorkerDiedError(RuntimeError):
    """Dispatch targeted a worker whose process has exited.

    Raised under the pool's state lock *before* the task is enqueued,
    so the batch is never stranded in a dead worker's queue -- the
    caller redirects it (the scheduler requeues and triggers
    recovery).
    """

    def __init__(self, worker, message=None):
        super().__init__(message or f"worker {worker} is dead")
        self.worker = worker


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a serving target survives worker failures.

    One policy covers both halves of self-healing: the pool side
    (supervision cadence) and the scheduler side (re-dispatch budgets
    and deadlines).  All defaults are production-shaped; chaos tests
    tighten them.

    Parameters
    ----------
    heartbeat_s: idle workers send a heartbeat reply this often
        (liveness telemetry; see :class:`WorkerPool`).
    max_worker_restarts: respawns allowed per worker slot before the
        slot is abandoned.  When every slot is dead and exhausted the
        pool reports :attr:`WorkerPool.fleet_down` and the scheduler
        degrades to in-process execution.
    restart_backoff: :class:`repro.serving.RetryPolicy` spacing
        consecutive respawns of one slot (crash loops must not spin).
    retry: :class:`repro.serving.RetryPolicy` whose ``retries`` is the
        per-request re-dispatch budget after worker losses -- a request
        whose batches have killed ``retries + 1`` workers is poisoned:
        failed cleanly to its caller instead of retried forever.
    dispatch_timeout_factor: a dispatched batch is declared *hung* when
        no reply arrives within ``factor x`` its placement-predicted
        completion time (cost-model-derived deadline; the hung worker
        is terminated and the batch re-dispatched).
    min_dispatch_timeout_s: floor under the dispatch deadline --
        prediction noise on tiny batches must not declare healthy
        workers hung.
    max_in_flight_per_worker: bound on batches queued on one worker;
        flushes defer (backpressure) rather than burying a slow worker,
        which also caps how much work any single crash can strand.
    shed_expired_on_recovery: requests recovered from a lost worker
        whose deadline has already passed are shed (failed to their
        callers, counted in the class's ``shed`` stats) instead of
        silently re-executed late.  Premium class-0 requests are never
        shed; they re-dispatch regardless.
    """

    heartbeat_s: float = 2.0
    max_worker_restarts: int = 3
    restart_backoff: RetryPolicy = RetryPolicy(
        attempts=4, backoff_base_s=0.05, backoff_max_s=2.0)
    retry: RetryPolicy = RetryPolicy(attempts=3)
    dispatch_timeout_factor: float = 20.0
    min_dispatch_timeout_s: float = 30.0
    max_in_flight_per_worker: int = 8
    shed_expired_on_recovery: bool = True

    def __post_init__(self):
        if self.heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be > 0")
        if self.max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be >= 0")
        if self.dispatch_timeout_factor <= 0:
            raise ValueError("dispatch_timeout_factor must be > 0")
        if self.min_dispatch_timeout_s <= 0:
            raise ValueError("min_dispatch_timeout_s must be > 0")
        if self.max_in_flight_per_worker < 1:
            raise ValueError("max_in_flight_per_worker must be >= 1")

    @property
    def max_request_retries(self):
        """Re-dispatches one request may consume after worker losses."""
        return self.retry.retries


class _single_thread_blas_env:
    """Temporarily default the BLAS thread vars to 1 in *this* process
    so child processes started inside the block inherit the cap.

    BLAS libraries read these variables when they load, which in a
    spawn child happens during early module imports -- long before any
    code of ours runs there -- so the cap must already be in the
    environment the child inherits.  Only previously-unset variables
    are touched, and they are restored on exit: an operator's explicit
    thread configuration always wins, and nothing leaks into the
    parent's environment after startup.
    """

    def __enter__(self):
        self._added = []
        for var in _THREAD_VARS:
            if var not in os.environ:
                os.environ[var] = "1"
                self._added.append(var)
        return self

    def __exit__(self, exc_type, exc, tb):
        for var in self._added:
            if os.environ.get(var) == "1":
                del os.environ[var]


@dataclass
class WorkerReply:
    """One message from an executor worker.

    ``kind`` is ``"ready"`` (startup handshake), ``"heartbeat"``
    (idle liveness beat -- consumed by the pool, never surfaced to the
    scheduler), ``"result"`` (a completed batch) or ``"error"``.
    Results carry the merged batch arrays in submission order -- the
    parent re-slices them per request -- plus the shard's shape and
    timing: ``num_images`` and ``wall_time_s``, the worker's measured
    host execution time.  The pair is the online-learning signal -- it
    feeds both the placement policy's per-worker estimator and the
    parent session's :class:`repro.cost.OnlineCostModel` (when cost
    learning is on).
    """

    kind: str
    worker: int
    task_id: int = None
    logits: np.ndarray = None
    tokens_per_stage: list = field(default_factory=list)
    latency_ms: np.ndarray = None
    wall_time_s: float = 0.0
    num_images: int = 0
    error: str = None
    tb: str = None


def worker_payload(session):
    """What to ship to a worker process for ``session``.

    Prefers the spawn-safe :class:`repro.engine.SessionSpec` (config +
    weights, rebuilt in the child); sessions a spec cannot describe
    (custom selector classifiers) fall back to pickling the live
    session object.
    """
    from repro.engine.spec import SpecError

    try:
        return session.spec()
    except SpecError:
        return session


def _snapshot_payload(payload):
    """A (re)spawn-safe copy of ``payload`` carrying the *current*
    learned cost state.

    Pickling a live :class:`repro.cost.OnlineCostModel` while the
    scheduler thread is folding measurements into it is a data race
    (dict mutation mid-pickle); spec payloads instead ship a clone
    rebuilt from ``snapshot()`` taken synchronously here.  This is
    also the supervision re-seed: a worker respawned after minutes of
    serving inherits every coefficient the fleet learned, so placement
    and flush pricing do not regress to the static prior.

    Non-spec payloads (pickled sessions) pass through unchanged --
    their cost model is pickled live, the pre-existing fallback
    behavior.
    """
    from repro.cost import OnlineCostModel

    cost = getattr(payload, "cost_model", None)
    if hasattr(payload, "with_cost_model") and isinstance(cost,
                                                          OnlineCostModel):
        clone = OnlineCostModel.from_snapshot(cost.prior, cost.snapshot())
        return payload.with_cost_model(clone)
    return payload


def _run_worker(worker_index, incarnation, payload, task_queue,
                reply_conn, heartbeat_s=None,
                fault=None):                         # pragma: no cover
    """Executor-worker main loop (module-level: spawn must import it).

    Rebuilds the session, signals readiness, then serves tasks until
    the ``None`` sentinel arrives, heartbeating on its reply pipe
    whenever ``heartbeat_s`` passes without work.  Every task failure
    is reported as an error reply -- the worker itself survives to
    serve the next batch.  ``fault`` is the resolved
    :class:`repro.serving.faults.FaultSpec` for this incarnation
    (test-only; ``None`` in production).

    Replies go over this worker's private pipe (see module docstring);
    a broken pipe means the parent is gone or closed the pool, so the
    worker simply exits.

    (no-cover: this body runs inside child processes, outside the
    parent's coverage tracer; ``tests/serving/test_workers.py`` and
    ``tests/serving/test_faults.py`` exercise every branch through
    real pools.)
    """
    def send(reply):
        try:
            _send_reply(reply_conn, reply)
            return True
        except (BrokenPipeError, OSError):
            return False

    try:
        session = (payload.build() if hasattr(payload, "build")
                   else payload)
    except Exception as exc:                             # pragma: no cover
        send(WorkerReply(
            kind="error", worker=worker_index,
            error=f"worker startup failed: {exc!r}",
            tb=traceback.format_exc()))
        return
    if not send(WorkerReply(kind=_READY, worker=worker_index)):
        return
    batch_count = 0
    while True:
        try:
            task = task_queue.get(timeout=heartbeat_s)
        except queue_module.Empty:
            if not send(WorkerReply(kind=_HEARTBEAT,
                                    worker=worker_index)):
                return
            continue
        if task is _SENTINEL:
            break
        task_id, image_groups = task
        batch_count += 1
        if fault is not None and fault.should_kill(batch_count):
            os._exit(13)
        if fault is not None and fault.should_hang(batch_count):
            while True:                 # wedged: alive, silent forever
                time.sleep(60.0)
        try:
            result, _ = session.submit_many(image_groups)
            logits = result.logits
            if fault is not None and fault.should_corrupt(batch_count):
                logits = logits[:-1]    # truncated payload on the wire
            reply = WorkerReply(
                kind="result", worker=worker_index, task_id=task_id,
                logits=logits,
                tokens_per_stage=result.tokens_per_stage,
                latency_ms=result.latency_ms,
                wall_time_s=result.wall_time_s,
                num_images=int(logits.shape[0]))
            if fault is not None:
                fault.apply_delay()
            if fault is not None and fault.should_tear(batch_count):
                # Abrupt death mid-reply: half a frame, then gone.
                payload_bytes = pickle.dumps(
                    reply, protocol=pickle.HIGHEST_PROTOCOL)
                _write_frame(reply_conn.fileno(), payload_bytes,
                             limit=_FRAME.size + len(payload_bytes) // 2)
                os._exit(13)
            if not send(reply):
                return
            if fault is not None and fault.should_duplicate(batch_count):
                send(reply)
        except Exception as exc:
            if not send(WorkerReply(
                    kind="error", worker=worker_index, task_id=task_id,
                    error=repr(exc), tb=traceback.format_exc())):
                return


class WorkerPool:
    """N executor processes fed per-worker task queues, supervised.

    Parameters
    ----------
    session: the :class:`repro.engine.InferenceSession` to replicate
        (or a ready :class:`repro.engine.SessionSpec`).  Each worker
        owns an independent rebuild -- weights are copied per process.
    num_workers: pool size (>= 1).
    ctx: multiprocessing start method; ``"spawn"`` (default) is the
        portable, spawn-safe road the pool is tested under -- spawned
        workers load their BLAS capped at one thread (inherited env,
        see :class:`_single_thread_blas_env`).  ``"fork"`` trades that
        and safety for instant startup on POSIX: forked workers
        inherit the parent's already-initialized BLAS threading.
    startup_timeout_s: how long to wait for every worker's ready
        handshake before giving up.
    recovery: :class:`RecoveryPolicy` for supervision (heartbeat
        cadence, restart budget and backoff); default policy applies
        when ``None``.
    fault_plan: optional :class:`repro.serving.faults.FaultPlan`
        scripting deterministic failures per worker incarnation
        (test-only).
    """

    def __init__(self, session, num_workers, ctx="spawn",
                 startup_timeout_s=120.0, recovery=None, fault_plan=None):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self._payload = (session if hasattr(session, "build")
                         else worker_payload(session))
        self.recovery = recovery if recovery is not None else RecoveryPolicy()
        self._fault_plan = fault_plan
        self._ctx = multiprocessing.get_context(ctx)
        self.num_workers = int(num_workers)
        self._task_queues = [self._ctx.Queue()
                             for _ in range(self.num_workers)]
        # One reply pipe per worker (crash isolation -- see module
        # docstring), plus a graveyard of dead incarnations' readers
        # still holding completed replies, drained until EOF.
        self._reply_readers = [None] * self.num_workers
        self._retired_readers = []
        # Guards _closed (and the process/queue tables, which respawns
        # mutate) against dispatch/poll racing close() from another
        # thread (scheduler shutdown during background stepping):
        # without it a dispatcher can observe _closed == False, lose
        # the CPU, and put on a queue close() has already released --
        # an unhandled ValueError/OSError deep in multiprocessing
        # instead of the clean "pool is closed" error.  RLock so
        # close() can run under it end to end while its own helpers
        # re-enter.
        self._state_lock = threading.RLock()
        self._closed = False
        self._incarnations = [0] * self.num_workers
        self._restarts = [0] * self.num_workers
        self._next_restart_at = [0.0] * self.num_workers
        now = time.monotonic()
        self._last_seen = [now] * self.num_workers
        self._processes = []
        child_conns = []
        for index in range(self.num_workers):
            process, child_conn = self._make_process(index)
            self._processes.append(process)
            child_conns.append(child_conn)
        with _single_thread_blas_env():
            for process in self._processes:
                process.start()
        # Drop the parent's copies of the write ends: after this, each
        # pipe's only writer is its worker, and EOF on a reader means
        # that worker (and, under fork, any sibling that inherited the
        # descriptor) is gone.
        for conn in child_conns:
            conn.close()
        self._await_ready(startup_timeout_s)

    def _make_process(self, index):
        """Build (but do not start) a process for the slot's current
        incarnation, wiring a fresh reply pipe into
        ``_reply_readers[index]``.  Returns ``(process, child_conn)``;
        the caller starts the process and then closes ``child_conn``
        (the parent's copy of the write end)."""
        incarnation = self._incarnations[index]
        fault = (None if self._fault_plan is None
                 else self._fault_plan.for_worker(index, incarnation))
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        self._reply_readers[index] = _ReplyReader(recv_conn)
        process = self._ctx.Process(
            target=_run_worker,
            args=(index, incarnation, _snapshot_payload(self._payload),
                  self._task_queues[index], send_conn,
                  self.recovery.heartbeat_s, fault),
            name=(f"repro-serving-worker-{index}.{incarnation}"),
            daemon=True)
        return process, send_conn

    def _await_ready(self, timeout_s):
        deadline = time.monotonic() + timeout_s
        ready = set()
        while len(ready) < self.num_workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise RuntimeError(
                    f"worker pool startup timed out; ready: "
                    f"{sorted(ready)} of {self.num_workers}")
            replies = self._collect_raw(min(remaining, 0.2))
            if not replies:
                dead = [p.name for p in self._processes
                        if not p.is_alive() and p.exitcode not in (0, None)]
                if dead and self._fault_plan is None:
                    self.close()
                    raise RuntimeError(
                        f"worker(s) died during startup: {dead}")
                continue
            for reply in replies:
                if reply.kind == "error":
                    self.close()
                    raise RuntimeError(
                        f"worker {reply.worker} failed to start: "
                        f"{reply.error}\n{reply.tb}")
                self._last_seen[reply.worker] = time.monotonic()
                ready.add(reply.worker)

    # ------------------------------------------------------------------
    def dispatch(self, task_id, image_groups, worker):
        """Send one batch (a list of per-request image arrays) to
        ``worker``.  Non-blocking: the reply arrives via :meth:`poll`.

        Returns the worker's current *incarnation* -- the one whose
        queue the task landed on, read under the same lock as the
        enqueue.  Loss detection keys on it: a batch whose worker slot
        has since moved to a newer incarnation is stranded (the respawn
        swapped in a fresh queue), however alive the slot looks.

        Raises :class:`WorkerDiedError` when the target process has
        exited -- checked under the state lock, so the task is never
        enqueued onto a queue no process will read (respawns start
        from a fresh queue).  Callers redirect the batch instead.
        """
        if not 0 <= worker < self.num_workers:
            raise ValueError(f"worker index {worker} out of range "
                             f"0..{self.num_workers - 1}")
        with self._state_lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            if not self._processes[worker].is_alive():
                raise WorkerDiedError(
                    worker,
                    f"worker {worker} "
                    f"(incarnation {self._incarnations[worker]}) is "
                    f"dead; redirect the batch")
            self._task_queues[worker].put((task_id, list(image_groups)))
            return self._incarnations[worker]

    def poll(self, timeout_s=0.0):
        """Collect available result/error replies; waits at most
        ``timeout_s`` for the first one, then drains without blocking.

        Heartbeat and (re)spawn-ready replies are consumed here --
        they update the per-worker ``last_seen`` clock and are never
        returned to the caller.
        """
        return [reply for reply in self._collect_raw(timeout_s)
                if self._note(reply)]

    def _collect_raw(self, timeout_s):
        """Drain every reply pipe -- live and retired -- without
        blocking; when nothing is buffered, wait up to ``timeout_s``
        for readability and drain once more.  Raw: ready/heartbeat
        replies are included (``_await_ready`` needs them)."""
        with self._state_lock:
            if self._closed:
                return []
            replies = self._drain_readers()
        if replies or timeout_s <= 0:
            return replies
        # The wait happens *outside* the lock so a concurrent close()
        # is never stalled behind it; the post-wait drain re-checks
        # _closed.
        self._wait_readable(timeout_s)
        with self._state_lock:
            if self._closed:
                return []
            return self._drain_readers()

    def _drain_readers(self):
        """Drain all reply pipes (caller holds the state lock).
        Exhausted retired readers -- EOF with no complete frame left,
        any torn trailing frame discarded -- are closed and dropped."""
        replies = []
        for reader in self._reply_readers:
            if reader is not None:
                replies.extend(reader.drain())
        kept = []
        for reader in self._retired_readers:
            replies.extend(reader.drain())
            if reader.eof:
                reader.close()
            else:
                kept.append(reader)
        self._retired_readers = kept
        return replies

    def _wait_readable(self, timeout_s):
        """Block until some reply pipe has data, or ``timeout_s``."""
        with self._state_lock:
            if self._closed:
                return
            readers = [reader for reader in self._reply_readers
                       if reader is not None and not reader.eof]
            readers += [reader for reader in self._retired_readers
                        if not reader.eof]
        try:
            if readers:
                select.select(readers, [], [], timeout_s)
            else:
                time.sleep(timeout_s)
        except (OSError, ValueError):     # descriptor closed mid-wait
            pass

    def _note(self, reply):
        """Record liveness; returns whether the reply is for the caller."""
        if 0 <= reply.worker < self.num_workers:
            self._last_seen[reply.worker] = time.monotonic()
        return reply.kind not in (_READY, _HEARTBEAT)

    def alive_workers(self):
        """Indices of workers whose processes are still running."""
        return [index for index, process in enumerate(self._processes)
                if process.is_alive()]

    def liveness(self):
        """Atomic ``(alive_set, incarnations)`` snapshot.

        Loss detection needs the pair from one instant: checking
        aliveness alone races supervision -- a worker that dies and is
        respawned between two looks is alive both times, with the dead
        incarnation's batches stranded in between.  The incarnation
        numbers disambiguate: a batch dispatched to incarnation *k* of
        a slot now running incarnation *k+1* is lost, however alive
        the slot is.
        """
        with self._state_lock:
            return ({index for index, process in enumerate(self._processes)
                     if process.is_alive()},
                    tuple(self._incarnations))

    def last_seen(self, worker):
        """Host-monotonic time of the worker's last reply or heartbeat."""
        return self._last_seen[worker]

    @property
    def restarts(self):
        """Per-slot respawn counts (supervision telemetry)."""
        return tuple(self._restarts)

    @property
    def closed(self):
        return self._closed

    # ------------------------------------------------------------------
    # Supervision: respawn dead workers, terminate hung ones
    # ------------------------------------------------------------------
    def can_respawn(self, worker):
        """Whether the slot has restart budget left (now or after its
        backoff window)."""
        return (not self._closed
                and self._restarts[worker] < self.recovery.max_worker_restarts)

    @property
    def fleet_down(self):
        """No process alive and no slot can ever respawn: the pool is
        permanently lost and the serving target should degrade to
        in-process execution."""
        with self._state_lock:
            if self._closed:
                return True
            return (not any(p.is_alive() for p in self._processes)
                    and not any(self.can_respawn(w)
                                for w in range(self.num_workers)))

    def terminate_worker(self, worker, incarnation=None):
        """Forcibly kill one worker (the hung-worker remedy).  The
        slot becomes eligible for supervision like any other death.

        When ``incarnation`` is given the kill only lands if the slot
        still runs that incarnation -- a respawn that slipped in
        between blame assignment and the terminate call must not be
        executed for its predecessor's hung batch.
        """
        with self._state_lock:
            if self._closed:
                return
            if (incarnation is not None
                    and self._incarnations[worker] != incarnation):
                return
            process = self._processes[worker]
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)

    def respawn_dead(self):
        """Supervise: restart every dead worker whose slot has restart
        budget and whose backoff window has passed.

        Each respawn gets a **fresh task queue** (anything buffered for
        the dead incarnation is dropped -- the scheduler re-dispatches
        lost batches from its own in-flight table) and a payload
        re-snapshotted from the parent session, so a learned cost
        model's current fit rides along.  Non-blocking beyond process
        start: readiness arrives as a reply consumed by :meth:`poll`.
        Returns the respawned worker indices.
        """
        respawned = []
        with self._state_lock:
            if self._closed:
                return respawned
            now = time.monotonic()
            for index, process in enumerate(self._processes):
                if process.is_alive():
                    continue
                if not self.can_respawn(index):
                    continue
                if now < self._next_restart_at[index]:
                    continue
                process.join(timeout=1.0)
                old_queue = self._task_queues[index]
                self._task_queues[index] = self._ctx.Queue()
                try:
                    old_queue.close()
                    old_queue.cancel_join_thread()
                except (ValueError, OSError):         # pragma: no cover
                    pass
                # Retire (don't close) the dead incarnation's reply
                # pipe: results it completed before dying are still
                # buffered there and remain deliverable; poll() drains
                # the retired reader to EOF and then discards it --
                # along with any torn trailing frame the death left.
                old_reader = self._reply_readers[index]
                if old_reader is not None:
                    self._retired_readers.append(old_reader)
                attempt = self._restarts[index]
                self._restarts[index] += 1
                self._next_restart_at[index] = (
                    now + self.recovery.restart_backoff.delay_s(
                        attempt, seed=index))
                self._incarnations[index] += 1
                self._last_seen[index] = now
                replacement, child_conn = self._make_process(index)
                with _single_thread_blas_env():
                    replacement.start()
                child_conn.close()
                self._processes[index] = replacement
                respawned.append(index)
        return respawned

    def supervision_snapshot(self):
        """Telemetry: per-slot incarnation/restart/liveness state
        (what ``Scheduler.stats()`` reports per pooled target)."""
        with self._state_lock:
            now = time.monotonic()
            return {
                "alive": self.alive_workers(),
                "incarnations": tuple(self._incarnations),
                "restarts": tuple(self._restarts),
                "heartbeat_age_s": tuple(now - seen
                                         for seen in self._last_seen),
                "fleet_down": self.fleet_down,
            }

    # ------------------------------------------------------------------
    def close(self, timeout_s=30.0):
        """Deterministic shutdown: sentinel every worker, join every
        process (terminating stragglers), release the queues.
        Idempotent, and safe against concurrent :meth:`dispatch` /
        :meth:`poll` -- the closed flag flips and the queues are
        released under the state lock, so a racing dispatcher gets the
        clean "pool is closed" error instead of a multiprocessing
        internals failure."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            for task_queue, process in zip(self._task_queues,
                                           self._processes):
                if process.is_alive():
                    try:
                        task_queue.put(_SENTINEL)
                    except (ValueError, OSError):     # pragma: no cover
                        pass
        deadline = time.monotonic() + timeout_s
        # Keep the reply pipes drained while the workers wind down: a
        # worker with more buffered replies than its pipe holds blocks
        # mid-write and never reaches the sentinel, so an undrained
        # close would stall the full timeout and then terminate a
        # healthy worker.  Discarding is correct here -- close() is
        # end of life; callers that want the results drain before
        # closing (Scheduler.shutdown does).
        while (any(process.is_alive() for process in self._processes)
               and time.monotonic() < deadline):
            with self._state_lock:
                readers = [reader for reader in self._reply_readers
                           if reader is not None and not reader.eof]
                readers += [reader for reader in self._retired_readers
                            if not reader.eof]
            try:
                if readers:
                    select.select(readers, [], [], 0.05)
                else:
                    time.sleep(0.05)
            except (OSError, ValueError):         # pragma: no cover
                pass
            with self._state_lock:
                for reader in readers:
                    reader.drain()
        for process in self._processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():                # pragma: no cover
                process.terminate()
                process.join(timeout=5.0)
        with self._state_lock:
            for task_queue in self._task_queues:
                task_queue.close()
                task_queue.cancel_join_thread()
            for reader in self._reply_readers + self._retired_readers:
                if reader is not None:
                    reader.close()
            self._retired_readers = []

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()

    def __repr__(self):
        state = "closed" if self._closed else "open"
        return (f"WorkerPool(workers={self.num_workers}, {state}, "
                f"ctx={self._ctx.get_start_method()!r}, "
                f"restarts={sum(self._restarts)})")
