"""Multi-process execution backend: a pool of executor workers.

A :class:`WorkerPool` spawns N OS processes, each owning a full
:class:`repro.engine.InferenceSession` rebuilt in the child from a
:class:`repro.engine.SessionSpec` (config + weights -- the spawn-safe
road) or, for models a spec cannot describe, from the pickled session
itself.  The parent dispatches flushed request batches to a chosen
worker (see :class:`repro.serving.PlacementPolicy`) and collects
replies from one shared result queue; each reply carries the worker's
host-measured execution time, which feeds the placement policy's
online calibration.

Because every image's compute is independent of its batch neighbours
(the engine's grouped-execution invariant), a batch executed by any
worker returns logits bitwise identical to in-process execution --
multi-worker serving changes *where* batches run, never *what* they
compute.

The pool is deliberately dumb: no queues of its own beyond transport,
no policy.  Batch formation stays in the scheduler, placement in the
policy, pricing in the cost model.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import threading
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

__all__ = ["WorkerPool", "WorkerReply", "worker_payload"]

_SENTINEL = None
_READY = "ready"

#: BLAS/threading knobs capped to 1 in spawned workers: N workers x M
#: BLAS threads oversubscribes the host and ruins scaling.
_THREAD_VARS = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                "MKL_NUM_THREADS", "NUMEXPR_NUM_THREADS")


class _single_thread_blas_env:
    """Temporarily default the BLAS thread vars to 1 in *this* process
    so child processes started inside the block inherit the cap.

    BLAS libraries read these variables when they load, which in a
    spawn child happens during early module imports -- long before any
    code of ours runs there -- so the cap must already be in the
    environment the child inherits.  Only previously-unset variables
    are touched, and they are restored on exit: an operator's explicit
    thread configuration always wins, and nothing leaks into the
    parent's environment after startup.
    """

    def __enter__(self):
        self._added = []
        for var in _THREAD_VARS:
            if var not in os.environ:
                os.environ[var] = "1"
                self._added.append(var)
        return self

    def __exit__(self, exc_type, exc, tb):
        for var in self._added:
            if os.environ.get(var) == "1":
                del os.environ[var]


@dataclass
class WorkerReply:
    """One message from an executor worker.

    ``kind`` is ``"ready"`` (startup handshake), ``"result"`` (a
    completed batch) or ``"error"``.  Results carry the merged batch
    arrays in submission order -- the parent re-slices them per request
    -- plus the shard's shape and timing: ``num_images`` and
    ``wall_time_s``, the worker's measured host execution time.  The
    pair is the online-learning signal -- it feeds both the placement
    policy's per-worker estimator and the parent session's
    :class:`repro.cost.OnlineCostModel` (when cost learning is on).
    """

    kind: str
    worker: int
    task_id: int = None
    logits: np.ndarray = None
    tokens_per_stage: list = field(default_factory=list)
    latency_ms: np.ndarray = None
    wall_time_s: float = 0.0
    num_images: int = 0
    error: str = None
    tb: str = None


def worker_payload(session):
    """What to ship to a worker process for ``session``.

    Prefers the spawn-safe :class:`repro.engine.SessionSpec` (config +
    weights, rebuilt in the child); sessions a spec cannot describe
    (custom selector classifiers) fall back to pickling the live
    session object.
    """
    from repro.engine.spec import SpecError

    try:
        return session.spec()
    except SpecError:
        return session


def _run_worker(worker_index, payload, task_queue,
                result_queue):                       # pragma: no cover
    """Executor-worker main loop (module-level: spawn must import it).

    Rebuilds the session, signals readiness, then serves tasks until
    the ``None`` sentinel arrives.  Every task failure is reported as
    an error reply -- the worker itself survives to serve the next
    batch.

    (no-cover: this body runs inside child processes, outside the
    parent's coverage tracer; ``tests/serving/test_workers.py``
    exercises every branch through real pools.)
    """
    try:
        session = (payload.build() if hasattr(payload, "build")
                   else payload)
    except Exception as exc:                             # pragma: no cover
        result_queue.put(WorkerReply(
            kind="error", worker=worker_index,
            error=f"worker startup failed: {exc!r}",
            tb=traceback.format_exc()))
        return
    result_queue.put(WorkerReply(kind=_READY, worker=worker_index))
    while True:
        task = task_queue.get()
        if task is _SENTINEL:
            break
        task_id, image_groups = task
        try:
            result, _ = session.submit_many(image_groups)
            result_queue.put(WorkerReply(
                kind="result", worker=worker_index, task_id=task_id,
                logits=result.logits,
                tokens_per_stage=result.tokens_per_stage,
                latency_ms=result.latency_ms,
                wall_time_s=result.wall_time_s,
                num_images=int(result.logits.shape[0])))
        except Exception as exc:
            result_queue.put(WorkerReply(
                kind="error", worker=worker_index, task_id=task_id,
                error=repr(exc), tb=traceback.format_exc()))


class WorkerPool:
    """N executor processes fed per-worker task queues.

    Parameters
    ----------
    session: the :class:`repro.engine.InferenceSession` to replicate
        (or a ready :class:`repro.engine.SessionSpec`).  Each worker
        owns an independent rebuild -- weights are copied per process.
    num_workers: pool size (>= 1).
    ctx: multiprocessing start method; ``"spawn"`` (default) is the
        portable, spawn-safe road the pool is tested under -- spawned
        workers load their BLAS capped at one thread (inherited env,
        see :class:`_single_thread_blas_env`).  ``"fork"`` trades that
        and safety for instant startup on POSIX: forked workers
        inherit the parent's already-initialized BLAS threading.
    startup_timeout_s: how long to wait for every worker's ready
        handshake before giving up.
    """

    def __init__(self, session, num_workers, ctx="spawn",
                 startup_timeout_s=120.0):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        payload = (session if hasattr(session, "build")
                   else worker_payload(session))
        self._ctx = multiprocessing.get_context(ctx)
        self.num_workers = int(num_workers)
        self._task_queues = [self._ctx.Queue()
                             for _ in range(self.num_workers)]
        self._result_queue = self._ctx.Queue()
        # Guards _closed against dispatch/poll racing close() from
        # another thread (scheduler shutdown during background
        # stepping): without it a dispatcher can observe _closed ==
        # False, lose the CPU, and put on a queue close() has already
        # released -- an unhandled ValueError/OSError deep in
        # multiprocessing instead of the clean "pool is closed" error.
        # RLock so close() can run under it end to end while its own
        # helpers re-enter.
        self._state_lock = threading.RLock()
        self._closed = False
        self._processes = [
            self._ctx.Process(
                target=_run_worker,
                args=(index, payload, self._task_queues[index],
                      self._result_queue),
                name=f"repro-serving-worker-{index}", daemon=True)
            for index in range(self.num_workers)]
        with _single_thread_blas_env():
            for process in self._processes:
                process.start()
        self._await_ready(startup_timeout_s)

    def _await_ready(self, timeout_s):
        deadline = time.monotonic() + timeout_s
        ready = set()
        while len(ready) < self.num_workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise RuntimeError(
                    f"worker pool startup timed out; ready: "
                    f"{sorted(ready)} of {self.num_workers}")
            try:
                reply = self._result_queue.get(timeout=min(remaining, 0.2))
            except queue_module.Empty:
                dead = [p.name for p in self._processes
                        if not p.is_alive() and p.exitcode not in (0, None)]
                if dead:
                    self.close()
                    raise RuntimeError(
                        f"worker(s) died during startup: {dead}")
                continue
            if reply.kind == "error":
                self.close()
                raise RuntimeError(
                    f"worker {reply.worker} failed to start: "
                    f"{reply.error}\n{reply.tb}")
            ready.add(reply.worker)

    # ------------------------------------------------------------------
    def dispatch(self, task_id, image_groups, worker):
        """Send one batch (a list of per-request image arrays) to
        ``worker``.  Non-blocking: the reply arrives via :meth:`poll`.
        """
        if not 0 <= worker < self.num_workers:
            raise ValueError(f"worker index {worker} out of range "
                             f"0..{self.num_workers - 1}")
        with self._state_lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            self._task_queues[worker].put((task_id, list(image_groups)))

    def poll(self, timeout_s=0.0):
        """Collect available replies; waits at most ``timeout_s`` for
        the first one, then drains without blocking."""
        replies = []
        block = timeout_s > 0
        while True:
            try:
                with self._state_lock:
                    if self._closed:
                        break
                    if not block:
                        replies.append(self._result_queue.get_nowait())
                        continue
                # Blocking wait happens *outside* the lock so a
                # concurrent close() is never stalled behind it; the
                # post-wait drain re-checks _closed above.
                replies.append(self._result_queue.get(timeout=timeout_s))
            except queue_module.Empty:
                break
            except (ValueError, OSError):     # queue released mid-wait
                break
            block = False
        return replies

    def alive_workers(self):
        """Indices of workers whose processes are still running."""
        return [index for index, process in enumerate(self._processes)
                if process.is_alive()]

    @property
    def closed(self):
        return self._closed

    # ------------------------------------------------------------------
    def close(self, timeout_s=30.0):
        """Deterministic shutdown: sentinel every worker, join every
        process (terminating stragglers), release the queues.
        Idempotent, and safe against concurrent :meth:`dispatch` /
        :meth:`poll` -- the closed flag flips and the queues are
        released under the state lock, so a racing dispatcher gets the
        clean "pool is closed" error instead of a multiprocessing
        internals failure."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            for task_queue, process in zip(self._task_queues,
                                           self._processes):
                if process.is_alive():
                    try:
                        task_queue.put(_SENTINEL)
                    except (ValueError, OSError):     # pragma: no cover
                        pass
        deadline = time.monotonic() + timeout_s
        # Keep the reply pipe drained while the workers wind down: a
        # worker with more buffered replies than the pipe holds blocks
        # in its feeder thread and never reaches the sentinel, so an
        # undrained close would stall the full timeout and then
        # terminate a healthy worker.  Discarding is correct here --
        # close() is end of life; callers that want the results drain
        # before closing (Scheduler.shutdown does).
        while (any(process.is_alive() for process in self._processes)
               and time.monotonic() < deadline):
            try:
                self._result_queue.get(timeout=0.05)
            except queue_module.Empty:
                pass
            except (ValueError, OSError):         # pragma: no cover
                break
        for process in self._processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():                # pragma: no cover
                process.terminate()
                process.join(timeout=5.0)
        with self._state_lock:
            for task_queue in self._task_queues:
                task_queue.close()
                task_queue.cancel_join_thread()
            self._result_queue.close()
            self._result_queue.cancel_join_thread()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()

    def __repr__(self):
        state = "closed" if self._closed else "open"
        return (f"WorkerPool(workers={self.num_workers}, {state}, "
                f"ctx={self._ctx.get_start_method()!r})")
