"""Request and result records for the serving scheduler.

A :class:`Request` is one client submission: a small stack of images
(often a single one) with an optional **absolute** deadline, a priority
class, and an optional explicit model name.  The scheduler coalesces
many requests into one bucketed batch; each request gets back a
:class:`RequestResult` carrying its own logits rows, the per-image
Eq. 18 latency estimates, and the timing bookkeeping needed to audit
deadline behavior.

Priority classes are small non-negative integers, **lower is more
urgent**: class 0 is the premium tier (eligible for flush preemption
and exempt from admission shedding), higher classes are progressively
more sheddable.  The scheduler can map classes to default deadline
tiers (``Scheduler(priority_tiers=...)``), so clients express an SLO
by class alone.

Both records are ``eq=False`` dataclasses on purpose: the generated
field-wise ``__eq__`` would compare the numpy ``images``/``logits``
arrays and raise ``ValueError: the truth value of an array ...`` as
soon as two *distinct* requests are compared (``request in list`` hits
exactly that).  Identity semantics are the correct ones here -- every
request is a unique submission even when its payload bytes repeat.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Request", "RequestResult", "DEFAULT_PRIORITY"]

#: Priority class assigned when a submission does not name one.  Class
#: 0 is deliberately *not* the default: the premium tier must be
#: opted into, so plain traffic never preempts or starves it.
DEFAULT_PRIORITY = 1


@dataclass(eq=False)
class Request:
    """One pending client submission.

    ``images``: ``(n, C, H, W)`` array, ``n >= 1``.
    ``arrival_ms``: scheduler-clock time the request was accepted.
    ``deadline_ms``: absolute clock time the response is due, or
        ``None`` for best-effort requests.
    ``priority``: SLO class (lower is more urgent; 0 = premium).
    ``model``: explicit session name, or ``None`` to let the router
        choose.
    ``retries``: re-dispatches consumed recovering this request from
        worker losses (mutable bookkeeping; deliberately *not* part of
        the EDF ordering key, so recovery never reorders the queue).
    """

    request_id: int
    images: np.ndarray
    arrival_ms: float
    deadline_ms: float = None
    priority: int = DEFAULT_PRIORITY
    model: str = None
    retries: int = 0

    @property
    def num_images(self):
        return int(self.images.shape[0])

    def time_to_deadline(self, now_ms):
        """Milliseconds of slack left; ``inf`` for best-effort requests."""
        if self.deadline_ms is None:
            return float("inf")
        return self.deadline_ms - now_ms


@dataclass(eq=False)
class RequestResult:
    """One completed request.

    ``logits`` / ``latency_ms`` are this request's rows of the batch
    result (``(n, num_classes)`` and ``(n,)``).  ``session`` names the
    :class:`repro.engine.InferenceSession` that executed it (the routing
    decision); ``completed_ms`` is the scheduler-clock flush time.

    A request the recovery layer gave up on (poison quarantine: its
    batches exhausted the re-dispatch budget, or it was shed after a
    worker loss) still gets a result -- one with ``error`` set and no
    ``logits``.  Callers check :attr:`failed` before touching the
    payload; serving a clean failure beats hanging a client forever.
    """

    request_id: int
    logits: np.ndarray
    latency_ms: np.ndarray
    session: str
    arrival_ms: float
    completed_ms: float
    deadline_ms: float = None
    priority: int = DEFAULT_PRIORITY
    tokens_per_stage: list = field(default_factory=list)
    error: str = None

    @property
    def failed(self):
        """Whether the recovery layer failed this request cleanly
        instead of completing it."""
        return self.error is not None

    @property
    def predictions(self):
        if self.logits is None:
            return None
        return self.logits.argmax(axis=-1)

    @property
    def wait_ms(self):
        """Time spent queued before the executing flush."""
        return self.completed_ms - self.arrival_ms

    @property
    def deadline_met(self):
        return (self.deadline_ms is None
                or self.completed_ms <= self.deadline_ms)

    @property
    def overshoot_ms(self):
        """How far past the deadline completion landed (0 when met)."""
        if self.deadline_ms is None:
            return 0.0
        return max(0.0, self.completed_ms - self.deadline_ms)
