"""Routing policies: pick a serving session for each request.

The scheduler serves several :class:`repro.engine.InferenceSession`\\ s
in one process -- typically the *same* HeatViT checkpoint at different
keep-ratio operating points (paper Table IV rows), so routing trades
accuracy against estimated latency.  A router sees each request once,
at acceptance, together with every registered session's batch-aware
:class:`repro.cost.CostModel` pricing (via ``ServedModel.batch_cost``)
and the current clock.

Cost convention: a request's estimated execution cost on a session is
the session cost model's batch estimate for its image count -- the
per-batch overhead (weight loading / pipeline fill) plus each image's
Eq. 18/19 marginal cost; with a zero-overhead model this is exactly the
legacy per-image sum.  A session is *feasible* for a request when that
cost fits inside the time left to the deadline; queueing delay is
bounded separately by the scheduler's deadline-aware flush.

Fidelity convention: with mixed-numerics deployments (the same
operating point served on the ``tensor``/``fastpath``/``int8``
backends; see :mod:`repro.engine.fastpath`), cost estimates no longer
order sessions by accuracy on their own -- the latency table prices
token counts, not arithmetic.  :func:`backend_fidelity` ranks the
numerics grades (reference tensor path above compiled float above
int16 above int8, wider floats above narrower within a backend), and
:class:`HighestFidelityRouter` breaks cost ties toward the higher
grade, so a quantized replica is only chosen over its float twin when
it is actually priced cheaper.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Router", "LeastLatencyRouter", "HighestFidelityRouter",
           "request_cost_ms", "backend_fidelity", "BACKEND_FIDELITY"]

# Base numerics-fidelity rank per compute backend.  The tensor path is
# the float64 reference; the compiled fastpath reproduces it to float
# rounding; the quantized backends deliberately perturb the arithmetic
# (8-bit more than 16-bit).
BACKEND_FIDELITY = {"tensor": 3.0, "fastpath": 2.0, "int16": 1.0,
                    "int8": 0.0}


def backend_fidelity(backend, dtype=None):
    """Rank a session's numerics grade for accuracy-aware routing.

    Higher is more faithful to the float64 reference.  ``dtype`` is the
    session's resolved compute dtype; a 64-bit float adds half a step,
    ordering e.g. ``fastpath``/float64 above ``fastpath``/float32 while
    keeping every fastpath grade below the tensor reference.
    """
    try:
        base = BACKEND_FIDELITY[backend]
    except KeyError:
        raise KeyError(
            f"unknown backend {backend!r}; known: "
            f"{sorted(BACKEND_FIDELITY)}") from None
    if dtype is not None and np.dtype(dtype).itemsize >= 8:
        base += 0.5
    return base


def request_cost_ms(served, request):
    """Estimated execution cost of ``request`` on a served session --
    the :class:`repro.cost.CostModel` batch price of its images."""
    return served.batch_cost_ms(request.num_images)


class Router:
    """Chooses one of the registered sessions for a request."""

    def route(self, request, candidates, now_ms):
        """Return the chosen entry from ``candidates`` (never empty)."""
        raise NotImplementedError

    @staticmethod
    def feasible(request, candidates, now_ms):
        """Candidates whose estimated cost fits the request's slack."""
        slack = request.time_to_deadline(now_ms)
        return [served for served in candidates
                if request_cost_ms(served, request) <= slack]


class LeastLatencyRouter(Router):
    """Minimize table-estimated latency, subject to the deadline.

    Among the sessions that can meet the request's deadline, picks the
    one with the smallest estimated cost; if none can (or the request is
    best-effort), falls back to the globally fastest.  Ties break by
    session name for determinism.
    """

    def route(self, request, candidates, now_ms):
        pool = self.feasible(request, candidates, now_ms) or candidates
        return min(pool, key=lambda s: (request_cost_ms(s, request),
                                        s.name))


class HighestFidelityRouter(Router):
    """Maximize accuracy (keep ratio), subject to the deadline.

    The complementary policy: latency estimates are monotone in the
    keep ratio, so the *slowest* session that still meets the deadline
    is the least-pruned -- most accurate -- operating point.  Requests
    with loose deadlines get the full model; tight ones degrade
    gracefully to aggressive pruning (falling back to the fastest
    session when even that cannot meet the deadline).

    Cost ties break on the numerics grade (``ServedModel.fidelity``):
    among equally-priced feasible sessions the float path beats the
    quantized one, and in the infeasible fallback the fastest-tied
    choice is again the highest grade.  Names break any remaining tie
    for determinism.
    """

    def route(self, request, candidates, now_ms):
        pool = self.feasible(request, candidates, now_ms)
        if pool:
            return max(pool, key=lambda s: (request_cost_ms(s, request),
                                            s.fidelity, s.name))
        return min(candidates, key=lambda s: (request_cost_ms(s, request),
                                              -s.fidelity, s.name))
