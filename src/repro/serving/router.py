"""Routing policies: pick a serving session for each request.

The scheduler serves several :class:`repro.engine.InferenceSession`\\ s
in one process -- typically the *same* HeatViT checkpoint at different
keep-ratio operating points (paper Table IV rows), so routing trades
accuracy against estimated latency.  A router sees each request once,
at acceptance, together with every registered session's batch-aware
:class:`repro.cost.CostModel` pricing (via ``ServedModel.batch_cost``)
and the current clock.

Cost convention: a request's estimated execution cost on a session is
the session cost model's batch estimate for its image count -- the
per-batch overhead (weight loading / pipeline fill) plus each image's
Eq. 18/19 marginal cost; with a zero-overhead model this is exactly the
legacy per-image sum.  A session is *feasible* for a request when that
cost fits inside the time left to the deadline; queueing delay is
bounded separately by the scheduler's deadline-aware flush.
"""

from __future__ import annotations

__all__ = ["Router", "LeastLatencyRouter", "HighestFidelityRouter",
           "request_cost_ms"]


def request_cost_ms(served, request):
    """Estimated execution cost of ``request`` on a served session --
    the :class:`repro.cost.CostModel` batch price of its images."""
    return served.batch_cost_ms(request.num_images)


class Router:
    """Chooses one of the registered sessions for a request."""

    def route(self, request, candidates, now_ms):
        """Return the chosen entry from ``candidates`` (never empty)."""
        raise NotImplementedError

    @staticmethod
    def feasible(request, candidates, now_ms):
        """Candidates whose estimated cost fits the request's slack."""
        slack = request.time_to_deadline(now_ms)
        return [served for served in candidates
                if request_cost_ms(served, request) <= slack]


class LeastLatencyRouter(Router):
    """Minimize table-estimated latency, subject to the deadline.

    Among the sessions that can meet the request's deadline, picks the
    one with the smallest estimated cost; if none can (or the request is
    best-effort), falls back to the globally fastest.  Ties break by
    session name for determinism.
    """

    def route(self, request, candidates, now_ms):
        pool = self.feasible(request, candidates, now_ms) or candidates
        return min(pool, key=lambda s: (request_cost_ms(s, request),
                                        s.name))


class HighestFidelityRouter(Router):
    """Maximize accuracy (keep ratio), subject to the deadline.

    The complementary policy: latency estimates are monotone in the
    keep ratio, so the *slowest* session that still meets the deadline
    is the least-pruned -- most accurate -- operating point.  Requests
    with loose deadlines get the full model; tight ones degrade
    gracefully to aggressive pruning (falling back to the fastest
    session when even that cannot meet the deadline).
    """

    def route(self, request, candidates, now_ms):
        pool = self.feasible(request, candidates, now_ms)
        if pool:
            return max(pool, key=lambda s: (request_cost_ms(s, request),
                                            s.name))
        return min(candidates, key=lambda s: (request_cost_ms(s, request),
                                              s.name))
