"""Clock abstraction for the request scheduler.

All serving-layer time is in **milliseconds** -- the unit of the
latency-sparsity table (paper Table IV) that deadlines and batch
windows are compared against.  The scheduler never reads wall time
directly; it asks its clock, so tests drive a :class:`VirtualClock`
tick by tick and assert flush timing and deadline behavior exactly,
with no real sleeps (``tests/serving/harness.py``).
"""

from __future__ import annotations

import time

__all__ = ["Clock", "SystemClock", "VirtualClock"]


class Clock:
    """Monotonic time source in milliseconds."""

    def now(self):
        raise NotImplementedError


class SystemClock(Clock):
    """Real monotonic time (``time.monotonic``), in milliseconds."""

    def now(self):
        return time.monotonic() * 1e3


class VirtualClock(Clock):
    """Manually-advanced time for deterministic serving simulations."""

    def __init__(self, start_ms=0.0):
        self._now = float(start_ms)

    def now(self):
        return self._now

    def advance(self, delta_ms):
        if delta_ms < 0:
            raise ValueError("time cannot go backwards")
        self._now += float(delta_ms)
        return self._now
