"""Replayable serving traces: JSONL format, generators, load replay.

A trace is a list of :class:`TraceRequest` records -- *when* a request
arrives, how many images it carries, its SLO (deadline or priority
tier), and a seed from which its image payload is synthesized
deterministically.  Traces serialize to JSON Lines (one request per
line), so the exact same workload replays across processes, machines,
and PRs: ``benchmarks/bench_frontdoor.py`` replays them over real HTTP
and is the standing "millions of users" serving benchmark.

Generators cover the workload shapes the serving story cares about:

* :func:`uniform_trace` -- a steady stream at a fixed period;
* :func:`bursty_trace` -- bursts of simultaneous arrivals that stress
  batch formation, carry-over, and admission control;
* :func:`adversarial_trace` -- premium (class-0) requests landing
  mid-window behind best-effort backlog: the flush-preemption stress;
* :func:`two_tier_trace` -- the standing benchmark shape: a steady
  premium stream riding on bursty bulk traffic heavy enough to trip
  admission control.

Image payloads come from :func:`synth_images`: a deterministic
standard-normal stack keyed by the request seed, so a trace file fully
determines the pixels without shipping them.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.serving.request import DEFAULT_PRIORITY

__all__ = ["TraceRequest", "synth_images", "save_jsonl", "load_jsonl",
           "uniform_trace", "bursty_trace", "adversarial_trace",
           "two_tier_trace", "replay"]


@dataclass(eq=False)
class TraceRequest:
    """One scripted submission.

    ``at_ms`` is the arrival time from trace start; ``deadline_ms`` is
    *relative* to arrival (``None`` defers to the scheduler's priority
    tier, if any).  ``seed`` keys the deterministic image payload.
    """

    at_ms: float
    num_images: int = 1
    seed: int = 0
    deadline_ms: float = None
    priority: int = DEFAULT_PRIORITY
    model: str = None

    def images(self, image_shape, dtype=np.float64):
        """This request's deterministic ``(n, C, H, W)`` payload."""
        return synth_images((self.num_images,) + tuple(image_shape),
                            self.seed, dtype=dtype)


def synth_images(shape, seed, dtype=np.float64):
    """Deterministic standard-normal image stack for a trace seed."""
    return np.random.default_rng(int(seed)).standard_normal(
        shape).astype(dtype, copy=False)


# ----------------------------------------------------------------------
# JSONL round-trip
# ----------------------------------------------------------------------
def save_jsonl(trace, path):
    """Write one JSON object per line; ``None`` fields are omitted."""
    with open(path, "w") as handle:
        for request in trace:
            record = {key: value for key, value in asdict(request).items()
                      if value is not None}
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def load_jsonl(path):
    """Load a trace written by :func:`save_jsonl` (blank lines ignored)."""
    trace = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                trace.append(TraceRequest(**json.loads(line)))
    return sorted(trace, key=lambda r: r.at_ms)


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def uniform_trace(*, num_requests, period_ms, num_images=1,
                  deadline_ms=None, priority=DEFAULT_PRIORITY, model=None,
                  start_ms=0.0, seed=0):
    """A steady stream: one request every ``period_ms``."""
    return [TraceRequest(at_ms=start_ms + i * period_ms,
                         num_images=num_images, seed=seed + i,
                         deadline_ms=deadline_ms, priority=priority,
                         model=model)
            for i in range(num_requests)]


def bursty_trace(*, burst_times_ms, burst_size, num_images=1,
                 deadline_ms=None, priority=DEFAULT_PRIORITY, model=None,
                 seed=0):
    """Bursts of ``burst_size`` simultaneous requests at scripted times."""
    trace = []
    for at_ms in burst_times_ms:
        for _ in range(burst_size):
            trace.append(TraceRequest(
                at_ms=float(at_ms), num_images=num_images,
                seed=seed + len(trace), deadline_ms=deadline_ms,
                priority=priority, model=model))
    return trace


def adversarial_trace(*, window_ms, num_windows=8, backlog_size=4,
                      premium_deadline_ms=None, premium_offset_ms=None,
                      seed=0):
    """Premium arrivals landing mid-window behind best-effort backlog.

    Each window opens with ``backlog_size`` best-effort requests (they
    alone would coast to the window flush), then a single class-0
    request arrives mid-window with a deadline much tighter than the
    time left in the window.  Without flush preemption its lateness is
    bounded only by ``batch_window_ms``; with it, by execution time
    plus the deadline margin.
    """
    premium_offset_ms = (window_ms / 2 if premium_offset_ms is None
                         else premium_offset_ms)
    premium_deadline_ms = (window_ms / 8 if premium_deadline_ms is None
                           else premium_deadline_ms)
    trace = []
    for window in range(num_windows):
        base = window * (2.0 * window_ms)
        for _ in range(backlog_size):
            trace.append(TraceRequest(at_ms=base, seed=seed + len(trace),
                                      priority=DEFAULT_PRIORITY))
        trace.append(TraceRequest(at_ms=base + premium_offset_ms,
                                  seed=seed + len(trace),
                                  deadline_ms=premium_deadline_ms,
                                  priority=0))
    return trace


def two_tier_trace(*, duration_ms, premium_period_ms, bulk_burst_size,
                   bulk_burst_period_ms, premium_deadline_ms=None,
                   bulk_deadline_ms=None, num_images=1, seed=0):
    """The standing benchmark shape: premium stream + bursty bulk.

    A class-0 stream arrives every ``premium_period_ms``; class-1 bulk
    arrives in bursts of ``bulk_burst_size`` every
    ``bulk_burst_period_ms``.  Size the bursts so the priced bulk
    backlog exceeds the admission capacity and the scheduler must
    degrade or shed class 1 while class 0 keeps hitting its deadlines.
    """
    trace = uniform_trace(
        num_requests=max(1, int(duration_ms / premium_period_ms)),
        period_ms=premium_period_ms, num_images=num_images,
        deadline_ms=premium_deadline_ms, priority=0, seed=seed)
    burst_times = np.arange(0.0, duration_ms, bulk_burst_period_ms)
    trace += bursty_trace(
        burst_times_ms=burst_times.tolist(), burst_size=bulk_burst_size,
        num_images=num_images, deadline_ms=bulk_deadline_ms, priority=1,
        seed=seed + 100_000)
    return sorted(trace, key=lambda r: (r.at_ms, r.priority))


# ----------------------------------------------------------------------
# Replay (the load generator core)
# ----------------------------------------------------------------------
def replay(trace, submit, *, speed=1.0, sleep=time.sleep,
           clock=time.monotonic):
    """Drive ``submit(trace_request)`` at the trace's arrival times.

    Real-time load generation: request *i* is submitted once
    ``at_ms / speed`` milliseconds have elapsed since the replay
    started (``speed > 1`` compresses the trace).  ``submit`` is any
    callable -- an HTTP client post, a direct ``Scheduler.submit``
    wrapper -- and its return value is collected per request;
    exceptions are collected too (admission sheds surface as values,
    not aborts).  Returns ``[(trace_request, outcome), ...]`` in
    submission order, where an outcome is the submit return or the
    raised exception.
    """
    if speed <= 0:
        raise ValueError("speed must be > 0")
    ordered = sorted(trace, key=lambda r: r.at_ms)
    start = clock()
    outcomes = []
    for request in ordered:
        due = start + request.at_ms / speed / 1e3
        delay = due - clock()
        if delay > 0:
            sleep(delay)
        try:
            outcomes.append((request, submit(request)))
        except Exception as exc:
            outcomes.append((request, exc))
    return outcomes
