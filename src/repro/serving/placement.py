"""Cost-model placement of batches onto parallel executor workers.

One scheduler fans flushed batches out to N executor processes
(:mod:`repro.serving.worker`).  The :class:`PlacementPolicy` decides
*which* worker runs each batch: the one with the lowest predicted
completion time, where a worker's prediction is

``completion = max(now, worker_free_at) + calibration * cost_model_ms``

-- its in-flight backlog plus the batch's :class:`repro.cost.CostModel`
estimate, corrected by **per-worker online learning** from the worker's
own measured kernel timings (cf. SAWL's measured-cost policy tuning).
Heterogeneous workers -- a loaded core, a slower NUMA node -- therefore
drift toward receiving less work without any configuration.

Each worker owns a full :class:`repro.cost.OnlineEstimator`: a decaying
recursive-least-squares fit of ``wall_ms = overhead + marginal *
num_images`` over the shapes and timings its replies carried.  Until an
estimator reaches its sample threshold (and whenever a caller places by
bare scalar cost, without a batch shape) the legacy calibration EWMA --
measured over predicted -- answers instead, so the scalar path's exact
arithmetic is preserved.  A confident estimator separates what the EWMA
conflates: a worker that is slow *per launch* stops distorting the
predictions for large batches, and vice versa.

The policy is a pure function of the times it is handed (no wall-clock
reads), so the unit suite drives it with a virtual clock and asserts
placement decisions exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost import OnlineEstimator

__all__ = ["PlacementPolicy", "Placement"]


@dataclass(frozen=True)
class Placement:
    """One placement decision (the ticket handed back to the caller).

    ``raw_ms`` is the uncalibrated cost-model estimate, ``predicted_ms``
    the calibrated one actually charged to the worker's backlog;
    ``start_ms`` / ``completion_ms`` bound the predicted execution
    window.  ``num_images`` is the batch shape the prediction priced
    (``None`` for bare scalar placements), which
    :meth:`PlacementPolicy.complete` feeds to the worker's learned
    estimator together with the measured time.  Pass the ticket back to
    :meth:`PlacementPolicy.complete` when the batch finishes.
    """

    worker: int
    raw_ms: float
    predicted_ms: float
    start_ms: float
    completion_ms: float
    num_images: int = None


class PlacementPolicy:
    """Lowest-predicted-completion-time placement with online calibration.

    Parameters
    ----------
    num_workers: size of the worker pool.
    cost_model: optional :class:`repro.cost.CostModel`; when given,
        completion predictions go through its
        :meth:`~repro.cost.CostModel.completion_ms` (same arithmetic,
        single pricing implementation).
    smoothing: EWMA weight of each new measured/predicted observation
        (the first observation seeds the factor directly).  The EWMA is
        the fallback layer under the learned per-worker estimators.
    min_samples: shaped observations a worker's learned estimator needs
        before it answers instead of the calibration EWMA.
    forgetting: the learned estimators' RLS decay factor.
    max_in_flight: bound on batches outstanding per worker (``None`` =
        unbounded, the pre-recovery behavior).  The scheduler sets it
        from its :class:`repro.serving.RecoveryPolicy` so a slow or
        dying worker never accumulates an unbounded strandable backlog.
    """

    def __init__(self, num_workers, cost_model=None, smoothing=0.25,
                 min_samples=8, forgetting=0.98, max_in_flight=None):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.max_in_flight = (None if max_in_flight is None
                              else int(max_in_flight))
        self.num_workers = int(num_workers)
        self.cost_model = cost_model
        self.smoothing = float(smoothing)
        self._free_at = [0.0] * self.num_workers
        self._calibration = [1.0] * self.num_workers
        self._in_flight = [0] * self.num_workers
        self._observations = [0] * self.num_workers
        self._estimators = [
            OnlineEstimator(forgetting=forgetting, min_samples=min_samples)
            for _ in range(self.num_workers)]

    # ------------------------------------------------------------------
    @property
    def calibration(self):
        """Per-worker measured/predicted scale factors (1.0 = the cost
        model is exact for that worker)."""
        return tuple(self._calibration)

    @property
    def in_flight(self):
        """Per-worker count of dispatched, not-yet-completed batches."""
        return tuple(self._in_flight)

    @property
    def observations(self):
        """Per-worker count of measured timings folded into calibration."""
        return tuple(self._observations)

    def estimator(self, worker):
        """The worker's learned :class:`repro.cost.OnlineEstimator`."""
        return self._estimators[worker]

    def has_capacity(self, worker):
        """Whether ``worker`` may accept another batch under the
        ``max_in_flight`` bound."""
        return (self.max_in_flight is None
                or self._in_flight[worker] < self.max_in_flight)

    def predicted_ms(self, worker, raw_cost_ms, num_images=None):
        """Execution-time prediction for one batch on ``worker``.

        With a batch shape (``num_images``) and a confident learned
        estimator, the worker's own fitted ``overhead + marginal * n``
        law answers; otherwise the calibration EWMA scales the raw
        cost-model estimate (the exact pre-learning arithmetic)."""
        estimator = self._estimators[worker]
        if num_images is not None and estimator.confident:
            return estimator.predict(num_images, launches=1.0)
        return self._calibration[worker] * float(raw_cost_ms)

    def completion_ms(self, worker, raw_cost_ms, now_ms=0.0,
                      num_images=None):
        """Predicted completion time of a batch dispatched to ``worker``
        now: its backlog (bounded below by ``now_ms``) plus the
        predicted batch execution time."""
        backlog = max(float(now_ms), self._free_at[worker])
        estimator = self._estimators[worker]
        if num_images is not None and estimator.confident:
            return backlog + estimator.predict(num_images, launches=1.0)
        if self.cost_model is not None:
            return self.cost_model.completion_ms(
                float(raw_cost_ms), backlog_ms=backlog,
                calibration=self._calibration[worker])
        return backlog + self.predicted_ms(worker, raw_cost_ms)

    # ------------------------------------------------------------------
    def assign(self, raw_cost_ms, now_ms=0.0, num_images=None,
               candidates=None):
        """Place one batch; returns the :class:`Placement` ticket.

        Picks the worker with the lowest predicted completion time
        given its in-flight queue (ties break toward the lowest worker
        index, so placement is deterministic) and charges the batch to
        that worker's backlog.  Pass the batch shape (``num_images``)
        so workers with confident learned estimators price it from
        their own fitted batch law -- and so :meth:`complete` can feed
        the shape back to the estimator with the measured time.

        ``candidates`` restricts the choice to a subset of workers (the
        scheduler passes the *alive and under-capacity* set during
        recovery); placement among no eligible workers raises
        ``LookupError`` -- the caller's signal to defer the batch.
        """
        if raw_cost_ms < 0:
            raise ValueError("raw_cost_ms must be >= 0")
        if num_images is not None and num_images < 0:
            raise ValueError("num_images must be >= 0")
        pool = (range(self.num_workers) if candidates is None
                else sorted(set(candidates)))
        eligible = [w for w in pool
                    if 0 <= w < self.num_workers and self.has_capacity(w)]
        if not eligible:
            raise LookupError("no eligible worker has capacity")
        worker = min(eligible,
                     key=lambda w: (self.completion_ms(w, raw_cost_ms,
                                                       now_ms, num_images),
                                    w))
        start = max(float(now_ms), self._free_at[worker])
        completion = self.completion_ms(worker, raw_cost_ms, now_ms,
                                        num_images)
        self._free_at[worker] = completion
        self._in_flight[worker] += 1
        return Placement(worker=worker, raw_ms=float(raw_cost_ms),
                         predicted_ms=completion - start,
                         start_ms=start, completion_ms=completion,
                         num_images=(None if num_images is None
                                     else int(num_images)))

    def complete(self, placement, now_ms=None, measured_ms=None):
        """Retire a ticket; fold the measured execution time into the
        worker's calibration factor.

        ``measured_ms`` is the worker's host-measured batch execution
        time; when given, the worker's calibration EWMA moves toward
        ``measured / raw``, the worker's learned estimator folds in the
        ``(num_images, measured)`` sample (tickets that carried a batch
        shape), and the worker's backlog is corrected by the prediction
        error.  ``now_ms`` (when known) lets an emptied worker's
        backlog collapse to the present instead of carrying a stale
        prediction.
        """
        worker = placement.worker
        if self._in_flight[worker] < 1:
            raise ValueError(
                f"worker {worker} has no in-flight batch to complete")
        self._in_flight[worker] -= 1
        if measured_ms is not None and placement.raw_ms > 0:
            ratio = float(measured_ms) / placement.raw_ms
            if self._observations[worker] == 0:
                self._calibration[worker] = ratio
            else:
                a = self.smoothing
                self._calibration[worker] = (
                    (1.0 - a) * self._calibration[worker] + a * ratio)
            self._observations[worker] += 1
            if placement.num_images:
                self._estimators[worker].observe(
                    placement.num_images, max(float(measured_ms), 0.0),
                    launches=1.0)
        if now_ms is not None:
            if self._in_flight[worker] == 0:
                self._free_at[worker] = float(now_ms)
            elif measured_ms is not None:
                corrected = (self._free_at[worker]
                             - placement.predicted_ms + float(measured_ms))
                self._free_at[worker] = max(float(now_ms), corrected)

    def snapshot(self):
        """Telemetry: per-worker backlog, calibration, and in-flight
        counts (what the benchmark records per sweep point)."""
        return {
            "free_at_ms": tuple(self._free_at),
            "calibration": self.calibration,
            "in_flight": self.in_flight,
            "observations": self.observations,
            "learned": tuple(
                {"overhead_ms": est.overhead_ms,
                 "marginal_ms": est.marginal_ms,
                 "samples": est.count,
                 "confident": est.confident,
                 "variance_ms2": est.variance_ms2}
                for est in self._estimators),
        }

    def __repr__(self):
        cal = ", ".join(f"{c:.3f}" for c in self._calibration)
        return (f"PlacementPolicy(workers={self.num_workers}, "
                f"calibration=[{cal}])")
