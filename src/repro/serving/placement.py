"""Cost-model placement of batches onto parallel executor workers.

One scheduler fans flushed batches out to N executor processes
(:mod:`repro.serving.worker`).  The :class:`PlacementPolicy` decides
*which* worker runs each batch: the one with the lowest predicted
completion time, where a worker's prediction is

``completion = max(now, worker_free_at) + calibration * cost_model_ms``

-- its in-flight backlog plus the batch's :class:`repro.cost.CostModel`
estimate, corrected by an **online calibration** factor learned from
the worker's own measured kernel timings (an EWMA of measured over
predicted, the self-adaptive layer over the static FPGA-simulator fit;
cf. SAWL's measured-cost policy tuning).  Heterogeneous workers -- a
loaded core, a slower NUMA node -- therefore drift toward receiving
less work without any configuration.

The policy is a pure function of the times it is handed (no wall-clock
reads), so the unit suite drives it with a virtual clock and asserts
placement decisions exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PlacementPolicy", "Placement"]


@dataclass(frozen=True)
class Placement:
    """One placement decision (the ticket handed back to the caller).

    ``raw_ms`` is the uncalibrated cost-model estimate, ``predicted_ms``
    the calibrated one actually charged to the worker's backlog;
    ``start_ms`` / ``completion_ms`` bound the predicted execution
    window.  Pass the ticket back to :meth:`PlacementPolicy.complete`
    when the batch finishes.
    """

    worker: int
    raw_ms: float
    predicted_ms: float
    start_ms: float
    completion_ms: float


class PlacementPolicy:
    """Lowest-predicted-completion-time placement with online calibration.

    Parameters
    ----------
    num_workers: size of the worker pool.
    cost_model: optional :class:`repro.cost.CostModel`; when given,
        completion predictions go through its
        :meth:`~repro.cost.CostModel.completion_ms` (same arithmetic,
        single pricing implementation).
    smoothing: EWMA weight of each new measured/predicted observation
        (the first observation seeds the factor directly).
    """

    def __init__(self, num_workers, cost_model=None, smoothing=0.25):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.num_workers = int(num_workers)
        self.cost_model = cost_model
        self.smoothing = float(smoothing)
        self._free_at = [0.0] * self.num_workers
        self._calibration = [1.0] * self.num_workers
        self._in_flight = [0] * self.num_workers
        self._observations = [0] * self.num_workers

    # ------------------------------------------------------------------
    @property
    def calibration(self):
        """Per-worker measured/predicted scale factors (1.0 = the cost
        model is exact for that worker)."""
        return tuple(self._calibration)

    @property
    def in_flight(self):
        """Per-worker count of dispatched, not-yet-completed batches."""
        return tuple(self._in_flight)

    @property
    def observations(self):
        """Per-worker count of measured timings folded into calibration."""
        return tuple(self._observations)

    def predicted_ms(self, worker, raw_cost_ms):
        """Calibrated execution-time prediction for one batch."""
        return self._calibration[worker] * float(raw_cost_ms)

    def completion_ms(self, worker, raw_cost_ms, now_ms=0.0):
        """Predicted completion time of a batch dispatched to ``worker``
        now: its backlog (bounded below by ``now_ms``) plus the
        calibrated batch estimate."""
        backlog = max(float(now_ms), self._free_at[worker])
        if self.cost_model is not None:
            return self.cost_model.completion_ms(
                float(raw_cost_ms), backlog_ms=backlog,
                calibration=self._calibration[worker])
        return backlog + self.predicted_ms(worker, raw_cost_ms)

    # ------------------------------------------------------------------
    def assign(self, raw_cost_ms, now_ms=0.0):
        """Place one batch; returns the :class:`Placement` ticket.

        Picks the worker with the lowest predicted completion time
        given its in-flight queue (ties break toward the lowest worker
        index, so placement is deterministic) and charges the batch to
        that worker's backlog.
        """
        if raw_cost_ms < 0:
            raise ValueError("raw_cost_ms must be >= 0")
        worker = min(range(self.num_workers),
                     key=lambda w: (self.completion_ms(w, raw_cost_ms,
                                                       now_ms), w))
        start = max(float(now_ms), self._free_at[worker])
        completion = self.completion_ms(worker, raw_cost_ms, now_ms)
        self._free_at[worker] = completion
        self._in_flight[worker] += 1
        return Placement(worker=worker, raw_ms=float(raw_cost_ms),
                         predicted_ms=completion - start,
                         start_ms=start, completion_ms=completion)

    def complete(self, placement, now_ms=None, measured_ms=None):
        """Retire a ticket; fold the measured execution time into the
        worker's calibration factor.

        ``measured_ms`` is the worker's host-measured batch execution
        time; when given, the worker's calibration EWMA moves toward
        ``measured / raw`` and the worker's backlog is corrected by the
        prediction error.  ``now_ms`` (when known) lets an emptied
        worker's backlog collapse to the present instead of carrying a
        stale prediction.
        """
        worker = placement.worker
        if self._in_flight[worker] < 1:
            raise ValueError(
                f"worker {worker} has no in-flight batch to complete")
        self._in_flight[worker] -= 1
        if measured_ms is not None and placement.raw_ms > 0:
            ratio = float(measured_ms) / placement.raw_ms
            if self._observations[worker] == 0:
                self._calibration[worker] = ratio
            else:
                a = self.smoothing
                self._calibration[worker] = (
                    (1.0 - a) * self._calibration[worker] + a * ratio)
            self._observations[worker] += 1
        if now_ms is not None:
            if self._in_flight[worker] == 0:
                self._free_at[worker] = float(now_ms)
            elif measured_ms is not None:
                corrected = (self._free_at[worker]
                             - placement.predicted_ms + float(measured_ms))
                self._free_at[worker] = max(float(now_ms), corrected)

    def snapshot(self):
        """Telemetry: per-worker backlog, calibration, and in-flight
        counts (what the benchmark records per sweep point)."""
        return {
            "free_at_ms": tuple(self._free_at),
            "calibration": self.calibration,
            "in_flight": self.in_flight,
            "observations": self.observations,
        }

    def __repr__(self):
        cal = ", ".join(f"{c:.3f}" for c in self._calibration)
        return (f"PlacementPolicy(workers={self.num_workers}, "
                f"calibration=[{cal}])")
