"""HTTP/JSON front door: the network face of the serving scheduler.

An asyncio HTTP/1.1 server (stdlib only -- ``asyncio.start_server``
plus a small request parser, no web framework) that exposes a
:class:`repro.serving.Scheduler` to real clients:

* ``POST /v1/submit`` -- submit images with an optional deadline,
  priority class, and model pin.  Payload images travel either inline
  (``{"images": [[[...]]]}``, a ``(C,H,W)`` or ``(n,C,H,W)`` nested
  list) or by seed (``{"num_images": 2, "seed": 7}``: the server
  synthesizes the deterministic :func:`repro.serving.trace.synth_images`
  stack -- the trace-replay road, no megabytes of JSON pixels).
  Answers ``200 {"status": "queued", "request_id": ...}``, ``429``
  when admission control sheds, ``503`` + ``Retry-After`` for
  sheddable classes while every eligible target is degraded (worker
  fleet lost, serving in-process), ``400``/``404`` on malformed input.
* ``GET /v1/result/<id>`` -- poll: ``200`` with the result, ``202``
  while pending.  With ``?wait=1[&timeout_ms=...]`` it becomes the
  awaitable variant: the response is held open until completion (or
  timeout -> ``202``).  ``?logits=1`` includes raw logits.  Results
  are delivered **at most once**; a second fetch is ``404 gone``.
* ``GET /healthz`` -- liveness plus registered session names.
* ``GET /stats`` -- :meth:`repro.serving.Scheduler.stats` (queue
  depths, priced backlogs, in-flight batches, per-class deadline-hit
  rates, flush-reason histogram) plus server counters.

The server owns an event-loop thread; scheduler calls that may block
(a preemptive flush executing inline, ``wait_result``) run on thread
pools so the loop keeps accepting connections.  By default the front
door also drives the scheduler's background stepping thread
(``manage_scheduler=True``), making ``FrontDoor(scheduler).start()``
a complete serving process.

:class:`FrontDoorClient` is the matching blocking client (stdlib
``http.client``, keep-alive) used by the tests, the load generator,
and ``benchmarks/bench_frontdoor.py``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.serving.request import DEFAULT_PRIORITY
from repro.serving.retry import RetryPolicy
from repro.serving.scheduler import AdmissionError
from repro.serving.trace import synth_images

__all__ = ["FrontDoor", "FrontDoorClient"]

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}

#: ``Retry-After`` seconds on a 503 (degraded target).  Degraded mode
#: still serves -- in-process, slower -- so a short back-off is right:
#: the client should retry, just not immediately.
_RETRY_AFTER_S = 1


def _result_payload(result, include_logits=False):
    """JSON-shape one RequestResult (the wire format of a completion).

    A request the recovery layer failed cleanly (poison quarantine /
    shed after a worker loss) is still *delivered* -- as ``{"status":
    "failed", "error": ...}`` with no predictions; the delivery itself
    succeeds (HTTP 200, at-most-once), only the inference did not.
    """
    if result.failed:
        return {
            "status": "failed",
            "request_id": result.request_id,
            "session": result.session,
            "priority": result.priority,
            "error": result.error,
            "arrival_ms": result.arrival_ms,
            "completed_ms": result.completed_ms,
            "wait_ms": result.wait_ms,
            "deadline_ms": result.deadline_ms,
        }
    payload = {
        "status": "done",
        "request_id": result.request_id,
        "session": result.session,
        "priority": result.priority,
        "num_images": int(result.logits.shape[0]),
        "predictions": result.predictions.tolist(),
        "latency_ms": result.latency_ms.tolist(),
        "arrival_ms": result.arrival_ms,
        "completed_ms": result.completed_ms,
        "wait_ms": result.wait_ms,
        "deadline_ms": result.deadline_ms,
        "deadline_met": bool(result.deadline_met),
        "overshoot_ms": result.overshoot_ms,
    }
    if include_logits:
        payload["logits"] = result.logits.tolist()
    return payload


class _HttpError(Exception):
    """Routed straight to a JSON error response."""

    def __init__(self, status, message, **extra):
        super().__init__(message)
        self.status = status
        self.payload = {"status": "error", "error": message, **extra}


class FrontDoor:
    """Asyncio HTTP front-end over one :class:`Scheduler`.

    Parameters
    ----------
    scheduler: the scheduler to expose (register sessions first).
    host/port: bind address; port 0 picks a free port (read ``.port``
        after :meth:`start`).
    poll_ms: stepping cadence for the managed scheduler thread.
    manage_scheduler: start/stop the scheduler's background stepping
        thread with the server (disable when something else drives it).
    max_body_bytes: reject larger request bodies with ``413``.
    wait_workers: thread-pool size for held-open ``?wait=1`` result
        calls (each occupies one slot while blocked).
    """

    def __init__(self, scheduler, host="127.0.0.1", port=0, *,
                 poll_ms=1.0, manage_scheduler=True,
                 max_body_bytes=64 * 1024 * 1024, wait_workers=32):
        if wait_workers < 1:
            raise ValueError("wait_workers must be >= 1")
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        self.scheduler = scheduler
        self.host = host
        self.port = int(port)
        self.poll_ms = float(poll_ms)
        self.manage_scheduler = bool(manage_scheduler)
        self.max_body_bytes = int(max_body_bytes)
        self._wait_workers = int(wait_workers)
        self._thread = None
        self._loop = None
        self._stop_event = None
        self._startup_error = None
        self._started_scheduler = False
        self._submit_pool = None
        self._wait_pool = None
        self._lock = threading.Lock()
        self._known_ids = set()        # submitted via this server
        self._delivered_ids = set()    # results already handed out
        self.counters = {"http_requests": 0, "submitted": 0, "shed": 0,
                         "unavailable": 0, "results_delivered": 0}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, timeout_s=30.0):
        """Bind and serve on a background event-loop thread.

        Returns once the socket is listening (``.port`` is then the
        real bound port) and, with ``manage_scheduler``, the scheduler
        is stepping.  Raises whatever the server startup raised.
        """
        if self._thread is not None:
            raise RuntimeError("front door already started")
        self._startup_error = None
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, args=(ready,), daemon=True,
            name="repro-serving-frontdoor")
        self._thread.start()
        if not ready.wait(timeout_s):
            raise RuntimeError("front door startup timed out")
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise self._startup_error
        return self

    def stop(self, drain=True):
        """Stop serving; returns the scheduler's drained results.

        Closes the listening socket, joins the event-loop thread and
        worker pools, and -- if this front door started the scheduler's
        stepping thread -- stops it too (``drain=True`` runs queued and
        in-flight requests to completion first).  Idempotent.
        """
        if self._thread is None:
            return []
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join()
        self._thread = None
        self._loop = None
        for pool in (self._submit_pool, self._wait_pool):
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        self._submit_pool = self._wait_pool = None
        results = []
        if self._started_scheduler:
            self._started_scheduler = False
            results = self.scheduler.stop(drain=drain)
        return results

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop(drain=exc_type is None)

    def _run(self, ready):
        try:
            asyncio.run(self._main(ready))
        except Exception as exc:                  # pragma: no cover
            self._startup_error = exc
            ready.set()

    async def _main(self, ready):
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._submit_pool = ThreadPoolExecutor(
            max_workers=8, thread_name_prefix="frontdoor-submit")
        self._wait_pool = ThreadPoolExecutor(
            max_workers=self._wait_workers,
            thread_name_prefix="frontdoor-wait")
        try:
            server = await asyncio.start_server(self._handle, self.host,
                                                self.port)
        except OSError as exc:
            self._startup_error = exc
            ready.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        if self.manage_scheduler and self.scheduler._thread is None:
            self.scheduler.start(poll_ms=self.poll_ms)
            self._started_scheduler = True
        ready.set()
        async with server:
            await self._stop_event.wait()

    # ------------------------------------------------------------------
    # Connection handling (HTTP/1.1 with keep-alive)
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer):
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                try:
                    method, target, version = (
                        request_line.decode("latin1").split())
                except ValueError:
                    await self._respond(writer, 400,
                                        {"status": "error",
                                         "error": "malformed request line"},
                                        keep_alive=False)
                    break
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                keep_alive = (headers.get(
                    "connection",
                    "keep-alive" if version == "HTTP/1.1" else "close")
                    .lower() != "close")
                try:
                    length = int(headers.get("content-length", "0"))
                except ValueError:
                    length = -1
                if length < 0 or length > self.max_body_bytes:
                    await self._respond(writer, 413,
                                        {"status": "error",
                                         "error": "bad content length"},
                                        keep_alive=False)
                    break
                body = await reader.readexactly(length) if length else b""
                with self._lock:
                    self.counters["http_requests"] += 1
                extra_headers = None
                try:
                    response = await self._route(method, target, body)
                    status, payload = response[0], response[1]
                    if len(response) > 2:
                        extra_headers = response[2]
                except _HttpError as exc:
                    status, payload = exc.status, exc.payload
                except Exception as exc:
                    status, payload = 500, {"status": "error",
                                            "error": repr(exc)}
                await self._respond(writer, status, payload, keep_alive,
                                    headers=extra_headers)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                # CancelledError: the loop is tearing down mid-close
                # (stop() with connections still open); the transport
                # is already being discarded.
                pass

    async def _respond(self, writer, status, payload, keep_alive,
                       headers=None):
        data = json.dumps(payload).encode()
        extra = "".join(f"{name}: {value}\r\n"
                        for name, value in (headers or {}).items())
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(data)}\r\n"
                f"{extra}"
                f"Connection: {'keep-alive' if keep_alive else 'close'}"
                f"\r\n\r\n")
        writer.write(head.encode("latin1") + data)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, method, target, body):
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        query = {key: values[-1]
                 for key, values in parse_qs(parts.query).items()}
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok",
                         "sessions": [s.name
                                      for s in self.scheduler.sessions]}
        if path == "/stats" and method == "GET":
            stats = self.scheduler.stats()
            with self._lock:
                stats["server"] = dict(self.counters)
            # JSON object keys must be strings; priority classes are ints.
            stats["classes"] = {str(cls): entry
                                for cls, entry in stats["classes"].items()}
            return 200, stats
        if path == "/v1/submit":
            if method != "POST":
                raise _HttpError(405, "submit is POST")
            return await self._submit(body)
        if path.startswith("/v1/result/"):
            if method != "GET":
                raise _HttpError(405, "result is GET")
            return await self._result(path[len("/v1/result/"):], query)
        raise _HttpError(404, f"no route for {method} {parts.path}")

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _parse_images(self, record, model):
        if "images" in record:
            try:
                return np.asarray(record["images"], dtype=np.float64)
            except (TypeError, ValueError):
                raise _HttpError(400, "images must be a numeric "
                                      "(C,H,W) or (n,C,H,W) nested list")
        if "num_images" in record:
            num_images = record["num_images"]
            if not isinstance(num_images, int) or num_images < 1:
                raise _HttpError(400, "num_images must be an int >= 1")
            shapes = {s.name: s.image_shape
                      for s in self.scheduler.sessions}
            if model is not None:
                shape = shapes.get(model)
                if shape is None:
                    raise _HttpError(404, f"unknown session {model!r}")
            else:
                unique = set(shapes.values())
                if len(unique) != 1:
                    raise _HttpError(400,
                                     "seed submission is ambiguous with "
                                     "mixed image shapes registered; pin "
                                     "a model")
                shape = unique.pop()
            return synth_images((num_images,) + tuple(shape),
                                record.get("seed", 0))
        raise _HttpError(400, "submit needs images or num_images")

    async def _submit(self, body):
        try:
            record = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise _HttpError(400, "body must be JSON")
        if not isinstance(record, dict):
            raise _HttpError(400, "body must be a JSON object")
        model = record.get("model")
        deadline_ms = record.get("deadline_ms")
        priority = record.get("priority")
        images = self._parse_images(record, model)
        degraded = self._degraded_response(model, priority, images)
        if degraded is not None:
            return degraded

        def call():
            return self.scheduler.submit(images, deadline_ms=deadline_ms,
                                         model=model, priority=priority)

        try:
            request_id = await self._loop.run_in_executor(
                self._submit_pool, call)
        except AdmissionError as exc:
            with self._lock:
                self.counters["shed"] += 1
            return 429, {"status": "shed", "error": str(exc),
                         "priority": exc.priority,
                         "backlog_ms": exc.backlog_ms,
                         "capacity_ms": exc.capacity_ms}
        except KeyError as exc:
            raise _HttpError(404, str(exc))
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, str(exc))
        with self._lock:
            self.counters["submitted"] += 1
            self._known_ids.add(request_id)
        return 200, {"status": "queued", "request_id": request_id}

    def _degraded_response(self, model, priority, images):
        """503 + ``Retry-After`` when every target this submission
        could land on is serving degraded (its worker fleet
        permanently lost, flushes running in-process).

        Sheddable classes only: degraded capacity is a fraction of the
        fleet's, so plain traffic is pushed back with an explicit
        retry signal instead of silently piling onto the slow path.
        Premium class-0 submissions are never turned away -- degraded
        mode exists precisely so they keep completing.  Returns
        ``None`` when the submission should proceed.
        """
        try:
            sheddable = (DEFAULT_PRIORITY if priority is None
                         else int(priority)) > 0
        except (TypeError, ValueError):
            return None           # scheduler validation will reject it
        if not sheddable:
            return None
        sessions = self.scheduler.sessions
        if model is not None:
            eligible = [s for s in sessions if s.name == model]
        else:
            eligible = [s for s in sessions
                        if images.shape[1:] == s.image_shape]
        if not eligible or not all(s.degraded for s in eligible):
            return None
        with self._lock:
            self.counters["unavailable"] += 1
        return (503,
                {"status": "unavailable",
                 "error": "every eligible session is degraded (worker "
                          "fleet lost); retry later or submit as "
                          "priority 0",
                 "retry_after_s": _RETRY_AFTER_S},
                {"Retry-After": str(_RETRY_AFTER_S)})

    async def _result(self, id_text, query):
        try:
            request_id = int(id_text)
        except ValueError:
            raise _HttpError(400, f"request id must be an int, "
                                  f"got {id_text!r}")
        include_logits = query.get("logits", "0") not in ("0", "", "false")
        wait = query.get("wait", "0") not in ("0", "", "false")
        with self._lock:
            known = request_id in self._known_ids
            delivered = request_id in self._delivered_ids
        if delivered:
            raise _HttpError(404, f"result {request_id} already "
                                  f"delivered", gone=True)
        if not known:
            raise _HttpError(404, f"unknown request id {request_id}")
        if wait:
            try:
                timeout_ms = float(query.get("timeout_ms", 30_000.0))
            except ValueError:
                raise _HttpError(400, "timeout_ms must be a number")

            def call():
                return self.scheduler.wait_result(request_id,
                                                  timeout_ms=timeout_ms)

            try:
                result = await self._loop.run_in_executor(self._wait_pool,
                                                          call)
            except TimeoutError:
                return 202, {"status": "pending",
                             "request_id": request_id}
        else:
            result = self.scheduler.pop_result(request_id)
            if result is None:
                return 202, {"status": "pending",
                             "request_id": request_id}
        with self._lock:
            self._delivered_ids.add(request_id)
            self._known_ids.discard(request_id)
            self.counters["results_delivered"] += 1
        return 200, _result_payload(result, include_logits)


# ----------------------------------------------------------------------
# Blocking client (tests, load generator, benchmark)
# ----------------------------------------------------------------------
class FrontDoorClient:
    """Minimal keep-alive HTTP client for one front door.

    Every call returns ``(status_code, payload_dict)``; transport
    errors (the server may have closed an idle keep-alive socket, or a
    recovering process briefly refused the connect) retry on a fresh
    connection under a bounded jittered-backoff
    :class:`repro.serving.RetryPolicy` -- the same contract the
    scheduler's dispatch retry budget follows.  Not thread-safe -- use
    one client per load-generator thread.
    """

    def __init__(self, host, port, timeout_s=60.0, retry=None):
        import http.client

        self._http_client = http.client
        self.host = host
        self.port = int(port)
        self.timeout_s = timeout_s
        self.retry = (retry if retry is not None
                      else RetryPolicy(attempts=3, backoff_base_s=0.05,
                                       backoff_max_s=1.0))
        self._conn = None

    def _connection(self):
        if self._conn is None:
            self._conn = self._http_client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s)
        return self._conn

    def close(self):
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()

    def request(self, method, path, body=None):
        payload = (None if body is None
                   else json.dumps(body).encode())
        headers = ({"Content-Type": "application/json"}
                   if payload is not None else {})

        def attempt():
            conn = self._connection()
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return response.status, json.loads(data.decode())

        return self.retry.call(
            attempt,
            retry_on=(ConnectionError, self._http_client.HTTPException,
                      OSError),
            seed=self.port,      # de-synchronizes clients of one server
            on_retry=lambda _attempt, _exc: self.close())

    # -- endpoint wrappers ------------------------------------------------
    def healthz(self):
        return self.request("GET", "/healthz")

    def stats(self):
        return self.request("GET", "/stats")

    def submit(self, images=None, *, num_images=None, seed=None,
               deadline_ms=None, priority=None, model=None):
        record = {}
        if images is not None:
            record["images"] = np.asarray(images).tolist()
        if num_images is not None:
            record["num_images"] = num_images
        if seed is not None:
            record["seed"] = seed
        if deadline_ms is not None:
            record["deadline_ms"] = deadline_ms
        if priority is not None:
            record["priority"] = priority
        if model is not None:
            record["model"] = model
        return self.request("POST", "/v1/submit", body=record)

    def result(self, request_id, *, wait=False, timeout_ms=None,
               logits=False):
        query = []
        if wait:
            query.append("wait=1")
        if timeout_ms is not None:
            query.append(f"timeout_ms={timeout_ms}")
        if logits:
            query.append("logits=1")
        suffix = ("?" + "&".join(query)) if query else ""
        return self.request("GET", f"/v1/result/{request_id}{suffix}")

    def submit_trace_request(self, trace_request):
        """Submit one :class:`repro.serving.trace.TraceRequest` by seed
        (the load-generator path: no pixels on the wire)."""
        return self.submit(num_images=trace_request.num_images,
                           seed=trace_request.seed,
                           deadline_ms=trace_request.deadline_ms,
                           priority=trace_request.priority,
                           model=trace_request.model)
