"""Bounded, jittered retry policy shared across the serving stack.

One :class:`RetryPolicy` describes "try again, but not forever": a
total attempt budget and an exponential backoff schedule with
deterministic jitter.  Three consumers share it so every retry loop in
the serving layer obeys the same contract:

* :class:`repro.serving.FrontDoorClient` retries transport errors
  (connection resets, closed keep-alive sockets) with backoff between
  attempts;
* the :class:`repro.serving.WorkerPool` supervisor spaces worker
  respawns with it (a crash-looping worker must not be restarted in a
  hot loop);
* the scheduler's :class:`repro.serving.RecoveryPolicy` uses the
  attempt budget as the per-request re-dispatch allowance after worker
  losses (the poison-batch quarantine bound).

Jitter is deterministic: ``delay_s(attempt, seed)`` hashes the seed and
attempt into a stable perturbation, so tests assert exact schedules and
two clients with different seeds still de-synchronize their retries
(no thundering herd after a shared failure).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget plus exponential-backoff-with-jitter schedule.

    Parameters
    ----------
    attempts: total tries, the first one included (``attempts=3`` means
        one initial try plus up to two retries).
    backoff_base_s: delay before the first retry; doubles per retry.
    backoff_max_s: cap on any single delay.
    jitter: fraction of each delay randomized (``0.25`` perturbs the
        nominal delay by up to +/-25%, deterministically from the seed).
    """

    attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    jitter: float = 0.25

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    @property
    def retries(self):
        """Retries after the initial attempt (the re-dispatch budget a
        request gets after worker losses)."""
        return self.attempts - 1

    def delay_s(self, attempt, seed=0):
        """Backoff before retry number ``attempt`` (0-based): capped
        exponential, deterministically jittered by ``(seed, attempt)``.
        """
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        nominal = min(self.backoff_base_s * (2.0 ** attempt),
                      self.backoff_max_s)
        if self.jitter == 0.0 or nominal == 0.0:
            return nominal
        unit = random.Random((int(seed) << 16) ^ int(attempt)).random()
        return nominal * (1.0 + self.jitter * (2.0 * unit - 1.0))

    def call(self, fn, *, retry_on, seed=0, sleep=None, on_retry=None):
        """Run ``fn`` under this policy.

        Retries when ``fn`` raises one of the ``retry_on`` exception
        types, sleeping ``delay_s`` between attempts (``sleep``
        overrides ``time.sleep`` for tests).  The final attempt's
        exception propagates.  ``on_retry(attempt, exc)`` observes each
        retry (the client resets its connection there).
        """
        import time as _time

        sleep = _time.sleep if sleep is None else sleep
        for attempt in range(self.attempts):
            try:
                return fn()
            except retry_on as exc:
                if on_retry is not None:
                    on_retry(attempt, exc)
                if attempt + 1 >= self.attempts:
                    raise
                delay = self.delay_s(attempt, seed=seed)
                if delay > 0:
                    sleep(delay)
        raise AssertionError("unreachable")          # pragma: no cover
