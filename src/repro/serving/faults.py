"""Deterministic fault injection for the worker fleet.

Chaos testing with real ``kill -9`` randomness is unrepeatable; this
module makes worker failure a *scripted, deterministic* event instead.
A :class:`FaultPlan` maps ``(worker index, incarnation)`` to a
:class:`FaultSpec` describing exactly what that process does wrong and
when -- die before its K-th batch, die midway through writing a reply,
hang instead of replying, delay every reply, corrupt a reply's
payload, or send a reply twice.  The
plan ships to each worker process at spawn (it is pickled with the
worker payload) and is evaluated inside ``_run_worker``'s task loop, so
the same plan against the same request stream produces the same failure
sequence every run -- the property the chaos suite and the benchmark's
``--chaos`` lane assert recovery against.

Incarnations make supervision testable: the worker slot that crashes on
incarnation 0 is respawned as incarnation 1, which by default has no
fault entry and serves healthily -- or can be scripted to fail again
(the poison-batch and pool-collapse scenarios).

This is a **test-only hook**: production pools simply pass no plan, and
the injection branch in the worker loop reduces to a ``None`` check per
task.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["FaultSpec", "FaultPlan"]


@dataclass(frozen=True)
class FaultSpec:
    """What one worker incarnation does wrong, and when.

    Batch counts are 1-based over the tasks the incarnation *receives*
    (heartbeat wakeups do not count).  All fields compose except
    ``kill_at_batch`` / ``hang_at_batch``, which end the loop.

    Parameters
    ----------
    kill_at_batch: die (``os._exit``) on receiving the K-th task,
        before executing it -- the batch is stranded in flight, the
        crash-recovery path.
    hang_at_batch: on the K-th task, stop responding forever (no reply,
        no heartbeat, process stays alive) -- the hung-worker path that
        only a dispatch deadline can catch.
    delay_reply_ms: sleep this long before sending every result reply
        (slow worker; exercises deadline margins without killing).
    corrupt_at_batch: truncate the K-th reply's logits rows -- a
        malformed payload the scheduler must reject and retry, not
        deliver.
    duplicate_at_batch: send the K-th reply twice -- the at-most-once
        delivery check in ``Scheduler._finish_reply``.
    torn_reply_at_batch: die (``os._exit``) midway through *writing*
        the K-th reply frame -- the abrupt-death-mid-reply case (a
        real ``kill -9`` or OOM lands wherever it lands).  The parent
        must discard the torn frame with the dead incarnation and
        recover the batch; crucially, the rest of the fleet (and the
        slot's respawn) must keep replying -- the scenario that
        deadlocked a shared reply queue's write lock forever.
    """

    kill_at_batch: int = None
    hang_at_batch: int = None
    delay_reply_ms: float = 0.0
    corrupt_at_batch: int = None
    duplicate_at_batch: int = None
    torn_reply_at_batch: int = None

    def __post_init__(self):
        for name in ("kill_at_batch", "hang_at_batch",
                     "corrupt_at_batch", "duplicate_at_batch",
                     "torn_reply_at_batch"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} is 1-based, must be >= 1")
        if self.delay_reply_ms < 0:
            raise ValueError("delay_reply_ms must be >= 0")

    # -- hooks evaluated inside the worker loop ------------------------
    def should_kill(self, batch_count):
        return (self.kill_at_batch is not None
                and batch_count >= self.kill_at_batch)

    def should_hang(self, batch_count):
        return (self.hang_at_batch is not None
                and batch_count >= self.hang_at_batch)

    def should_corrupt(self, batch_count):
        return self.corrupt_at_batch == batch_count

    def should_duplicate(self, batch_count):
        return self.duplicate_at_batch == batch_count

    def should_tear(self, batch_count):
        return self.torn_reply_at_batch == batch_count

    def apply_delay(self, sleep=time.sleep):
        if self.delay_reply_ms > 0:
            sleep(self.delay_reply_ms / 1e3)


class FaultPlan:
    """Scripted faults for a pool: ``{worker: spec}`` or
    ``{(worker, incarnation): spec}``.

    A bare ``int`` key means incarnation 0 (the process started at pool
    construction); a ``(worker, incarnation)`` key targets the N-th
    respawn of that slot.  Workers and incarnations without an entry
    behave normally.
    """

    def __init__(self, faults=None):
        self._faults = {}
        for key, spec in dict(faults or {}).items():
            self.add(key, spec)

    def add(self, key, spec):
        if not isinstance(spec, FaultSpec):
            raise TypeError("fault plan values must be FaultSpec")
        if isinstance(key, tuple):
            worker, incarnation = key
        else:
            worker, incarnation = key, 0
        if worker < 0 or incarnation < 0:
            raise ValueError("worker and incarnation must be >= 0")
        self._faults[(int(worker), int(incarnation))] = spec
        return self

    def for_worker(self, worker, incarnation=0):
        """The :class:`FaultSpec` this incarnation runs under, or
        ``None`` (healthy)."""
        return self._faults.get((int(worker), int(incarnation)))

    def __len__(self):
        return len(self._faults)

    def __repr__(self):
        entries = ", ".join(f"w{w}.i{i}" for w, i in sorted(self._faults))
        return f"FaultPlan({entries})"
