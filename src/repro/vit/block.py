"""Transformer encoder block: pre-norm MSA + FFN (paper Eq. 1)."""

from __future__ import annotations

from repro import nn
from repro.nn.tensor import Tensor
from repro.vit.attention import MultiHeadSelfAttention

__all__ = ["FeedForward", "TransformerBlock"]


class FeedForward(nn.Module):
    """The FFN/MLP module: Linear -> GELU -> Linear."""

    def __init__(self, embed_dim, hidden_dim, drop=0.0, activation=None,
                 rng=None):
        super().__init__()
        self.fc1 = nn.Linear(embed_dim, hidden_dim, rng=rng)
        self.act = activation if activation is not None else nn.GELU()
        self.fc2 = nn.Linear(hidden_dim, embed_dim, rng=rng)
        self.drop = nn.Dropout(drop, rng=rng)

    def forward(self, x):
        x = self.fc1(x)
        x = self.act(x)
        x = self.drop(x)
        x = self.fc2(x)
        return self.drop(x)


class TransformerBlock(nn.Module):
    """One pre-norm encoder block:

    ``x' = x + MSA(LN(x))`` then ``y = x' + FFN(LN(x'))``.
    """

    def __init__(self, embed_dim, num_heads, mlp_ratio=4.0, drop=0.0,
                 rng=None):
        super().__init__()
        self.norm1 = nn.LayerNorm(embed_dim)
        self.attn = MultiHeadSelfAttention(embed_dim, num_heads,
                                           proj_drop=drop, rng=rng)
        self.norm2 = nn.LayerNorm(embed_dim)
        self.mlp = FeedForward(embed_dim, int(embed_dim * mlp_ratio),
                               drop=drop, rng=rng)

    def forward(self, x, key_mask=None):
        x = Tensor.ensure(x)
        x = x + self.attn(self.norm1(x), key_mask=key_mask)
        x = x + self.mlp(self.norm2(x))
        return x
