"""Vision Transformer substrate: models, configs, complexity, CKA."""

from repro.vit.analysis import (attention_rollout, head_attention_grid,
                                render_keep_mask, render_token_grid)
from repro.vit.attention import (MultiHeadSelfAttention, key_padding_mask,
                                 pad_token_sequences,
                                 suppress_attention_recording)
from repro.vit.block import FeedForward, TransformerBlock
from repro.vit.cka import cls_token_cka_profile, linear_cka
from repro.vit.complexity import (LayerCost, StagePlan, block_layer_costs,
                                  block_macs, model_gmacs, model_macs,
                                  pruned_model_gmacs, pruned_model_macs,
                                  token_selector_macs, tokens_after_pruning)
from repro.vit.config import (DEIT_BASE, DEIT_S_288, DEIT_SMALL, DEIT_T_160,
                              DEIT_TINY, LVVIT_MEDIUM, LVVIT_SMALL,
                              PAPER_BACKBONES, ViTConfig, small_config)
from repro.vit.model import VisionTransformer
from repro.vit.patch_embed import PatchEmbedding

__all__ = [
    "MultiHeadSelfAttention", "key_padding_mask", "pad_token_sequences",
    "suppress_attention_recording",
    "FeedForward", "TransformerBlock",
    "VisionTransformer", "PatchEmbedding",
    "linear_cka", "cls_token_cka_profile",
    "LayerCost", "StagePlan", "block_layer_costs", "block_macs",
    "model_macs", "model_gmacs", "pruned_model_macs", "pruned_model_gmacs",
    "token_selector_macs", "tokens_after_pruning",
    "ViTConfig", "small_config", "PAPER_BACKBONES",
    "DEIT_TINY", "DEIT_SMALL", "DEIT_BASE", "LVVIT_SMALL", "LVVIT_MEDIUM",
    "DEIT_T_160", "DEIT_S_288",
    "attention_rollout", "head_attention_grid",
    "render_token_grid", "render_keep_mask",
]
