"""Attention analysis and text-mode visualization helpers.

Supports the paper's qualitative figures without a plotting stack:
attention rollout (Abnar & Zuidema) for information flow, per-head
CLS-attention maps (Fig. 5), and ASCII rendering of token-grid masks
(which tokens HeatViT kept -- the Fig. 1 strips).
"""

from __future__ import annotations

import numpy as np

from repro import nn

__all__ = ["attention_rollout", "head_attention_grid",
           "render_token_grid", "render_keep_mask"]


def attention_rollout(model, images, head_fusion="mean"):
    """Attention rollout: cumulative CLS->patch information flow.

    Multiplies (residual-corrected) attention matrices across blocks;
    returns the CLS row as ``(B, N_patches)``.
    """
    with nn.no_grad():
        model(images)
    rollout = None
    for block in model.blocks:
        attn = block.attn.last_attention          # (B, h, T, T)
        if head_fusion == "mean":
            fused = attn.mean(axis=1)
        elif head_fusion == "max":
            fused = attn.max(axis=1)
        else:
            raise ValueError(f"unknown head_fusion {head_fusion!r}")
        tokens = fused.shape[-1]
        fused = 0.5 * fused + 0.5 * np.eye(tokens)[None]
        fused = fused / fused.sum(axis=-1, keepdims=True)
        rollout = fused if rollout is None else fused @ rollout
    return rollout[:, 0, 1:]


def head_attention_grid(model, images, block_index=-1):
    """Per-head CLS attention reshaped to the patch grid (Fig. 5).

    Returns ``(B, h, gh, gw)``.
    """
    with nn.no_grad():
        model(images)
    attn = model.blocks[block_index].attn.cls_attention()    # (B, h, T)
    patches = attn[:, :, 1:]
    batch, heads, count = patches.shape
    side = int(round(np.sqrt(count)))
    if side * side != count:
        raise ValueError(f"{count} patch tokens do not form a square grid")
    return patches.reshape(batch, heads, side, side)


_SHADES = " .:-=+*#%@"


def render_token_grid(values, side=None):
    """Render a per-token scalar map as an ASCII shade grid."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if side is None:
        side = int(round(np.sqrt(values.size)))
    if side * side != values.size:
        raise ValueError("values do not form a square grid")
    lo, hi = values.min(), values.max()
    span = hi - lo if hi > lo else 1.0
    normed = (values - lo) / span
    indices = np.minimum((normed * (len(_SHADES) - 1)).astype(int),
                         len(_SHADES) - 1)
    rows = []
    for r in range(side):
        rows.append("".join(_SHADES[i]
                            for i in indices[r * side:(r + 1) * side]))
    return "\n".join(rows)


def render_keep_mask(decision, side=None, keep_char="#", prune_char="."):
    """Render a {0,1} keep decision as an ASCII grid (Fig. 1 strips)."""
    decision = np.asarray(decision).ravel()
    if side is None:
        side = int(round(np.sqrt(decision.size)))
    if side * side != decision.size:
        raise ValueError("decision does not form a square grid")
    rows = []
    for r in range(side):
        row = decision[r * side:(r + 1) * side]
        rows.append("".join(keep_char if v > 0.5 else prune_char
                            for v in row))
    return "\n".join(rows)
