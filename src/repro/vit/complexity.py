"""Analytical computational-complexity model of ViTs (paper Table II).

The per-block MAC count is::

    4*N*Dch*(h*Dattn) + 2*N^2*(h*Dattn) + 8*N*Dch*Dfc

which for the standard ``h*Dattn == Dch == Dfc`` case reduces to
``12*N*D^2 + 2*N^2*D``.  This module reproduces Table II row by row and
extends it to whole models with per-stage token counts, which is how the
GMAC figures for every pruned HeatViT variant in Fig. 2 / Table VI are
derived.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "LayerCost",
    "block_layer_costs",
    "block_macs",
    "model_macs",
    "model_gmacs",
    "tokens_after_pruning",
    "pruned_model_macs",
    "pruned_model_gmacs",
    "token_selector_macs",
    "StagePlan",
]


@dataclass(frozen=True)
class LayerCost:
    """One row of Table II."""

    index: str
    module: str
    computation: str
    input_size: str
    output_size: str
    macs: int


def block_layer_costs(num_tokens, embed_dim, num_heads, mlp_hidden_dim):
    """Return the six rows of Table II for one transformer block.

    ``num_tokens`` is ``N``, ``embed_dim`` is ``Dch``, ``num_heads`` is
    ``h``; the per-head dim ``Dattn`` is derived, and ``mlp_hidden_dim``
    plays the role of ``4*Dfc``.
    """
    n = int(num_tokens)
    d_ch = int(embed_dim)
    h = int(num_heads)
    d_attn = d_ch // h
    hidden = int(mlp_hidden_dim)
    rows = [
        LayerCost("1", "MSA", "Linear Transformation",
                  f"{n} x {d_ch}", f"{n} x {h * d_attn}",
                  3 * n * d_ch * h * d_attn),
        LayerCost("2", "MSA", "Q x K^T",
                  f"{n} x {h * d_attn}", f"{n} x {n}",
                  n * n * h * d_attn),
        LayerCost("3", "MSA", "QK^T x V",
                  f"{n} x {n}", f"{n} x {h * d_attn}",
                  n * n * h * d_attn),
        LayerCost("4", "MSA", "Projection",
                  f"{n} x {h * d_attn}", f"{n} x {d_ch}",
                  n * h * d_attn * d_ch),
        LayerCost("5", "FFN", "FC Layer",
                  f"{n} x {d_ch}", f"{n} x {hidden}",
                  n * d_ch * hidden),
        LayerCost("6", "FFN", "FC Layer",
                  f"{n} x {hidden}", f"{n} x {d_ch}",
                  n * hidden * d_ch),
    ]
    return rows


def block_macs(num_tokens, embed_dim, num_heads, mlp_hidden_dim):
    """Total MACs of one encoder block (the Table II 'Total MACs' line)."""
    return sum(row.macs for row in block_layer_costs(
        num_tokens, embed_dim, num_heads, mlp_hidden_dim))


def _patch_embed_macs(config):
    patch_dim = config.in_channels * config.patch_size ** 2
    return config.num_patches * patch_dim * config.embed_dim


def _head_macs(config):
    return config.embed_dim * config.num_classes


def model_macs(config, include_embedding=True):
    """MACs for the unpruned backbone described by ``config``."""
    total = config.depth * block_macs(
        config.num_tokens, config.embed_dim, config.num_heads,
        config.mlp_hidden_dim)
    if include_embedding:
        total += _patch_embed_macs(config) + _head_macs(config)
    return total


def model_gmacs(config, include_embedding=True):
    return model_macs(config, include_embedding) / 1e9


def tokens_after_pruning(num_patches, keep_ratio, with_package=True):
    """Token count fed to blocks after a selector with ``keep_ratio``.

    ``ceil(keep_ratio * num_patches)`` informative patch tokens, plus the
    package token (Eq. 10) and the class token which is never pruned.
    """
    if not 0.0 < keep_ratio <= 1.0:
        raise ValueError(f"keep_ratio must be in (0, 1]: {keep_ratio}")
    kept = math.ceil(keep_ratio * num_patches)
    extra = 1  # class token
    if with_package and keep_ratio < 1.0:
        extra += 1
    return kept + extra


@dataclass(frozen=True)
class StagePlan:
    """Placement of token selectors: selector ``i`` sits before block
    ``boundaries[i]`` and applies cumulative keep ratio ``keep_ratios[i]``.

    The paper's evaluated configurations use three selectors placed at
    the canonical stage boundaries (depth/4, depth/2, 3*depth/4), e.g.
    blocks 3/6/9 for the 12-deep DeiT family -- consistent with the
    block-to-stage consolidation of Sec. VI and Fig. 1's three stages.
    """

    boundaries: tuple
    keep_ratios: tuple

    def __post_init__(self):
        if len(self.boundaries) != len(self.keep_ratios):
            raise ValueError("boundaries and keep_ratios length mismatch")
        if any(b2 <= b1 for b1, b2 in zip(self.boundaries,
                                          self.boundaries[1:])):
            raise ValueError("boundaries must be strictly increasing")
        for ratio in self.keep_ratios:
            if not 0.0 < ratio <= 1.0:
                raise ValueError(f"keep ratio out of range: {ratio}")

    @staticmethod
    def canonical(depth, keep_ratios):
        """Three-stage plan at depth/4, depth/2, 3*depth/4."""
        if len(keep_ratios) != 3:
            raise ValueError("canonical plan expects 3 keep ratios")
        boundaries = (depth // 4, depth // 2, 3 * depth // 4)
        return StagePlan(boundaries=boundaries,
                         keep_ratios=tuple(keep_ratios))

    def tokens_per_block(self, depth, num_patches):
        """Token count entering each of the ``depth`` blocks."""
        counts = []
        current = num_patches + 1
        next_selector = 0
        for block_index in range(depth):
            while (next_selector < len(self.boundaries)
                   and block_index == self.boundaries[next_selector]):
                current = tokens_after_pruning(
                    num_patches, self.keep_ratios[next_selector])
                next_selector += 1
            counts.append(current)
        return counts


def token_selector_macs(num_tokens, embed_dim, num_heads):
    """MACs for one token selector forward pass (Fig. 7 right).

    Per head (dim ``d = D/h``): the local/global feature MLP
    ``Linear(d, d/2)``, then the classifier MLP over the concatenated
    feature ``Linear(d, d/2) -> Linear(d/2, d/4) -> Linear(d/4, 2)``.
    The attention-based branch adds ``MLP(h -> h)`` on head statistics.
    """
    n = int(num_tokens)
    d = embed_dim // num_heads
    per_head = (n * d * (d // 2)                  # local/global feature MLP
                + n * (d * (d // 2)               # classifier layer 1
                       + (d // 2) * (d // 4)      # classifier layer 2
                       + (d // 4) * 2))           # classifier layer 3
    attention_branch = n * num_heads * num_heads
    return num_heads * per_head + attention_branch


def pruned_model_macs(config, plan, include_embedding=True,
                      include_selectors=True):
    """MACs of a HeatViT model under a :class:`StagePlan`."""
    counts = plan.tokens_per_block(config.depth, config.num_patches)
    total = sum(
        block_macs(n, config.embed_dim, config.num_heads,
                   config.mlp_hidden_dim)
        for n in counts)
    if include_selectors:
        # Each selector sees the token count entering its block.
        for boundary in plan.boundaries:
            incoming = counts[boundary - 1] if boundary > 0 else (
                config.num_patches + 1)
            total += token_selector_macs(incoming, config.embed_dim,
                                         config.num_heads)
    if include_embedding:
        total += _patch_embed_macs(config) + _head_macs(config)
    return total


def pruned_model_gmacs(config, plan, **kwargs):
    return pruned_model_macs(config, plan, **kwargs) / 1e9
