"""Centered Kernel Alignment (CKA) similarity (Kornblith et al. 2019).

The paper's Fig. 6 uses linear CKA between the final CLS token and the
token representations after every transformer block to show that front
blocks encode tokens poorly -- the motivation for pruning later blocks
first and for the token packager.
"""

from __future__ import annotations

import numpy as np

__all__ = ["linear_cka", "cls_token_cka_profile"]


def _center_gram(gram):
    n = gram.shape[0]
    unit = np.ones((n, n)) / n
    return gram - unit @ gram - gram @ unit + unit @ gram @ unit


def linear_cka(features_x, features_y):
    """Linear CKA between two feature matrices ``(n_samples, dim)``.

    Returns a value in [0, 1]; 1 means the representations are identical
    up to an orthogonal transform and isotropic scaling.
    """
    x = np.asarray(features_x, dtype=np.float64)
    y = np.asarray(features_y, dtype=np.float64)
    if x.ndim != 2 or y.ndim != 2:
        raise ValueError("features must be 2-D (samples, dim)")
    if x.shape[0] != y.shape[0]:
        raise ValueError("sample counts differ")
    gram_x = _center_gram(x @ x.T)
    gram_y = _center_gram(y @ y.T)
    hsic = (gram_x * gram_y).sum()
    norm_x = np.sqrt((gram_x * gram_x).sum())
    norm_y = np.sqrt((gram_y * gram_y).sum())
    if norm_x == 0.0 or norm_y == 0.0:
        return 0.0
    return float(hsic / (norm_x * norm_y))


def cls_token_cka_profile(model, images, block_indices=None):
    """CKA between each block's patch tokens and the final CLS token.

    Reproduces the Fig. 6 measurement: for every transformer block, the
    mean patch-token representation is compared (via linear CKA over the
    batch) with the final class token.  Returns ``{block_index: cka}``.
    """
    from repro import nn

    with nn.no_grad():
        logits, hidden = model.forward(images, return_hidden=True)
    del logits
    final_cls = hidden[-1].data[:, 0, :]               # (B, D)
    if block_indices is None:
        block_indices = range(len(hidden))
    profile = {}
    for index in block_indices:
        patch_mean = hidden[index].data[:, 1:, :].mean(axis=1)
        profile[index] = linear_cka(patch_mean, final_cls)
    return profile
