"""Multi-head self-attention (paper Eq. 2) with CLS-attention taps.

The attention maps of the class token per head are recorded (detached)
because HeatViT's analysis (Fig. 5) and the EViT-style baseline both need
them.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor

__all__ = ["MultiHeadSelfAttention", "key_padding_mask",
           "pad_token_sequences", "suppress_attention_recording"]


def key_padding_mask(lengths, padded_length, dtype=np.float64):
    """Build a ``(B, T)`` {0,1} key mask from per-image real lengths.

    Position ``t`` of row ``b`` is 1 when ``t < lengths[b]``.  Feeding
    this as ``key_mask`` makes padded positions invisible as attention
    keys: their scores receive a ``-1e9`` bias, whose exponent underflows
    to exactly ``0.0`` in the softmax, so real-token outputs are
    *unchanged* by the padding (the invariant the batched inference
    engine relies on; see ``tests/vit/test_masked_invariance.py``).

    ``dtype`` sets the mask's float dtype so a float32 fast-path batch
    is not silently upcast by a float64 mask.
    """
    lengths = np.asarray(lengths)
    positions = np.arange(int(padded_length))
    return (positions[None, :] < lengths[:, None]).astype(dtype)


def pad_token_sequences(sequences, padded_length=None, pad_value=0.0,
                        dtype=None):
    """Stack variable-length token sequences with trailing padding.

    ``sequences`` is an iterable of ``(T_i, D)`` arrays.  Returns
    ``(stacked, mask)`` where ``stacked`` is ``(B, T_max, D)`` and
    ``mask`` is the matching :func:`key_padding_mask` in the same float
    dtype.  Zero padding is safe through LayerNorm (normalizes to zeros)
    and, combined with the mask, through attention.

    ``dtype=None`` keeps the sequences' common float dtype (float64
    inputs behave exactly as before; float32 fast-path sequences are no
    longer silently upcast by the padding).  Pass an explicit dtype to
    force one.
    """
    sequences = [np.asarray(s) for s in sequences]
    if not sequences:
        raise ValueError("no sequences to pad")
    if dtype is None:
        dtype = np.result_type(*sequences)
        if not np.issubdtype(dtype, np.floating):
            dtype = np.float64
    lengths = np.array([s.shape[0] for s in sequences])
    if padded_length is None:
        padded_length = int(lengths.max())
    if np.any(lengths > padded_length):
        raise ValueError("padded_length shorter than a sequence")
    dim = sequences[0].shape[-1]
    stacked = np.full((len(sequences), int(padded_length), dim), pad_value,
                      dtype=dtype)
    for row, seq in enumerate(sequences):
        stacked[row, :seq.shape[0]] = seq
    return stacked, key_padding_mask(lengths, padded_length, dtype=dtype)


class suppress_attention_recording:
    """Context manager: pause attention-map recording on MSA modules.

    The deployed serving paths (the bucketed engine and
    ``HeatViT.forward_pruned``) have no use for the per-block
    ``(B, h, N, N)`` attention copies -- recording only feeds the masked
    training path's ranking signal and the Fig. 5 analysis -- so they
    wrap execution in this context.  Previous flags (and any previously
    recorded maps) are restored on exit, keeping analysis code paths
    untouched.
    """

    def __init__(self, attention_modules):
        self.modules = list(attention_modules)
        self._saved = None

    def __enter__(self):
        self._saved = [m.record_attention for m in self.modules]
        for module in self.modules:
            module.record_attention = False
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        for module, flag in zip(self.modules, self._saved):
            module.record_attention = flag
        return False


class MultiHeadSelfAttention(nn.Module):
    """MSA module: qkv projection, scaled dot-product per head, projection.

    Parameters
    ----------
    embed_dim: token channel size ``Dch``.
    num_heads: number of attention heads ``h``.
    record_attention: when True, ``self.last_attention`` holds the most
        recent (detached) attention probabilities of shape
        ``(B, h, N, N)`` after each forward pass.
    """

    def __init__(self, embed_dim, num_heads, attn_drop=0.0, proj_drop=0.0,
                 record_attention=True, rng=None):
        super().__init__()
        if embed_dim % num_heads != 0:
            raise ValueError("embed_dim must divide num_heads")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.scale = self.head_dim ** -0.5
        self.qkv = nn.Linear(embed_dim, 3 * embed_dim, rng=rng)
        self.proj = nn.Linear(embed_dim, embed_dim, rng=rng)
        # Parameter-free module (state_dict unchanged) so deployment
        # surgery (quantize_model) can swap in ApproxSoftmax.
        self.softmax = nn.Softmax(axis=-1)
        self.attn_drop = nn.Dropout(attn_drop, rng=rng)
        self.proj_drop = nn.Dropout(proj_drop, rng=rng)
        self.record_attention = record_attention
        self.last_attention = None

    def forward(self, x, key_mask=None):
        """Apply self-attention.

        ``key_mask`` is an optional ``(B, N)`` {0,1} array/Tensor; tokens
        with mask 0 are excluded as attention *keys* (they receive a large
        negative score before the softmax).  This is how pruned-but-not-
        yet-removed tokens are neutralized during differentiable training,
        exactly as in DynamicViT's training recipe.
        """
        x = Tensor.ensure(x)
        batch, tokens, dim = x.shape
        qkv = self.qkv(x)                                  # (B, N, 3D)
        qkv = qkv.reshape(batch, tokens, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)                 # (3, B, h, N, d)
        q, k, v = qkv[0], qkv[1], qkv[2]

        scores = (q @ k.swapaxes(-1, -2)) * self.scale     # (B, h, N, N)
        if key_mask is not None:
            mask_data = (key_mask.data if isinstance(key_mask, Tensor)
                         else np.asarray(key_mask, dtype=np.float64))
            bias = (1.0 - mask_data)[:, None, None, :] * (-1e9)
            scores = scores + Tensor(bias)
        attn = self.softmax(scores)
        if self.record_attention:
            self.last_attention = attn.data.copy()
        attn = self.attn_drop(attn)

        out = attn @ v                                     # (B, h, N, d)
        out = out.transpose(0, 2, 1, 3).reshape(batch, tokens, dim)
        return self.proj_drop(self.proj(out))

    def cls_attention(self):
        """CLS-token attention toward all tokens: shape ``(B, h, N)``.

        Used for Fig. 5 (per-head information regions) and by the
        attention-top-k (EViT-style) pruning baseline.
        """
        if self.last_attention is None:
            raise RuntimeError("no forward pass recorded yet")
        return self.last_attention[:, :, 0, :]
