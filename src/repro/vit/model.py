"""The full Vision Transformer backbone (paper Fig. 3)."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor
from repro.vit.block import TransformerBlock
from repro.vit.patch_embed import PatchEmbedding

__all__ = ["VisionTransformer"]


class VisionTransformer(nn.Module):
    """Plain ViT: patch embedding, class token, position embeddings,
    a stack of encoder blocks, and an MLP classification head.

    ``forward`` optionally returns per-block hidden states, which the
    CKA analysis (Fig. 6) and the token-redundancy study consume.
    """

    def __init__(self, config, rng=None):
        super().__init__()
        rng = np.random.default_rng() if rng is None else rng
        self.config = config
        self.patch_embed = PatchEmbedding(config, rng=rng)
        self.cls_token = nn.Parameter(
            nn.trunc_normal((1, 1, config.embed_dim), std=0.02, rng=rng))
        self.pos_embed = nn.Parameter(
            nn.trunc_normal((1, config.num_tokens, config.embed_dim),
                            std=0.02, rng=rng))
        self.pos_drop = nn.Dropout(config.drop_rate, rng=rng)
        self.blocks = nn.ModuleList([
            TransformerBlock(config.embed_dim, config.num_heads,
                             mlp_ratio=config.mlp_ratio,
                             drop=config.drop_rate, rng=rng)
            for _ in range(config.depth)
        ])
        self.norm = nn.LayerNorm(config.embed_dim)
        self.head = nn.Linear(config.embed_dim, config.num_classes, rng=rng)

    # ------------------------------------------------------------------
    def embed(self, images):
        """Patch-embed ``images`` and prepend the class token."""
        tokens = self.patch_embed(images)                  # (B, N, D)
        batch = tokens.shape[0]
        cls = self.cls_token + Tensor(
            np.zeros((batch, 1, self.config.embed_dim)))
        x = Tensor.concatenate([cls, tokens], axis=1)
        x = x + self.pos_embed
        return self.pos_drop(x)

    def forward(self, images, return_hidden=False):
        x = self.embed(images)
        hidden = []
        for block in self.blocks:
            x = block(x)
            if return_hidden:
                hidden.append(x)
        logits = self.classify(x)
        if return_hidden:
            return logits, hidden
        return logits

    def classify(self, x):
        """Final LayerNorm + classification head on a token sequence.

        ``x`` is ``(B, T, D)``; only the class token (position 0) feeds
        the head, so trailing padding tokens are harmless.  Shared by
        the dense forward, both HeatViT execution paths, and the
        batched inference engine.
        """
        x = self.norm(Tensor.ensure(x))
        return self.head(x[:, 0, :])

    # ------------------------------------------------------------------
    def predict(self, images):
        """Inference helper returning integer class predictions."""
        with nn.no_grad():
            logits = self.forward(images)
        return logits.data.argmax(axis=-1)

    def accuracy(self, images, labels, batch_size=64):
        """Top-1 accuracy over a dataset, evaluated batch-wise."""
        labels = np.asarray(labels)
        correct = 0
        for start in range(0, len(labels), batch_size):
            stop = start + batch_size
            preds = self.predict(images[start:stop])
            correct += int((preds == labels[start:stop]).sum())
        return correct / len(labels)
