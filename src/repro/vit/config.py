"""ViT architecture configurations.

Full-size configurations match the paper's Table V exactly (heads,
embedding dimension, depth) and drive the analytical complexity and
hardware models.  The ``tiny_*`` configurations are scaled-down trainable
variants used for end-to-end accuracy experiments on the synthetic
dataset (the paper's ImageNet runs are out of reach without GPUs).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "ViTConfig",
    "DEIT_TINY", "DEIT_SMALL", "DEIT_BASE",
    "LVVIT_SMALL", "LVVIT_MEDIUM",
    "DEIT_T_160", "DEIT_S_288",
    "PAPER_BACKBONES", "small_config",
]


@dataclass(frozen=True)
class ViTConfig:
    """Static description of a ViT backbone.

    Attributes mirror the symbols of the paper's Table II:
    ``embed_dim`` is ``Dch``, ``num_heads`` is ``h``, the per-head
    dimension ``Dattn`` is ``embed_dim // num_heads``, and the FFN hidden
    dimension is ``mlp_ratio * embed_dim`` (``4 * Dfc`` with the paper's
    notation when ``mlp_ratio == 4``).
    """

    name: str
    image_size: int = 224
    patch_size: int = 16
    in_channels: int = 3
    embed_dim: int = 192
    depth: int = 12
    num_heads: int = 3
    mlp_ratio: float = 4.0
    num_classes: int = 1000
    drop_rate: float = 0.0
    baseline_epochs: int = 300
    heatvit_epochs: int = 270

    def __post_init__(self):
        if self.embed_dim % self.num_heads != 0:
            raise ValueError(
                f"embed_dim {self.embed_dim} not divisible by "
                f"num_heads {self.num_heads}")
        if self.image_size % self.patch_size != 0:
            raise ValueError(
                f"image_size {self.image_size} not divisible by "
                f"patch_size {self.patch_size}")

    @property
    def head_dim(self):
        """Per-head sub-channel size (``Dattn`` in Table II)."""
        return self.embed_dim // self.num_heads

    @property
    def num_patches(self):
        side = self.image_size // self.patch_size
        return side * side

    @property
    def num_tokens(self):
        """Patches plus the class token (``N`` in Table II includes CLS)."""
        return self.num_patches + 1

    @property
    def mlp_hidden_dim(self):
        return int(self.embed_dim * self.mlp_ratio)

    def scaled(self, **overrides):
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)


DEIT_TINY = ViTConfig(name="DeiT-T", embed_dim=192, depth=12, num_heads=3)
DEIT_SMALL = ViTConfig(name="DeiT-S", embed_dim=384, depth=12, num_heads=6)
DEIT_BASE = ViTConfig(name="DeiT-B", embed_dim=768, depth=12, num_heads=12)
LVVIT_SMALL = ViTConfig(name="LV-ViT-S", embed_dim=384, depth=16,
                        num_heads=6, baseline_epochs=400, heatvit_epochs=390)
LVVIT_MEDIUM = ViTConfig(name="LV-ViT-M", embed_dim=512, depth=20,
                         num_heads=8, baseline_epochs=400, heatvit_epochs=390)

# Scaled DeiT baselines trained by the authors for Fig. 2's model-scaling
# comparison ("we train more DeiT models with the embedding dimension of
# 160/256/288/320").
DEIT_T_160 = ViTConfig(name="DeiT-T-160", embed_dim=160, depth=12,
                       num_heads=4)
DEIT_S_288 = ViTConfig(name="DeiT-S-288", embed_dim=288, depth=12,
                       num_heads=6)

PAPER_BACKBONES = {
    cfg.name: cfg
    for cfg in (DEIT_TINY, DEIT_SMALL, DEIT_BASE, LVVIT_SMALL, LVVIT_MEDIUM)
}


def small_config(name="tiny", image_size=32, patch_size=8, embed_dim=48,
                 depth=6, num_heads=3, num_classes=8, **overrides):
    """A laptop-scale trainable configuration for accuracy experiments."""
    return ViTConfig(name=f"small-{name}", image_size=image_size,
                     patch_size=patch_size, embed_dim=embed_dim, depth=depth,
                     num_heads=num_heads, num_classes=num_classes,
                     **overrides)
