"""Patch embedding: flatten image patches and project to the token space."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor

__all__ = ["PatchEmbedding"]


class PatchEmbedding(nn.Module):
    """Reshape ``(B, C, H, W)`` into ``N = HW/P^2`` tokens of dim ``D``.

    Implemented as flatten + Linear (a GEMM) rather than a strided
    convolution, matching how the accelerator executes it.
    """

    def __init__(self, config, rng=None):
        super().__init__()
        self.config = config
        self.patch_size = config.patch_size
        patch_dim = config.in_channels * config.patch_size ** 2
        self.projection = nn.Linear(patch_dim, config.embed_dim, rng=rng)

    def forward(self, images):
        images = Tensor.ensure(images)
        batch, channels, height, width = images.shape
        p = self.patch_size
        if height % p or width % p:
            raise ValueError(
                f"image size ({height}, {width}) not divisible by patch "
                f"size {p}")
        grid_h, grid_w = height // p, width // p
        # (B, C, gh, p, gw, p) -> (B, gh, gw, C, p, p) -> (B, N, C*p*p)
        x = images.reshape(batch, channels, grid_h, p, grid_w, p)
        x = x.transpose(0, 2, 4, 1, 3, 5)
        x = x.reshape(batch, grid_h * grid_w, channels * p * p)
        return self.projection(x)

    @staticmethod
    def patch_grid(config):
        side = config.image_size // config.patch_size
        return side, side
