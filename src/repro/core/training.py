"""Training loops and the latency-aware multi-stage strategy (Section VI).

Three layers:

* :func:`train_backbone` -- plain supervised training of a ViT backbone
  (the "train-from-scratch" baseline of Table V).
* :func:`train_heatvit` -- fine-tuning a HeatViT model with the combined
  objective of Eq. 21: cross-entropy + distillation + latency-sparsity.
* :class:`BlockToStageTrainer` -- Algorithm 1: progressively insert token
  selectors from the last block backward, lower each block's keep ratio
  until the accuracy-drop budget is hit, then consolidate consecutive
  selectors with similar ratios into stages and retrain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.core.heatvit import HeatViT, PruningRecord
from repro.core.latency import LatencySparsityTable, latency_sparsity_loss

__all__ = ["TrainConfig", "EpochStats", "iterate_minibatches",
           "train_backbone", "train_heatvit",
           "BlockToStageTrainer", "InsertionTrace", "TrainingReport"]


@dataclass
class TrainConfig:
    """Hyper-parameters for the fine-tuning loops.

    ``lambda_distill`` and ``lambda_ratio`` default to the paper's values
    (0.5 and 2, Eq. 21).
    """

    epochs: int = 3
    batch_size: int = 32
    lr: float = 5e-4
    weight_decay: float = 0.05
    warmup_fraction: float = 0.1
    lambda_distill: float = 0.5
    lambda_ratio: float = 2.0
    # Weight of the score-bimodality regularizer (see
    # repro.core.latency.confidence_loss): aligns the Gumbel-sampled
    # training decisions with the thresholded deployment rule (Fig. 9).
    lambda_confidence: float = 1.0
    grad_clip: float = 5.0
    seed: int = 0
    # Gumbel-Softmax temperature annealing for the token selectors;
    # lower tau sharpens straight-through gradients late in training.
    tau_start: float = 1.0
    tau_end: float = 0.5


@dataclass
class EpochStats:
    epoch: int
    loss: float
    accuracy: float
    keep_ratios: tuple = ()


def iterate_minibatches(images, labels, batch_size, rng, shuffle=True):
    """Yield ``(images, labels)`` minibatches."""
    count = len(labels)
    order = np.arange(count)
    if shuffle:
        rng.shuffle(order)
    for start in range(0, count, batch_size):
        index = order[start:start + batch_size]
        yield images[index], labels[index]


def _make_optimizer(model, config, steps_per_epoch):
    optimizer = nn.AdamW(model.parameters(), lr=config.lr,
                         weight_decay=config.weight_decay)
    total = max(1, config.epochs * steps_per_epoch)
    schedule = nn.CosineSchedule(
        optimizer, base_lr=config.lr, total_steps=total,
        warmup_steps=int(config.warmup_fraction * total))
    return optimizer, schedule


def train_backbone(model, train_images, train_labels, config,
                   val_images=None, val_labels=None, verbose=False):
    """Supervised training of a plain ViT; returns per-epoch stats."""
    rng = np.random.default_rng(config.seed)
    steps = max(1, len(train_labels) // config.batch_size)
    optimizer, schedule = _make_optimizer(model, config, steps)
    history = []
    for epoch in range(config.epochs):
        model.train()
        losses = []
        for batch_images, batch_labels in iterate_minibatches(
                train_images, train_labels, config.batch_size, rng):
            logits = model(batch_images)
            loss = F.cross_entropy(logits, batch_labels)
            optimizer.zero_grad()
            loss.backward()
            nn.clip_grad_norm(model.parameters(), config.grad_clip)
            schedule.step()
            optimizer.step()
            losses.append(loss.item())
        accuracy = float("nan")
        if val_images is not None:
            model.eval()
            accuracy = model.accuracy(val_images, val_labels)
        stats = EpochStats(epoch, float(np.mean(losses)), accuracy)
        history.append(stats)
        if verbose:
            print(f"[backbone] epoch {epoch}: loss={stats.loss:.4f} "
                  f"acc={stats.accuracy:.4f}")
    return history


def heatvit_loss(model, batch_images, batch_labels, config, teacher=None):
    """The Eq. 21 objective for one minibatch; returns (loss, record)."""
    record = PruningRecord()
    logits = model(batch_images, record=record)
    loss = F.cross_entropy(logits, batch_labels)
    if teacher is not None and config.lambda_distill:
        with nn.no_grad():
            teacher_logits = teacher(batch_images)
        loss = loss + config.lambda_distill * F.kl_divergence(
            logits, teacher_logits)
    if record.decisions and config.lambda_ratio:
        targets = model.keep_ratios
        loss = loss + config.lambda_ratio * latency_sparsity_loss(
            record.decisions, targets)
    if record.scores and config.lambda_confidence:
        from repro.core.latency import confidence_loss
        loss = loss + config.lambda_confidence * confidence_loss(
            record.scores, record.alive_before, model.keep_ratios,
            signal_records=record.attention_signals)
    return loss, record


def train_heatvit(model, train_images, train_labels, config, teacher=None,
                  val_images=None, val_labels=None, verbose=False,
                  freeze_backbone=False):
    """Fine-tune a HeatViT model with the combined objective (Eq. 21)."""
    rng = np.random.default_rng(config.seed)
    if freeze_backbone:
        model.backbone.freeze()
    steps = max(1, len(train_labels) // config.batch_size)
    optimizer, schedule = _make_optimizer(model, config, steps)
    history = []
    for epoch in range(config.epochs):
        # Anneal the Gumbel temperature toward the deployment threshold.
        progress = epoch / max(1, config.epochs - 1)
        tau = (config.tau_start
               + (config.tau_end - config.tau_start) * progress)
        for selector in model.selectors:
            selector.tau = tau
        model.train()
        losses = []
        realized = []
        for batch_images, batch_labels in iterate_minibatches(
                train_images, train_labels, config.batch_size, rng):
            loss, record = heatvit_loss(model, batch_images, batch_labels,
                                        config, teacher=teacher)
            optimizer.zero_grad()
            loss.backward()
            nn.clip_grad_norm(model.parameters(), config.grad_clip)
            schedule.step()
            optimizer.step()
            losses.append(loss.item())
            realized.append(tuple(record.cumulative_keep))
        accuracy = float("nan")
        if val_images is not None:
            accuracy = model.accuracy(val_images, val_labels)
        mean_keep = (tuple(np.mean(realized, axis=0)) if realized else ())
        stats = EpochStats(epoch, float(np.mean(losses)), accuracy,
                           keep_ratios=mean_keep)
        history.append(stats)
        if verbose:
            print(f"[heatvit] epoch {epoch}: loss={stats.loss:.4f} "
                  f"acc={stats.accuracy:.4f} keep={mean_keep}")
    if freeze_backbone:
        model.backbone.unfreeze()
    return history


# ----------------------------------------------------------------------
# Algorithm 1: latency-aware block-to-stage training
# ----------------------------------------------------------------------
@dataclass
class InsertionTrace:
    """One Step-1 insertion: which block, final ratio, accuracy after."""

    block: int
    keep_ratio: float
    accuracy: float
    latency_ms: float


@dataclass
class TrainingReport:
    """Outcome of the block-to-stage pipeline."""

    traces: list = field(default_factory=list)
    stage_boundaries: tuple = ()
    stage_keep_ratios: tuple = ()
    final_accuracy: float = float("nan")
    final_latency_ms: float = float("nan")
    baseline_accuracy: float = float("nan")
    epochs_spent: int = 0


class BlockToStageTrainer:
    """Latency-aware multi-stage training (paper Algorithm 1).

    Step 1 walks blocks from the last toward ``min_block`` (the paper
    stops at the 4th block: pruning the front 3 blocks hurts too much).
    For each block it inserts a selector, fine-tunes briefly, and lowers
    that block's keep ratio along ``ratio_grid`` until either the model
    meets ``latency_limit`` or accuracy drops more than ``accuracy_drop``
    below the baseline.  Step 2 merges consecutive selectors whose
    ratios differ by less than ``merge_threshold`` (8.5% in the paper)
    into stages, keeps the first selector of each stage, and retrains.
    """

    def __init__(self, backbone, train_data, val_data, latency_table,
                 train_config=None, teacher=None, min_block=3,
                 ratio_grid=(0.9, 0.8, 0.7, 0.6, 0.5),
                 merge_threshold=0.085, rng=None):
        self.backbone = backbone
        self.train_images, self.train_labels = train_data
        self.val_images, self.val_labels = val_data
        self.table = latency_table
        self.config = train_config or TrainConfig(epochs=1)
        self.teacher = teacher
        self.min_block = min_block
        self.ratio_grid = tuple(sorted(ratio_grid, reverse=True))
        self.merge_threshold = merge_threshold
        self.rng = np.random.default_rng() if rng is None else rng
        self.epochs_spent = 0

    # ------------------------------------------------------------------
    def _build_model(self, block_ratios):
        model = HeatViT(self.backbone, dict(block_ratios), rng=self.rng)
        return model

    def _fit(self, model, epochs=None):
        config = self.config
        if epochs is not None:
            config = TrainConfig(**{**config.__dict__, "epochs": epochs})
        history = train_heatvit(
            model, self.train_images, self.train_labels, config,
            teacher=self.teacher, val_images=self.val_images,
            val_labels=self.val_labels)
        self.epochs_spent += config.epochs
        return history[-1].accuracy

    def _model_latency(self, block_ratios):
        """Eq. 19 LHS with per-block cumulative keep ratios."""
        depth = self.backbone.config.depth
        per_block = []
        current = 1.0
        for block in range(depth):
            if block in block_ratios:
                current = block_ratios[block]
            per_block.append(current)
        return self.table.model_latency(per_block)

    # ------------------------------------------------------------------
    def run(self, latency_limit, accuracy_drop=0.005,
            initial_keep_ratio=0.9):
        """Execute Algorithm 1; returns ``(model, TrainingReport)``."""
        report = TrainingReport()
        self.backbone.eval()
        report.baseline_accuracy = self.backbone.accuracy(
            self.val_images, self.val_labels)
        depth = self.backbone.config.depth
        block_ratios = {}

        # ---- Step 1: insert selectors back-to-front ----
        for block in range(depth - 1, self.min_block - 1, -1):
            upper = min([block_ratios[b] for b in block_ratios
                         if b > block] or [1.0])
            grid = [r for r in self.ratio_grid
                    if r <= min(initial_keep_ratio, 1.0)]
            accepted_ratio = None
            accepted_accuracy = report.baseline_accuracy
            for ratio in grid:
                # Cumulative ratios must be non-increasing front-to-back.
                trial = dict(block_ratios)
                trial[block] = ratio
                trial = _enforce_monotone(trial)
                model = self._build_model(trial)
                accuracy = self._fit(model)
                drop = report.baseline_accuracy - accuracy
                if drop > accuracy_drop:
                    break
                accepted_ratio = ratio
                accepted_accuracy = accuracy
                block_ratios = trial
                if self._model_latency(block_ratios) <= latency_limit:
                    break
            latency = self._model_latency(block_ratios)
            report.traces.append(InsertionTrace(
                block=block,
                keep_ratio=(accepted_ratio if accepted_ratio is not None
                            else 1.0),
                accuracy=accepted_accuracy,
                latency_ms=latency))
            if block_ratios and latency <= latency_limit:
                break

        # ---- Step 2: merge similar adjacent selectors into stages ----
        boundaries, ratios = consolidate_stages(
            block_ratios, self.merge_threshold)
        report.stage_boundaries = tuple(boundaries)
        report.stage_keep_ratios = tuple(ratios)
        final = self._build_model(dict(zip(boundaries, ratios)))
        report.final_accuracy = self._fit(final)
        report.final_latency_ms = self._model_latency(
            dict(zip(boundaries, ratios)))
        report.epochs_spent = self.epochs_spent
        return final, report


def _enforce_monotone(block_ratios):
    """Cumulative keep ratios must not increase with depth."""
    result = {}
    current = 1.0
    for block in sorted(block_ratios):
        current = min(current, block_ratios[block])
        result[block] = current
    return result


def consolidate_stages(block_ratios, merge_threshold=0.085):
    """Step 2 of Algorithm 1: merge similar consecutive selectors.

    Consecutive selectors whose keep ratios differ by less than
    ``merge_threshold`` collapse into one stage; only the first selector
    of each stage is kept (with that stage's ratio).
    Returns ``(boundaries, ratios)``.
    """
    if not block_ratios:
        return [], []
    blocks = sorted(block_ratios)
    boundaries = [blocks[0]]
    ratios = [block_ratios[blocks[0]]]
    for block in blocks[1:]:
        ratio = block_ratios[block]
        if abs(ratio - ratios[-1]) < merge_threshold:
            continue
        boundaries.append(block)
        ratios.append(ratio)
    return boundaries, ratios
