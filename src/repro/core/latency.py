"""Latency-sparsity table and loss (paper Section VI, Eqs. 18-20).

The paper measures per-block latency on the ZCU102 for a grid of token
keep ratios (Table IV) and uses the resulting lookup table both to pick
per-block keep ratios under a whole-model latency budget (Eq. 19) and to
regularize the mean selector decision toward those ratios (Eq. 20).

Here the table can be populated either with the paper's measured values
(:func:`paper_latency_table`) or from our FPGA simulator
(:func:`repro.hardware.latency_table.build_latency_table`).
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["LatencySparsityTable", "paper_latency_table",
           "latency_sparsity_loss", "confidence_loss",
           "ratios_for_latency_budget", "latency_from_stage_counts",
           "latency_for_keep_ratios"]

# Table IV of the paper: one-block latency (ms) on ZCU102 vs keep ratio.
_PAPER_TABLE = {
    "DeiT-T": {1.0: 1.034, 0.9: 0.945, 0.8: 0.881, 0.7: 0.764,
               0.6: 0.702, 0.5: 0.636},
    "DeiT-S": {1.0: 3.161, 0.9: 2.837, 0.8: 2.565, 0.7: 2.255,
               0.6: 1.973, 0.5: 1.682},
}


class LatencySparsityTable:
    """Lookup table ``keep_ratio -> one-block latency`` with interpolation.

    Implements Eq. 18 (``Block(rho) = latency_sparsity_table(rho)``) plus
    the inverse lookup needed by Algorithm 1's "decrease t_i; rho_i =
    table(t_i)" step.
    """

    def __init__(self, entries):
        if not entries:
            raise ValueError("empty latency table")
        pairs = sorted(entries.items())
        self._ratios = np.array([ratio for ratio, _ in pairs])
        self._latencies = np.array([lat for _, lat in pairs])
        if np.any(np.diff(self._latencies) < 0):
            raise ValueError(
                "latency must be non-decreasing in keep ratio")

    @property
    def min_ratio(self):
        return float(self._ratios[0])

    @property
    def max_ratio(self):
        return float(self._ratios[-1])

    def latency(self, keep_ratio):
        """Eq. 18: interpolated one-block latency at ``keep_ratio``."""
        ratio = float(np.clip(keep_ratio, self._ratios[0], self._ratios[-1]))
        return float(np.interp(ratio, self._ratios, self._latencies))

    def latency_batch(self, keep_ratios):
        """Vectorized :meth:`latency` over an array of keep ratios."""
        ratios = np.clip(np.asarray(keep_ratios, dtype=np.float64),
                         self._ratios[0], self._ratios[-1])
        return np.interp(ratios, self._ratios, self._latencies)

    def ratio_for_latency(self, latency):
        """Inverse lookup: the largest keep ratio meeting ``latency``."""
        lat = float(np.clip(latency, self._latencies[0],
                            self._latencies[-1]))
        return float(np.interp(lat, self._latencies, self._ratios))

    def model_latency(self, keep_ratios_per_block):
        """Whole-model latency: sum of per-block latencies (Eq. 19 LHS)."""
        return sum(self.latency(r) for r in keep_ratios_per_block)

    def items(self):
        return list(zip(self._ratios.tolist(), self._latencies.tolist()))


def paper_latency_table(model_name):
    """The measured Table IV entries for ``DeiT-T`` / ``DeiT-S``."""
    if model_name not in _PAPER_TABLE:
        raise KeyError(
            f"paper reports Table IV only for {sorted(_PAPER_TABLE)}; "
            f"got {model_name!r} (use the hardware simulator instead)")
    return LatencySparsityTable(_PAPER_TABLE[model_name])


def latency_sparsity_loss(records, target_keep_ratios):
    """Eq. 20: squared gap between target and realized mean keep ratio.

    ``records`` is the list of cumulative decision Tensors collected by
    :class:`repro.core.heatvit.PruningRecord` (one per selector);
    ``target_keep_ratios`` are the cumulative keep ratios ``1 - rho_i``
    implied by the latency budget.  The mean over the batch makes the
    constraint *average*, allowing per-image adaptivity around it.
    """
    if len(records) != len(target_keep_ratios):
        raise ValueError("one target per selector required")
    loss = Tensor(np.zeros(()))
    for decision, target in zip(records, target_keep_ratios):
        realized = decision.mean()
        gap = realized - float(target)
        loss = loss + gap * gap
    return loss


def confidence_loss(score_records, alive_records, target_keep_ratios,
                    signal_records=None):
    """Quantile-sharpening regularizer for thresholded deployment.

    The ratio loss (Eq. 20) constrains only the *mean* keep decision; a
    selector can satisfy it with a uniform score of ``rho`` for every
    token, which the deployed threshold rule (Fig. 9, threshold 0.5)
    would then keep entirely.  This term assigns binary targets by
    ranking tokens against a *batch-global* quantile -- the top
    ``rho`` fraction of all alive tokens in the batch get target 1, the
    rest 0 -- and applies binary cross-entropy, driving the score
    distribution bimodal around the threshold while letting per-image
    keep counts vary (complex images place more tokens above the global
    bar).  This mirrors the paper's convergence goal: "we set the
    average pruning rate of all images in one batch as the convergence
    target".

    ``signal_records`` supplies the ranking signal; by default the
    class token's attention from the preceding transformer block is
    used (persistent and informative from the first step -- exactly the
    redundancy evidence of the paper's Fig. 5).  Without a signal the
    selector's own keep scores are ranked, which self-reinforces once
    training has separated them.

    The paper does not spell this detail out; *some* sharpening is
    required for any Gumbel-trained selector deployed with a fixed
    threshold, and it is documented as a reproduction note in
    EXPERIMENTS.md.

    Parameters
    ----------
    score_records: list of ``(B, N, 2)`` keep/prune score Tensors.
    alive_records: list of ``(B, N)`` {0,1} arrays -- tokens alive
        *before* each selector (treated as constants).
    target_keep_ratios: cumulative keep targets, one per selector.
    signal_records: optional list of ``(B, N)`` ranking signals.
    """
    if not (len(score_records) == len(alive_records)
            == len(target_keep_ratios)):
        raise ValueError("one record of each kind per selector required")
    if signal_records is None:
        signal_records = [None] * len(score_records)
    if len(signal_records) != len(score_records):
        raise ValueError("one signal per selector required")
    loss = Tensor(np.zeros(()))
    for scores, alive, ratio, signal in zip(
            score_records, alive_records, target_keep_ratios,
            signal_records):
        keep = scores[..., 0]                       # (B, N) Tensor
        alive_data = (alive.data if isinstance(alive, Tensor)
                      else np.asarray(alive))
        ranking = keep.data if signal is None else np.asarray(signal)
        batch, count = ranking.shape
        # Batch-global quantile over alive tokens.
        flat = np.where(alive_data > 0.5, ranking, -np.inf).ravel()
        k = max(1, int(np.ceil(float(ratio) * batch * count)))
        k = min(k, int((alive_data > 0.5).sum()) or 1)
        threshold = np.sort(flat)[-k]
        targets = ((ranking >= threshold) & (alive_data > 0.5))
        targets = targets.astype(np.float64)
        weights = alive_data
        bce = -(Tensor(targets) * (keep + 1e-8).log()
                + Tensor(1.0 - targets) * (1.0 - keep + 1e-8).log())
        total = (bce * Tensor(weights)).sum() / max(weights.sum(), 1.0)
        loss = loss + total
    return loss / max(len(score_records), 1)


def latency_from_stage_counts(table, depth, selector_blocks,
                              tokens_per_stage, num_patches, extra=1):
    """Per-image whole-model latency estimate from realized token counts.

    The deployment analogue of :meth:`LatencySparsityTable.model_latency`:
    instead of target keep ratios, uses the *actual* per-image token
    counts recorded after each selector (CLS and package included, as in
    :class:`repro.core.heatvit.PruningRecord.tokens_per_stage`).  Each
    block's latency is the Eq. 18 table lookup at that block's realized
    *patch* keep ratio ``(count - extra) / num_patches`` -- the same
    convention ``PruningRecord.cumulative_keep`` and
    :func:`ratios_for_latency_budget` use, with ``extra`` the
    non-patch slots (CLS, plus the package when the model packages).

    ``selector_blocks``: block indices with a selector in front, sorted.
    ``tokens_per_stage``: one array of per-image counts per selector.
    Returns a ``(B,)`` array of latency estimates in the table's unit
    (milliseconds for the paper's Table IV).
    """
    tokens_per_stage = [np.asarray(c, dtype=np.float64)
                        for c in tokens_per_stage]
    if len(tokens_per_stage) != len(selector_blocks):
        raise ValueError("one token-count array per selector required")
    if not tokens_per_stage:
        raise ValueError(
            "no selector stages: the batch size cannot be inferred; use "
            "table.model_latency([1.0] * depth) for dense models")
    batch = tokens_per_stage[0].shape[0]
    stage_ratios = [np.ones(batch)] + [
        np.clip(counts - extra, 0.0, None) / float(num_patches)
        for counts in tokens_per_stage]
    boundaries = sorted(selector_blocks)
    per_image = np.zeros(batch)
    for stage, ratios in enumerate(stage_ratios):
        blocks_in_stage = sum(
            1 for block_index in range(depth)
            if sum(1 for b in boundaries if b <= block_index) == stage)
        if blocks_in_stage:
            per_image += blocks_in_stage * table.latency_batch(ratios)
    return per_image


def latency_for_keep_ratios(table, depth, selector_blocks, keep_ratios):
    """Whole-model latency at a *configured* operating point (Eq. 19 LHS).

    The a-priori counterpart of :func:`latency_from_stage_counts`: instead
    of realized per-image token counts, uses the model's configured
    per-selector target keep ratios (``HeatViT.keep_ratios``, each
    relative to the tokens alive before that selector).  Blocks before
    the first selector run dense; every later block runs at the
    cumulative product of the selector ratios in front of it.  This is
    what a request router can evaluate *before* execution to compare
    serving sessions (scheduler cost policy).

    ``selector_blocks``: block indices with a selector in front, sorted.
    ``keep_ratios``: one target keep ratio per selector.
    Returns a scalar in the table's unit (ms for the paper's Table IV).
    """
    boundaries = sorted(selector_blocks)
    if len(boundaries) != len(keep_ratios):
        raise ValueError("one keep ratio per selector required")
    cumulative = 1.0
    stage_ratios = [1.0]
    for ratio in keep_ratios:
        cumulative *= float(ratio)
        stage_ratios.append(cumulative)
    total = 0.0
    for block_index in range(depth):
        stage = sum(1 for b in boundaries if b <= block_index)
        total += table.latency(stage_ratios[stage])
    return total


def ratios_for_latency_budget(table, depth, latency_limit,
                              candidate_ratios=None, front_blocks=3):
    """Greedy per-block keep-ratio assignment meeting Eq. 19.

    Mirrors Algorithm 1's outer loop shape: blocks are considered from
    the last to the front, each lowered through ``candidate_ratios``
    until the whole-model latency fits ``latency_limit``; the first
    ``front_blocks`` blocks are never pruned (the paper observes severe
    accuracy drops when pruning the front 3 blocks).

    Returns a list of per-block keep ratios, or raises ``ValueError`` if
    the budget is infeasible even at the minimum table ratio.
    """
    if candidate_ratios is None:
        candidate_ratios = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5]
    candidate_ratios = sorted(candidate_ratios, reverse=True)
    ratios = [1.0] * depth
    if table.model_latency(ratios) <= latency_limit:
        return ratios
    for block in range(depth - 1, front_blocks - 1, -1):
        for ratio in candidate_ratios:
            ratios[block] = ratio
            if table.model_latency(ratios) <= latency_limit:
                return ratios
    raise ValueError(
        f"latency budget {latency_limit} ms infeasible: best achievable is "
        f"{table.model_latency(ratios):.3f} ms")
