"""The HeatViT adaptive token selector (paper Section IV, Fig. 7).

Components:

* :class:`MultiHeadTokenClassifier` -- per-head token scoring from local
  and global receptive-field features (Eqs. 3-5).
* :class:`AttentionBranch` -- squeeze-and-excitation style head-importance
  weighting (Eqs. 6-7).
* :class:`TokenSelector` -- combines the two into the overall token score
  (Eq. 8), draws the keep/prune decision with Gumbel-Softmax (Eq. 9), and
  packages non-informative tokens into one token (Eq. 10).

Everything is built from Linear layers + GELU/Softmax/Sigmoid on purpose:
these operators already exist in the backbone ViT, so the FPGA GEMM
engine can execute the selector with only control-logic overhead
(Section V-C).

Training vs inference semantics
-------------------------------
During training tokens are never physically removed (batch shapes must
stay static); the {0,1} decision mask neutralizes pruned tokens through
masked attention, and gradients flow through the Gumbel-Softmax
straight-through estimator.  At inference tokens are physically gathered
into a dense, smaller matrix -- the behaviour the FPGA implements.  Both
paths share this module; the ``incoming_mask`` argument makes masked-mode
selector evaluations identical to gathered-mode ones (global pooling and
packaging only consider currently-alive tokens).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor

__all__ = ["MultiHeadTokenClassifier", "AttentionBranch", "TokenSelector",
           "SelectorOutput"]

_EPS = 1e-8


class MultiHeadTokenClassifier(nn.Module):
    """Scores every token independently for each attention head.

    The input ``(B, N, D)`` is split into ``h`` head subvectors of size
    ``d = D/h``.  A feature MLP produces the local representation
    ``E_local = MLP(x_i)`` (Eq. 3) and its token-average gives the global
    representation (Eq. 4).  Their concatenation is classified into
    keep/prune probabilities via a second MLP + Softmax (Eq. 5).

    The MLPs are shared across heads (each head has the same subvector
    dimension), so on hardware the per-head evaluations are ``h``
    identical GEMMs -- ideal for the multi-head-tiled GEMM engine.
    """

    def __init__(self, embed_dim, num_heads, activation=None, rng=None):
        super().__init__()
        if embed_dim % num_heads != 0:
            raise ValueError("embed_dim must divide num_heads")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        d = self.head_dim
        act = nn.GELU if activation is None else activation
        feat = max(d // 2, 2)
        self.feature_mlp = nn.Sequential(nn.Linear(d, feat, rng=rng, weight_init="kaiming"), act())
        self.classifier_mlp = nn.Sequential(
            nn.Linear(2 * feat, feat, rng=rng, weight_init="kaiming"), act(),
            nn.Linear(feat, max(feat // 2, 2), rng=rng,
                      weight_init="kaiming"), act(),
            nn.Linear(max(feat // 2, 2), 2, rng=rng,
                      weight_init="kaiming"))

    def forward(self, x, mask=None):
        """Return per-head token scores of shape ``(B, h, N, 2)``.

        ``mask`` (``(B, N)`` of {0,1}) restricts the global average
        pooling (Eq. 4) to currently-alive tokens, keeping masked-mode
        training consistent with gathered-mode inference.
        """
        x = Tensor.ensure(x)
        batch, tokens, dim = x.shape
        h, d = self.num_heads, self.head_dim
        # (B, N, h, d) -> (B, h, N, d)
        heads = x.reshape(batch, tokens, h, d).transpose(0, 2, 1, 3)
        local = self.feature_mlp(heads)                    # (B, h, N, f)
        if mask is None:
            global_feat = local.mean(axis=2, keepdims=True)
        else:
            m = Tensor.ensure(mask)                        # (B, N)
            m = m.reshape(batch, 1, tokens, 1)
            global_feat = ((local * m).sum(axis=2, keepdims=True)
                           / (m.sum(axis=2, keepdims=True) + _EPS))
        global_feat = global_feat + Tensor(
            np.zeros((batch, h, tokens, local.shape[-1])))
        combined = Tensor.concatenate([local, global_feat], axis=-1)
        logits = self.classifier_mlp(combined)             # (B, h, N, 2)
        return F.softmax(logits, axis=-1)


class ConvTokenClassifier(nn.Module):
    """Convolution-based token classifier for the Fig. 12 ablation.

    Reshapes tokens back onto their 2-D grid and scores them with two
    3x3 convolutions.  The paper shows MLP-based selectors beat this
    design *and* reuse the GEMM engine, whereas convolutions would need
    new hardware ("the kernel size of the convolution operation is
    fixed so that the irregular input features cannot be directly
    concatenated", Sec. III-B).

    Produces the same ``(B, h, N, 2)`` interface as the MLP classifier
    by broadcasting one shared score map across heads.
    """

    def __init__(self, embed_dim, num_heads, grid_size, activation=None,
                 rng=None):
        super().__init__()
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.grid_size = grid_size
        act = nn.GELU if activation is None else activation
        hidden = max(embed_dim // 2, 4)
        self.conv1 = nn.Conv2d(embed_dim, hidden, kernel_size=3,
                               padding=1, rng=rng)
        self.act = act()
        self.conv2 = nn.Conv2d(hidden, 2, kernel_size=3, padding=1,
                               rng=rng)

    def forward(self, x, mask=None):
        x = Tensor.ensure(x)
        batch, tokens, dim = x.shape
        side = self.grid_size
        if tokens != side * side:
            raise ValueError(
                f"conv classifier needs a full {side}x{side} grid, got "
                f"{tokens} tokens -- pruned (irregular) inputs are not "
                f"supported, which is exactly the hardware objection")
        grid = x.transpose(0, 2, 1).reshape(batch, dim, side, side)
        scores = self.conv2(self.act(self.conv1(grid)))    # (B, 2, s, s)
        scores = scores.reshape(batch, 2, tokens).transpose(0, 2, 1)
        probs = F.softmax(scores, axis=-1)                 # (B, N, 2)
        probs = probs.reshape(batch, 1, tokens, 2)
        return probs + Tensor(np.zeros((batch, self.num_heads, tokens, 2)))


class AttentionBranch(nn.Module):
    """Head-importance scores via channel statistics (Eqs. 6-7).

    ``X_bar`` is the per-head channel mean, shape ``(B, N, h)``; a small
    MLP with a Sigmoid yields head importances ``A`` in ``(0, 1)``.
    """

    def __init__(self, embed_dim, num_heads, rng=None):
        super().__init__()
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.mlp = nn.Sequential(
            nn.Linear(num_heads, num_heads, rng=rng,
                      weight_init="kaiming"), nn.GELU(),
            nn.Linear(num_heads, num_heads, rng=rng,
                      weight_init="kaiming"))

    def forward(self, x):
        x = Tensor.ensure(x)
        batch, tokens, dim = x.shape
        heads = x.reshape(batch, tokens, self.num_heads, self.head_dim)
        head_stat = heads.mean(axis=-1)                    # (B, N, h)
        return F.sigmoid(self.mlp(head_stat))              # (B, N, h)


class SelectorOutput:
    """Result of one selector application.

    Attributes
    ----------
    keep_probs: Tensor ``(B, N, 2)`` -- overall token scores (Eq. 8),
        columns are (keep, prune) probabilities.
    decision: Tensor ``(B, N)`` -- hard {0,1} keep decisions with
        straight-through gradients (Eq. 9), already ANDed with the
        incoming mask (``M <- M (*) M'``).
    head_importance: Tensor ``(B, N, h)`` -- attention-branch weights.
    package: Tensor ``(B, 1, D)`` -- the packaged non-informative token
        (Eq. 10), built from the tokens pruned *at this stage*.
    """

    __slots__ = ("keep_probs", "decision", "head_importance", "package")

    def __init__(self, keep_probs, decision, head_importance, package):
        self.keep_probs = keep_probs
        self.decision = decision
        self.head_importance = head_importance
        self.package = package

    def keep_fraction(self, incoming_mask=None):
        """Mean fraction of alive tokens kept (per batch, scalar)."""
        kept = self.decision.data.sum()
        if incoming_mask is None:
            alive = self.decision.data.size
        else:
            mask = (incoming_mask.data if isinstance(incoming_mask, Tensor)
                    else np.asarray(incoming_mask))
            alive = mask.sum()
        return float(kept / max(alive, 1.0))


class TokenSelector(nn.Module):
    """Full token selector: classifier + attention branch + packager.

    Parameters
    ----------
    embed_dim, num_heads: backbone dimensions at the insertion point.
    keep_ratio: the desired (average) keep ratio for this selector; the
        latency-sparsity loss (Eq. 20) drives the mean decision toward it.
    tau: Gumbel-Softmax temperature.
    """

    def __init__(self, embed_dim, num_heads, keep_ratio=1.0, tau=1.0,
                 activation=None, classifier=None, rng=None):
        super().__init__()
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.keep_ratio = keep_ratio
        self.tau = tau
        # Normalize the residual-stream features before scoring: the
        # classifier MLPs are tiny, and un-normalized block outputs
        # (whose scale grows with depth) condition them terribly.
        self.norm = nn.LayerNorm(embed_dim)
        self.classifier = (classifier if classifier is not None
                           else MultiHeadTokenClassifier(
                               embed_dim, num_heads, activation=activation,
                               rng=rng))
        self.attention_branch = AttentionBranch(embed_dim, num_heads,
                                                rng=rng)
        self._rng = np.random.default_rng() if rng is None else rng

    # ------------------------------------------------------------------
    def token_scores(self, patch_tokens, mask=None):
        """Overall keep/prune probabilities (Eq. 8): ``(B, N, 2)``."""
        patch_tokens = self.norm(Tensor.ensure(patch_tokens))
        per_head = self.classifier(patch_tokens, mask=mask)  # (B, h, N, 2)
        importance = self.attention_branch(patch_tokens)     # (B, N, h)
        weights = importance.transpose(0, 2, 1)               # (B, h, N)
        weights = weights.reshape(*weights.shape, 1)          # (B, h, N, 1)
        weighted = (per_head * weights).sum(axis=1)           # (B, N, 2)
        total = weights.sum(axis=1) + _EPS                    # (B, N, 1)
        return weighted / total, importance

    def forward(self, patch_tokens, incoming_mask=None, hard=True):
        """Apply the selector to patch tokens ``(B, N, D)``.

        ``incoming_mask`` is the cumulative keep mask from earlier stages
        (``(B, N)`` of {0,1}); pruned tokens stay pruned.  When the module
        is in eval mode (or ``hard`` is False) the decision is the
        deterministic argmax of the scores instead of a Gumbel sample.
        """
        patch_tokens = Tensor.ensure(patch_tokens)
        scores, importance = self.token_scores(patch_tokens,
                                               mask=incoming_mask)
        logits = (scores + _EPS).log()
        if self.training and hard:
            sample = F.gumbel_softmax(logits, tau=self.tau, hard=True,
                                      rng=self._rng)
        else:
            keep = (scores.data[..., 0] >= scores.data[..., 1])
            one_hot = np.stack([keep, ~keep], axis=-1).astype(np.float64)
            # Forward is hard, backward flows through the scores.
            sample = scores + Tensor(one_hot - scores.data)
        decision = sample[..., 0]                          # (B, N)
        if incoming_mask is not None:
            alive_before = Tensor.ensure(incoming_mask)
            decision = decision * alive_before
        else:
            alive_before = Tensor(np.ones_like(decision.data))
        # Degenerate guard: never prune *every* alive token of an image
        # -- force-keep the highest-scoring one (applies identically in
        # masked training and gathered deployment).
        empty = (decision.data.sum(axis=1) < 0.5)
        if empty.any():
            correction = np.zeros_like(decision.data)
            keep_scores = scores.data[..., 0]
            for row in np.flatnonzero(empty):
                alive = alive_before.data[row] > 0.5
                if not alive.any():
                    continue
                best = np.argmax(np.where(alive, keep_scores[row],
                                          -np.inf))
                correction[row, best] = 1.0
            decision = decision + Tensor(correction)
        newly_pruned = alive_before - decision
        package = self.package_tokens(patch_tokens, newly_pruned, scores)
        return SelectorOutput(scores, decision, importance, package)

    @staticmethod
    def package_tokens(patch_tokens, pruned_mask, scores):
        """Token packager (Eq. 10): weighted-average the pruned tokens.

        Weights are the *keep* scores of the pruned tokens, so the tokens
        the classifier was least sure about dominate the package --
        giving later blocks a chance to correct scoring mistakes.
        """
        patch_tokens = Tensor.ensure(patch_tokens)
        pruned = Tensor.ensure(pruned_mask)                # (B, N)
        keep_score = scores[..., 0]                        # (B, N)
        weights = pruned * keep_score                      # (B, N)
        weights = weights.reshape(*weights.shape, 1)       # (B, N, 1)
        numerator = (patch_tokens * weights).sum(axis=1, keepdims=True)
        denominator = weights.sum(axis=1, keepdims=True) + _EPS
        return numerator / denominator                     # (B, 1, D)
