"""Shared token-gathering helpers for the physically-pruned path.

Three call sites execute the same "gather the kept tokens, append the
package" step of the deployment semantics (paper Fig. 9 step 3):

* :meth:`repro.core.heatvit.HeatViT._forward_pruned_single` (reference
  single-image path),
* :class:`repro.engine.executor.BucketedExecutor` (batched serving
  path),
* :class:`repro.hardware.selector_flow.TokenSelectionFlow` (functional
  model of the on-chip flow).

All three now share the numpy-level helpers below, so a semantics change
(e.g. the packager rule) happens in exactly one place.  Everything here
operates on plain arrays: the pruned path runs under ``nn.no_grad`` and
the hardware flow is numpy-only, so no autodiff plumbing is needed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["weighted_package", "gather_kept_tokens",
           "prune_image_sequence", "prune_group_sequences"]

_EPS = 1e-8


def weighted_package(tokens, weights, eps=_EPS, dtype=None):
    """Score-weighted average of token rows (Eq. 10, numpy form).

    ``tokens``: ``(P, D)`` pruned-token features; ``weights``: ``(P,)``
    non-negative weights (the pruned tokens' *keep* scores, so the
    tokens the classifier was least sure about dominate the package).
    Returns the ``(D,)`` package token.

    ``dtype=None`` keeps the tokens' float dtype (non-float inputs
    compute in float64 as before) so float32 fast-path sequences are
    not silently upcast on the gather path.
    """
    tokens = np.asarray(tokens)
    if dtype is None:
        dtype = (tokens.dtype if np.issubdtype(tokens.dtype, np.floating)
                 else np.float64)
    tokens = np.asarray(tokens, dtype=dtype)
    weights = np.asarray(weights, dtype=dtype)
    return ((tokens * weights[:, None]).sum(axis=0)
            / max(weights.sum(), eps))


def gather_kept_tokens(tokens, keep_flags, package=None):
    """Concatenate kept token rows, then the optional package row.

    ``tokens``: ``(N, D)``; ``keep_flags``: ``(N,)`` boolean-ish.
    Returns ``(K, D)`` or ``(K + 1, D)`` when a package is appended.
    """
    tokens = np.asarray(tokens)
    kept = tokens[np.asarray(keep_flags, dtype=bool)]
    if package is None:
        return kept
    # Cast the package row to the tokens' dtype so concatenation never
    # silently upcasts a float32 fast-path sequence.
    package = np.asarray(package, dtype=tokens.dtype).reshape(
        1, tokens.shape[-1])
    return np.concatenate([kept, package], axis=0)


def prune_image_sequence(sequence, keep_flags, *, use_packager,
                         has_package, package=None):
    """Re-gather one image's full token sequence after a selector.

    ``sequence`` is ``(T, D)`` laid out ``[cls, patch_0..patch_{N-1}]``
    plus, when ``has_package``, a trailing package slot.  ``keep_flags``
    is ``(N,)`` over the patch tokens only.  ``package`` is the ``(D,)``
    freshly-packaged token for this stage (required when ``use_packager``
    and anything was pruned).

    Packager rule (matching both the masked training path and the FPGA
    flow): when tokens were pruned at this stage the new package replaces
    the slot; when nothing was pruned the old (evolving) package is
    carried; without a packager pruned tokens are simply discarded.

    Returns ``(new_sequence, new_has_package)``.
    """
    sequence = np.asarray(sequence)
    keep_flags = np.asarray(keep_flags, dtype=bool)
    stop = sequence.shape[0] - (1 if has_package else 0)
    patches = sequence[1:stop]
    if keep_flags.shape != (patches.shape[0],):
        raise ValueError(
            f"keep_flags shape {keep_flags.shape} does not match "
            f"{patches.shape[0]} patch tokens")
    pruned_any = bool(keep_flags.sum() < keep_flags.size)
    slot = None
    if use_packager:
        if pruned_any:
            if package is None:
                raise ValueError(
                    "use_packager with pruned tokens requires a package")
            slot = package
        elif has_package:
            slot = sequence[stop]
    body = gather_kept_tokens(patches, keep_flags, package=slot)
    new_sequence = np.concatenate([sequence[:1], body], axis=0)
    return new_sequence, has_package or (use_packager and pruned_any)


def prune_group_sequences(sequences, keep_flags, *, use_packager,
                          has_package, packages=None):
    """Batched :func:`prune_image_sequence` for one exact group.

    ``sequences`` is ``(g, T, D)`` -- images sharing the same layout
    (same length, same ``has_package``); ``keep_flags`` is ``(g, N)``
    over the patch tokens; ``packages`` is ``(g, D)`` freshly-packaged
    tokens (required when ``use_packager`` and anything was pruned).

    Semantically identical to calling :func:`prune_image_sequence` per
    row (pinned by ``tests/core/test_heatvit.py`` /
    ``tests/engine/test_fastpath.py``) -- boolean gathers and
    concatenations of the same values -- but hoists the validation and
    per-call overhead out of the serving engine's per-image loop.
    Returns ``(new_sequences, new_has_package)`` lists of length ``g``.
    """
    x = np.asarray(sequences)
    keep = np.asarray(keep_flags, dtype=bool)
    stop = x.shape[1] - (1 if has_package else 0)
    if keep.shape != (x.shape[0], stop - 1):
        raise ValueError(
            f"keep_flags shape {keep.shape} does not match "
            f"{(x.shape[0], stop - 1)} patch tokens")
    num_patches = keep.shape[1]
    counts = keep.sum(axis=1)
    if use_packager and (counts < num_patches).any():
        if packages is None:
            raise ValueError(
                "use_packager with pruned tokens requires packages")
        # Match gather_kept_tokens: the package row never upcasts the
        # sequence dtype.
        packages = np.asarray(packages, dtype=x.dtype)
    out_sequences = [None] * x.shape[0]
    out_flags = [None] * x.shape[0]
    # One fancy-index gather per distinct kept-count: the packager rule
    # (fresh package / carried slot / discard) is uniform within a
    # count, so rows sharing one become a single dense copy.
    for count in np.unique(counts):
        rows = np.flatnonzero(counts == count)
        pruned_any = count < num_patches
        slot = None
        if use_packager:
            if pruned_any:
                slot = packages[rows]
            elif has_package:
                slot = x[rows, stop]
        width = 1 + int(count) + (0 if slot is None else 1)
        block = np.empty((rows.size, width, x.shape[-1]), dtype=x.dtype)
        block[:, 0] = x[rows, 0]
        cols = np.nonzero(keep[rows])[1].reshape(rows.size, int(count))
        block[:, 1:1 + int(count)] = x[rows[:, None], 1 + cols]
        if slot is not None:
            block[:, -1] = slot
        flag = has_package or (use_packager and pruned_any)
        for position, row in enumerate(rows):
            out_sequences[row] = block[position]
            out_flags[row] = flag
    return out_sequences, out_flags
