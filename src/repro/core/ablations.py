"""Selector ablation variants isolating HeatViT's design choices.

The paper's token selector differs from prior adaptive pruners
(DynamicViT, IA-RED2) in two ways: per-head token scoring (Sec. IV-A)
and the attention-based head-importance branch (Eqs. 6-8).  These
variants remove one ingredient at a time so their contribution can be
measured (the Fig. 12-style ablations referenced in DESIGN.md):

* :class:`SingleHeadTokenClassifier` -- scores tokens from the full
  embedding at once (DynamicViT-style predictor), ignoring per-head
  redundancy.
* :class:`UniformHeadSelector` -- keeps the multi-head classifier but
  replaces the learned head weighting with a uniform average.

Both plug into :class:`repro.core.HeatViT` via ``classifier_factory`` /
direct construction and keep the ``(B, h, N, 2)`` interface.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.core.selector import TokenSelector

__all__ = ["SingleHeadTokenClassifier", "UniformHeadSelector",
           "make_single_head_factory"]


class SingleHeadTokenClassifier(nn.Module):
    """DynamicViT-style predictor: one MLP over the whole embedding.

    Local feature from ``Linear(D, D/2)``, global from masked average
    pooling, then a classifier MLP to keep/prune scores.  The result is
    broadcast across heads so it can stand in for the multi-head
    classifier inside :class:`TokenSelector`.
    """

    def __init__(self, embed_dim, num_heads, activation=None, rng=None):
        super().__init__()
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        act = nn.GELU if activation is None else activation
        feat = max(embed_dim // 2, 2)
        self.feature_mlp = nn.Sequential(
            nn.Linear(embed_dim, feat, rng=rng, weight_init="kaiming"),
            act())
        self.classifier_mlp = nn.Sequential(
            nn.Linear(2 * feat, feat, rng=rng, weight_init="kaiming"),
            act(),
            nn.Linear(feat, max(feat // 2, 2), rng=rng,
                      weight_init="kaiming"), act(),
            nn.Linear(max(feat // 2, 2), 2, rng=rng,
                      weight_init="kaiming"))

    def forward(self, x, mask=None):
        x = Tensor.ensure(x)
        batch, tokens, _ = x.shape
        local = self.feature_mlp(x)                       # (B, N, f)
        if mask is None:
            global_feat = local.mean(axis=1, keepdims=True)
        else:
            m = Tensor.ensure(mask).reshape(batch, tokens, 1)
            global_feat = ((local * m).sum(axis=1, keepdims=True)
                           / (m.sum(axis=1, keepdims=True) + 1e-8))
        global_feat = global_feat + Tensor(
            np.zeros((batch, tokens, local.shape[-1])))
        combined = Tensor.concatenate([local, global_feat], axis=-1)
        probs = F.softmax(self.classifier_mlp(combined), axis=-1)
        probs = probs.reshape(batch, 1, tokens, 2)
        return probs + Tensor(
            np.zeros((batch, self.num_heads, tokens, 2)))


class UniformHeadSelector(TokenSelector):
    """Multi-head classifier with the attention branch ablated.

    Head scores are averaged uniformly instead of weighted by the
    learned head importance (Eq. 8 with ``a_i = const``).
    """

    def token_scores(self, patch_tokens, mask=None):
        patch_tokens = self.norm(Tensor.ensure(patch_tokens))
        per_head = self.classifier(patch_tokens, mask=mask)
        scores = per_head.mean(axis=1)                    # (B, N, 2)
        batch, tokens, _ = scores.shape
        uniform = Tensor(np.full((batch, tokens, self.num_heads),
                                 1.0 / self.num_heads))
        return scores, uniform


def make_single_head_factory(embed_dim, num_heads, activation=None):
    """``classifier_factory`` for :class:`repro.core.HeatViT` that swaps
    in the DynamicViT-style single-head classifier."""

    def factory(rng):
        return SingleHeadTokenClassifier(embed_dim, num_heads,
                                         activation=activation, rng=rng)

    return factory
