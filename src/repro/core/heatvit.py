"""HeatViT: a ViT backbone with token selectors inserted between blocks.

The model has two execution paths:

* ``forward`` (training / batched evaluation): token count stays static;
  pruned tokens are neutralized through masked attention while the
  Gumbel-Softmax straight-through estimator keeps decisions trainable.
* ``forward_pruned`` (deployment semantics): tokens are physically
  gathered into a dense, smaller matrix after every selector -- exactly
  what the FPGA accelerator executes -- yielding per-image adaptive
  token counts (Fig. 4) and the real GMAC savings.

Sequence layout in masked mode: ``[cls, patch_0..patch_{N-1}, package]``
where the package slot exists from the start but is masked off until the
first selector fires.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor
from repro.core.gather import prune_image_sequence
from repro.core.selector import TokenSelector
from repro.vit.attention import suppress_attention_recording
from repro.vit.complexity import block_macs, token_selector_macs

__all__ = ["HeatViT", "PruningRecord"]


class PruningRecord:
    """Bookkeeping for one forward pass through a HeatViT model.

    Attributes
    ----------
    decisions: list of ``(B, N)`` Tensors, one per selector, cumulative.
    keep_fractions: list of per-selector mean keep fractions (relative to
        tokens alive before that selector).
    cumulative_keep: list of per-selector mean keep ratios relative to
        the original patch count (what Table VI's "Keep Ratio" reports).
    tokens_per_stage: in gathered mode, list of arrays of per-image token
        counts after each selector.
    """

    def __init__(self):
        self.decisions = []
        self.scores = []
        self.alive_before = []
        self.attention_signals = []
        self.keep_fractions = []
        self.cumulative_keep = []
        self.tokens_per_stage = []

    def summary(self):
        return {
            "keep_fractions": list(self.keep_fractions),
            "cumulative_keep": list(self.cumulative_keep),
        }


class HeatViT(nn.Module):
    """A backbone ViT with :class:`TokenSelector` modules inserted.

    Parameters
    ----------
    backbone: a :class:`repro.vit.VisionTransformer` (its config is
        reused; weights may be pretrained).
    selector_blocks: mapping ``{block_index: keep_ratio}`` -- a selector
        is inserted *before* each listed block with the given target
        (average) keep ratio.
    tau: Gumbel-Softmax temperature shared by all selectors.
    use_packager: when False, non-informative tokens are discarded
        outright instead of consolidated (the IA-RED2/Evo-ViT style
        "adaptive discard" baseline and the packager ablation).
    """

    def __init__(self, backbone, selector_blocks, tau=1.0, rng=None,
                 use_packager=True, activation=None,
                 classifier_factory=None):
        super().__init__()
        rng = np.random.default_rng() if rng is None else rng
        self.use_packager = use_packager
        self.backbone = backbone
        self.config = backbone.config
        boundaries = sorted(selector_blocks)
        if any(b < 0 or b >= self.config.depth for b in boundaries):
            raise ValueError(
                f"selector block index out of range 0..{self.config.depth - 1}")
        self.selector_blocks = tuple(boundaries)
        self.keep_ratios_version = 0
        self.selectors = nn.ModuleList([
            TokenSelector(self.config.embed_dim, self.config.num_heads,
                          keep_ratio=selector_blocks[b], tau=tau, rng=rng,
                          activation=activation,
                          classifier=(classifier_factory(rng)
                                      if classifier_factory else None))
            for b in boundaries
        ])

    # ------------------------------------------------------------------
    @property
    def non_patch_slots(self):
        """Sequence slots that are not patch tokens: CLS (+ package).

        The shared convention for turning gathered token counts into
        patch keep ratios -- used by :meth:`finalize_pruned_record` and
        the engine's latency estimate.
        """
        return 2 if self.use_packager else 1

    @property
    def keep_ratios(self):
        return tuple(s.keep_ratio for s in self.selectors)

    def set_keep_ratios(self, ratios):
        if len(ratios) != len(self.selectors):
            raise ValueError("ratio count mismatch")
        for selector, ratio in zip(self.selectors, ratios):
            selector.keep_ratio = ratio
        # Serving sessions cache a latency estimate keyed on this
        # counter; bumping it here makes retuning self-invalidating.
        self.keep_ratios_version += 1

    def selector_for_block(self, block_index):
        position = self.selector_blocks.index(block_index)
        return self.selectors[position]

    # ------------------------------------------------------------------
    # Masked (training) path
    # ------------------------------------------------------------------
    def forward(self, images, record=None):
        """Masked forward pass; returns logits ``(B, num_classes)``.

        Pass a :class:`PruningRecord` to collect selector decisions for
        the latency-sparsity loss.
        """
        config = self.config
        num_patches = config.num_patches
        x = self.backbone.embed(images)                   # (B, 1+N, D)
        batch = x.shape[0]
        # Append the (initially masked) package slot.
        package_slot = Tensor(np.zeros((batch, 1, config.embed_dim)))
        x = Tensor.concatenate([x, package_slot], axis=1)  # (B, 2+N, D)

        patch_mask = Tensor(np.ones((batch, num_patches)))
        package_alive = np.zeros((batch, 1))
        selector_pos = {b: i for i, b in enumerate(self.selector_blocks)}

        for block_index, block in enumerate(self.backbone.blocks):
            if block_index in selector_pos:
                selector = self.selectors[selector_pos[block_index]]
                patches = x[:, 1:1 + num_patches, :]
                out = selector(patches, incoming_mask=patch_mask)
                if record is not None:
                    record.decisions.append(out.decision)
                    record.scores.append(out.keep_probs)
                    record.alive_before.append(patch_mask.data.copy())
                    record.attention_signals.append(
                        self._cls_attention_signal(block_index,
                                                   num_patches))
                    record.keep_fractions.append(
                        out.keep_fraction(patch_mask))
                    record.cumulative_keep.append(
                        float(out.decision.data.mean()))
                newly_pruned = (patch_mask.data - out.decision.data)
                patch_mask = out.decision
                if self.use_packager:
                    # Per image: replace the package with the newly
                    # pruned tokens' consolidation, or carry the old
                    # (evolving) package when nothing was pruned at this
                    # stage -- matching the gathered deployment path.
                    replace = (newly_pruned.sum(axis=1, keepdims=True)
                               > 0.5)                    # (B, 1)
                    old_slot = x[:, 1 + num_patches:, :]
                    package = out.package.where(replace[:, :, None],
                                                old_slot)
                    x = Tensor.concatenate(
                        [x[:, :1 + num_patches, :], package], axis=1)
                    package_alive = np.maximum(package_alive,
                                               replace.astype(np.float64))
            full_mask = Tensor.concatenate(
                [Tensor(np.ones((batch, 1))), patch_mask,
                 Tensor(package_alive)], axis=1)
            x = block(x, key_mask=full_mask)

        return self.backbone.classify(x)

    def _cls_attention_signal(self, block_index, num_patches):
        """Mean-over-heads CLS attention to patch tokens ``(B, N)``.

        Taken from the block preceding the selector; used as the
        ranking signal for the confidence (sharpening) loss.  Returns
        ``None`` for a selector before block 0 (no attention yet).
        """
        if block_index == 0:
            return None
        attn = self.backbone.blocks[block_index - 1].attn.last_attention
        if attn is None:
            return None
        return attn[:, :, 0, 1:1 + num_patches].mean(axis=1)

    # ------------------------------------------------------------------
    # Gathered (deployment) path
    # ------------------------------------------------------------------
    def forward_pruned(self, images, record=None):
        """Physically-pruned forward pass (deployment semantics).

        Processes images one at a time because each image keeps a
        different number of tokens (the whole point of image-adaptive
        pruning).  Returns logits ``(B, num_classes)``.
        """
        images = np.asarray(images.data if isinstance(images, Tensor)
                            else images)
        logits = []
        all_tokens_per_stage = None
        for index in range(images.shape[0]):
            single_logits, stage_tokens = self._forward_pruned_single(
                images[index:index + 1])
            logits.append(single_logits.data[0])
            if all_tokens_per_stage is None:
                all_tokens_per_stage = [[] for _ in stage_tokens]
            for stage, count in enumerate(stage_tokens):
                all_tokens_per_stage[stage].append(count)
        if record is not None and all_tokens_per_stage is not None:
            self.finalize_pruned_record(record, all_tokens_per_stage)
        return Tensor(np.stack(logits, axis=0))

    def finalize_pruned_record(self, record, tokens_per_stage):
        """Fill a :class:`PruningRecord` from per-stage token counts.

        ``tokens_per_stage`` is one sequence of per-image token counts
        (CLS and package included) per selector stage.  Shared by the
        reference loop above and the batched engine
        (:mod:`repro.engine`), so both report identical bookkeeping.
        """
        record.tokens_per_stage = [np.asarray(counts)
                                   for counts in tokens_per_stage]
        num_patches = self.config.num_patches
        extra = self.non_patch_slots
        record.cumulative_keep = [
            float(np.mean([max(c - extra, 0) / num_patches
                           for c in counts]))
            for counts in record.tokens_per_stage]
        return record

    def _forward_pruned_single(self, image):
        # Deployment semantics never read the recorded attention maps
        # (they only feed the masked path's ranking signal and Fig. 5
        # analysis), so skip the per-block (1, h, T, T) copies.
        with suppress_attention_recording(
                block.attn for block in self.backbone.blocks), nn.no_grad():
            x = self.backbone.embed(image)                # (1, 1+N, D)
            selector_pos = {b: i for i, b in enumerate(self.selector_blocks)}
            stage_tokens = []
            has_package = False
            for block_index, block in enumerate(self.backbone.blocks):
                if block_index in selector_pos:
                    selector = self.selectors[selector_pos[block_index]]
                    # Patch tokens = everything but CLS and the package.
                    stop = x.shape[1] - (1 if has_package else 0)
                    patches = x[:, 1:stop, :]
                    out = selector(patches, hard=False)
                    # The selector's internal guard ensures >= 1 keep.
                    keep = out.decision.data[0] > 0.5
                    sequence, has_package = prune_image_sequence(
                        x.data[0], keep, use_packager=self.use_packager,
                        has_package=has_package,
                        package=out.package.data[0, 0])
                    x = Tensor(sequence[None])
                    stage_tokens.append(x.shape[1])
                x = block(x)
            logits = self.backbone.classify(x)
        return logits, stage_tokens

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def measured_gmacs(self, images):
        """Average per-image GMACs under physical pruning.

        Uses the Table II per-block cost with the *actual* token counts
        each image retained -- the adaptive analogue of
        :func:`repro.vit.pruned_model_gmacs`.
        """
        record = PruningRecord()
        self.eval()
        self.forward_pruned(images, record=record)
        config = self.config
        base_tokens = config.num_tokens
        batch = record.tokens_per_stage[0].shape[0]
        per_image = np.zeros(batch)
        boundaries = list(self.selector_blocks)
        counts_by_stage = [np.full(batch, base_tokens)]
        counts_by_stage += list(record.tokens_per_stage)
        for block_index in range(config.depth):
            stage = sum(1 for b in boundaries if b <= block_index)
            tokens = counts_by_stage[stage]
            for image_index in range(batch):
                per_image[image_index] += block_macs(
                    int(tokens[image_index]), config.embed_dim,
                    config.num_heads, config.mlp_hidden_dim)
        for position, boundary in enumerate(boundaries):
            tokens = counts_by_stage[position]
            for image_index in range(batch):
                per_image[image_index] += token_selector_macs(
                    int(tokens[image_index]), config.embed_dim,
                    config.num_heads)
        patch_dim = config.in_channels * config.patch_size ** 2
        per_image += config.num_patches * patch_dim * config.embed_dim
        per_image += config.embed_dim * config.num_classes
        return per_image / 1e9

    def accuracy(self, images, labels, batch_size=64, pruned=False):
        """Top-1 accuracy; ``pruned=True`` uses deployment semantics."""
        labels = np.asarray(labels)
        self.eval()
        correct = 0
        for start in range(0, len(labels), batch_size):
            batch = images[start:start + batch_size]
            if pruned:
                logits = self.forward_pruned(batch)
            else:
                with nn.no_grad():
                    logits = self.forward(batch)
            preds = logits.data.argmax(axis=-1)
            correct += int((preds == labels[start:start + batch_size]).sum())
        return correct / len(labels)
