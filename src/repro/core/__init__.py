"""HeatViT core: adaptive token selector, model wrapper, training strategy."""

from repro.core.ablations import (SingleHeadTokenClassifier,
                                  UniformHeadSelector,
                                  make_single_head_factory)
from repro.core.gather import (gather_kept_tokens, prune_image_sequence,
                               weighted_package)
from repro.core.heatvit import HeatViT, PruningRecord
from repro.core.latency import (LatencySparsityTable, confidence_loss,
                                latency_from_stage_counts,
                                latency_sparsity_loss, paper_latency_table,
                                ratios_for_latency_budget)
from repro.core.selector import (AttentionBranch, ConvTokenClassifier,
                                 MultiHeadTokenClassifier, SelectorOutput,
                                 TokenSelector)
from repro.core.training import (BlockToStageTrainer, EpochStats,
                                 InsertionTrace, TrainConfig, TrainingReport,
                                 consolidate_stages, heatvit_loss,
                                 iterate_minibatches, train_backbone,
                                 train_heatvit)

__all__ = [
    "HeatViT", "PruningRecord",
    "TokenSelector", "MultiHeadTokenClassifier", "ConvTokenClassifier",
    "AttentionBranch", "SelectorOutput",
    "LatencySparsityTable", "paper_latency_table", "latency_sparsity_loss",
    "confidence_loss", "ratios_for_latency_budget",
    "latency_from_stage_counts",
    "gather_kept_tokens", "prune_image_sequence", "weighted_package",
    "TrainConfig", "EpochStats", "train_backbone", "train_heatvit",
    "heatvit_loss", "iterate_minibatches",
    "BlockToStageTrainer", "InsertionTrace", "TrainingReport",
    "consolidate_stages",
    "SingleHeadTokenClassifier", "UniformHeadSelector",
    "make_single_head_factory",
]
