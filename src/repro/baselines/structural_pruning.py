"""Structural pruning baselines: attention heads and token channels.

The paper (Sec. II-B) contrasts token pruning with the two weight-side
structured alternatives and argues both are less efficient:

* **Head pruning** (S2ViTE/VTP-like) removes entire attention heads;
  the heads contribute < 43% of total compute, capping the reachable
  reduction, and accuracy falls quickly.
* **Token-channel pruning** (UP-DeiT/UVC-like) removes embedding
  dimensions uniformly across tokens, which is hard to push far without
  accuracy collapse.

Both are implemented as mask wrappers over a trained backbone so the
accuracy-vs-GMACs trade-off can be swept without retraining
infrastructure; GMAC accounting mirrors Table II with the reduced
``h`` / ``D`` dimensions.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor
from repro.vit.complexity import block_macs

__all__ = ["HeadPrunedViT", "ChannelPrunedViT", "head_pruned_gmacs",
           "channel_pruned_gmacs", "rank_heads_by_importance",
           "rank_channels_by_importance"]


def rank_heads_by_importance(backbone, images):
    """Rank (block, head) pairs by mean CLS attention mass (ascending).

    Heads whose class token attends weakly to patches are pruned first.
    """
    with nn.no_grad():
        backbone.forward(images)
    importance = []
    for block_index, block in enumerate(backbone.blocks):
        cls_attn = block.attn.cls_attention()     # (B, h, N)
        per_head = cls_attn[:, :, 1:].mean(axis=(0, 2))
        for head_index, value in enumerate(per_head):
            importance.append(((block_index, head_index), float(value)))
    importance.sort(key=lambda item: item[1])
    return [pair for pair, _ in importance]


def rank_channels_by_importance(backbone):
    """Rank embedding channels by the L1 norm of all weights that read
    them (ascending -- weakest channels first)."""
    dim = backbone.config.embed_dim
    norms = np.zeros(dim)
    for block in backbone.blocks:
        norms += np.abs(block.attn.qkv.weight.data).sum(axis=1)
        norms += np.abs(block.mlp.fc1.weight.data).sum(axis=1)
    return list(np.argsort(norms))


class HeadPrunedViT(nn.Module):
    """Backbone with a set of attention heads masked to zero output."""

    def __init__(self, backbone, pruned_heads):
        super().__init__()
        self.backbone = backbone
        self.config = backbone.config
        self.pruned_heads = set(map(tuple, pruned_heads))
        bad = [p for p in self.pruned_heads
               if not (0 <= p[0] < self.config.depth
                       and 0 <= p[1] < self.config.num_heads)]
        if bad:
            raise ValueError(f"invalid head ids: {bad}")

    def forward(self, images):
        config = self.config
        with nn.no_grad():
            x = self.backbone.embed(images)
            for block_index, block in enumerate(self.backbone.blocks):
                pruned = [h for (b, h) in self.pruned_heads
                          if b == block_index]
                if not pruned:
                    x = block(x)
                    continue
                x = x + self._masked_attention(block, x, pruned)
                x = x + block.mlp(block.norm2(x))
            x = self.backbone.norm(x)
            return self.backbone.head(x[:, 0, :])

    @staticmethod
    def _masked_attention(block, x, pruned_heads):
        """Run MSA with the given heads' outputs zeroed."""
        attn = block.attn
        normed = block.norm1(x)
        batch, tokens, dim = normed.shape
        qkv = attn.qkv(normed)
        qkv = qkv.reshape(batch, tokens, 3, attn.num_heads, attn.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]
        from repro.nn import functional as F
        scores = (q @ k.swapaxes(-1, -2)) * attn.scale
        weights = F.softmax(scores, axis=-1)
        out = weights @ v                              # (B, h, N, d)
        mask = np.ones((1, attn.num_heads, 1, 1))
        mask[0, pruned_heads] = 0.0
        out = out * Tensor(mask)
        out = out.transpose(0, 2, 1, 3).reshape(batch, tokens, dim)
        return attn.proj(out)

    def accuracy(self, images, labels, batch_size=64):
        return _masked_accuracy(self, images, labels, batch_size)

    def gmacs(self):
        return head_pruned_gmacs(self.config, len(self.pruned_heads))


class ChannelPrunedViT(nn.Module):
    """Backbone with the weakest embedding channels zeroed everywhere."""

    def __init__(self, backbone, pruned_channels):
        super().__init__()
        self.backbone = backbone
        self.config = backbone.config
        self.pruned_channels = sorted(set(int(c) for c in pruned_channels))
        if any(c < 0 or c >= self.config.embed_dim
               for c in self.pruned_channels):
            raise ValueError("channel index out of range")
        mask = np.ones(self.config.embed_dim)
        mask[self.pruned_channels] = 0.0
        self._mask = mask

    def forward(self, images):
        with nn.no_grad():
            x = self.backbone.embed(images) * Tensor(self._mask)
            for block in self.backbone.blocks:
                x = block(x) * Tensor(self._mask)
            x = self.backbone.norm(x)
            return self.backbone.head(x[:, 0, :])

    def accuracy(self, images, labels, batch_size=64):
        return _masked_accuracy(self, images, labels, batch_size)

    def gmacs(self):
        return channel_pruned_gmacs(self.config,
                                    len(self.pruned_channels))


def _masked_accuracy(model, images, labels, batch_size):
    labels = np.asarray(labels)
    correct = 0
    for start in range(0, len(labels), batch_size):
        logits = model.forward(images[start:start + batch_size])
        preds = logits.data.argmax(axis=-1)
        correct += int((preds == labels[start:start + batch_size]).sum())
    return correct / len(labels)


def head_pruned_gmacs(config, total_pruned_heads):
    """GMACs when ``total_pruned_heads`` heads are removed model-wide.

    Pruned heads skip their share of the QKV transform, the attention
    GEMMs, and the projection; the FFN is untouched -- which is exactly
    why head pruning saturates (< 43% of compute is in the heads).
    """
    per_block_pruned = total_pruned_heads / config.depth
    n = config.num_tokens
    d_attn = config.head_dim
    keep_h = config.num_heads - per_block_pruned
    attn_macs = (4 * n * config.embed_dim * d_attn * keep_h
                 + 2 * n * n * d_attn * keep_h)
    ffn_macs = 2 * n * config.embed_dim * config.mlp_hidden_dim
    total = config.depth * (attn_macs + ffn_macs)
    patch_dim = config.in_channels * config.patch_size ** 2
    total += config.num_patches * patch_dim * config.embed_dim
    total += config.embed_dim * config.num_classes
    return total / 1e9


def channel_pruned_gmacs(config, pruned_channels):
    """GMACs when ``pruned_channels`` embedding dims are removed."""
    keep = config.embed_dim - pruned_channels
    scale = keep / config.embed_dim
    n = config.num_tokens
    # Dch shrinks; head sub-dims shrink proportionally.
    per_block = block_macs(n, config.embed_dim, config.num_heads,
                           config.mlp_hidden_dim)
    # Linear layers scale ~quadratically (both fan-in and fan-out),
    # attention GEMMs linearly in the head dim.
    linear_part = (4 * n * config.embed_dim ** 2
                   + 2 * n * config.embed_dim * config.mlp_hidden_dim)
    attn_part = 2 * n * n * config.embed_dim
    pruned_block = linear_part * scale ** 2 + attn_part * scale
    total = config.depth * pruned_block
    patch_dim = config.in_channels * config.patch_size ** 2
    total += config.num_patches * patch_dim * config.embed_dim * scale
    total += config.embed_dim * scale * config.num_classes
    return total / 1e9
