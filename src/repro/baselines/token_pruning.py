"""Token-pruning baselines: static top-k and EViT-style fusion.

These represent the two families the paper compares against (Table I):

* **Static token pruning** (DynamicViT / PS-ViT / ATS-like evaluation
  setting): a *fixed* fraction of tokens is kept at each stage for every
  image, ranked by the class token's mean attention.
* **EViT-style token reorganization**: same static ranking, but the
  pruned tokens are fused into one extra token weighted by their
  attention (the `fuse_pruned=True` mode).

Both reuse the backbone's recorded CLS attention, so they need no extra
parameters or training -- matching how these methods are typically
applied to a pretrained ViT before fine-tuning.
"""

from __future__ import annotations

import math

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor
from repro.vit.complexity import StagePlan, pruned_model_gmacs

__all__ = ["StaticTokenPruningViT", "EViTStyleModel"]


class StaticTokenPruningViT(nn.Module):
    """Backbone + fixed-ratio top-k token pruning at stage boundaries.

    Parameters
    ----------
    backbone: a trained :class:`repro.vit.VisionTransformer`.
    stage_plan: :class:`repro.vit.StagePlan` -- boundaries and *fixed*
        cumulative keep ratios (identical for every image).
    fuse_pruned: EViT-style fusion of pruned tokens into one token
        (weighted by CLS attention) instead of discarding them.
    """

    def __init__(self, backbone, stage_plan, fuse_pruned=False):
        super().__init__()
        self.backbone = backbone
        self.config = backbone.config
        self.stage_plan = stage_plan
        self.fuse_pruned = fuse_pruned

    # ------------------------------------------------------------------
    def forward(self, images):
        """Batched inference with physical token removal.

        All images keep the same token count (static pruning), so the
        whole batch can be gathered at once.
        """
        config = self.config
        boundaries = {b: r for b, r in zip(self.stage_plan.boundaries,
                                           self.stage_plan.keep_ratios)}
        with nn.no_grad():
            x = self.backbone.embed(images)
            has_fused = False
            prev_keep = 1.0
            for block_index, block in enumerate(self.backbone.blocks):
                if block_index in boundaries:
                    cumulative = boundaries[block_index]
                    stage_ratio = min(1.0, cumulative / prev_keep)
                    prev_keep = cumulative
                    x, has_fused = self._prune(x, stage_ratio, block_index,
                                               has_fused)
                x = block(x)
            x = self.backbone.norm(x)
            return self.backbone.head(x[:, 0, :])

    def _prune(self, x, stage_ratio, block_index, has_fused):
        """Keep the top ``stage_ratio`` patch tokens by CLS attention."""
        config = self.config
        previous = self.backbone.blocks[block_index - 1]
        cls_attn = previous.attn.cls_attention()       # (B, h, N_total)
        scores = cls_attn.mean(axis=1)[:, 1:]          # patch+fused scores
        if has_fused:
            scores = scores[:, :-1]                    # never rank the fused
        patch_count = scores.shape[1]
        keep_count = max(1, math.ceil(stage_ratio * patch_count))
        order = np.argsort(-scores, axis=1)
        keep_idx = np.sort(order[:, :keep_count], axis=1)
        drop_idx = np.sort(order[:, keep_count:], axis=1)

        batch = x.shape[0]
        rows = np.arange(batch)[:, None]
        patches = x[:, 1:1 + patch_count, :]
        kept = patches[rows, keep_idx]                 # (B, K, D)
        pieces = [x[:, :1, :], kept]
        if self.fuse_pruned and drop_idx.shape[1]:
            dropped = patches[rows, drop_idx].data
            weights = np.take_along_axis(scores, drop_idx, axis=1)
            weights = weights / np.maximum(
                weights.sum(axis=1, keepdims=True), 1e-8)
            fused = (dropped * weights[..., None]).sum(axis=1,
                                                       keepdims=True)
            pieces.append(Tensor(fused))
            has_fused = True
        elif has_fused:
            pieces.append(x[:, -1:, :])                # carry old fused
        return Tensor.concatenate(pieces, axis=1), has_fused

    # ------------------------------------------------------------------
    def gmacs(self):
        """Analytical GMACs (no selector overhead: ranking is free-ish)."""
        return pruned_model_gmacs(self.config, self.stage_plan,
                                  include_selectors=False)

    def accuracy(self, images, labels, batch_size=64):
        labels = np.asarray(labels)
        correct = 0
        for start in range(0, len(labels), batch_size):
            logits = self.forward(images[start:start + batch_size])
            preds = logits.data.argmax(axis=-1)
            correct += int((preds == labels[start:start + batch_size]).sum())
        return correct / len(labels)


class EViTStyleModel(StaticTokenPruningViT):
    """EViT: static top-k by CLS attention with fused pruned token."""

    def __init__(self, backbone, stage_plan):
        super().__init__(backbone, stage_plan, fuse_pruned=True)
