"""Competing pruning methods used as comparison points (Fig. 2, Table I)."""

from repro.baselines.structural_pruning import (ChannelPrunedViT,
                                                HeadPrunedViT,
                                                channel_pruned_gmacs,
                                                head_pruned_gmacs,
                                                rank_channels_by_importance,
                                                rank_heads_by_importance)
from repro.baselines.token_pruning import EViTStyleModel, StaticTokenPruningViT

__all__ = [
    "StaticTokenPruningViT", "EViTStyleModel",
    "HeadPrunedViT", "ChannelPrunedViT",
    "head_pruned_gmacs", "channel_pruned_gmacs",
    "rank_heads_by_importance", "rank_channels_by_importance",
]
