"""Reverse-mode automatic differentiation over numpy arrays.

This module is the training substrate for the whole reproduction.  The
paper trains token selectors with PyTorch; here we provide a compact but
complete autograd engine so that the multi-head token classifier, the
attention-based branch, and the Gumbel-Softmax decision can all be trained
end-to-end with exact gradients.

The design follows the classic tape-based approach: every ``Tensor``
records the operation that produced it and a backward closure; calling
``Tensor.backward()`` performs a topological sort of the graph and
accumulates gradients.  Broadcasting is fully supported -- gradients of
broadcast operands are reduced back to the operand's shape.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


def is_grad_enabled():
    """Return True when new operations will be recorded on the tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad, shape):
    """Reduce ``grad`` so its shape matches ``shape`` after broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=np.float64):
    if isinstance(value, Tensor):
        raise TypeError("expected a raw array-like, got a Tensor")
    return np.asarray(value, dtype=dtype)


class Tensor:
    """An n-dimensional array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like payload; stored as ``float64`` for gradient-check
        friendliness (the models here are small, so precision beats speed).
    requires_grad:
        Whether gradients should be accumulated into ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(self, data, requires_grad=False):
        if isinstance(data, Tensor):
            data = data.data
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad = None
        self._backward = None
        self._parents = ()
        self._op = ""

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data, parents, backward, op):
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
            out._op = op
        return out

    @staticmethod
    def ensure(value):
        """Coerce ``value`` (Tensor or array-like) into a Tensor."""
        return value if isinstance(value, Tensor) else Tensor(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self):
        return self.transpose()

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{flag})"

    def item(self):
        return self.data.item()

    def numpy(self):
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self):
        """Return a new Tensor sharing data but cut from the graph."""
        t = Tensor(self.data)
        return t

    def zero_grad(self):
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = Tensor.ensure(other)
        out_data = self.data + other.data

        def backward(grad):
            return (_unbroadcast(grad, self.shape),
                    _unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other):
        other = Tensor.ensure(other)
        out_data = self.data - other.data

        def backward(grad):
            return (_unbroadcast(grad, self.shape),
                    _unbroadcast(-grad, other.shape))

        return Tensor._make(out_data, (self, other), backward, "sub")

    def __rsub__(self, other):
        return Tensor.ensure(other) - self

    def __mul__(self, other):
        other = Tensor.ensure(other)
        out_data = self.data * other.data

        def backward(grad):
            return (_unbroadcast(grad * other.data, self.shape),
                    _unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = Tensor.ensure(other)
        out_data = self.data / other.data

        def backward(grad):
            return (_unbroadcast(grad / other.data, self.shape),
                    _unbroadcast(-grad * self.data / (other.data ** 2),
                                 other.shape))

        return Tensor._make(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other):
        return Tensor.ensure(other) / self

    def __pow__(self, exponent):
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._make(out_data, (self,), backward, "pow")

    def __matmul__(self, other):
        other = Tensor.ensure(other)
        # Promote 1-D operands to 2-D and recurse; reshape is differentiable
        # so the gradients flow back to the original shapes automatically.
        if self.ndim == 1 and other.ndim == 1:
            return (self.reshape(1, -1) @ other.reshape(-1, 1)).reshape(())
        if self.ndim == 1:
            out = self.reshape(1, -1) @ other
            return out.reshape(out.shape[:-2] + out.shape[-1:])
        if other.ndim == 1:
            out = self @ other.reshape(-1, 1)
            return out.reshape(out.shape[:-1])

        out_data = self.data @ other.data

        def backward(grad):
            a, b = self.data, other.data
            ga = _unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape)
            gb = _unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape)
            return (ga, gb)

        return Tensor._make(out_data, (self, other), backward, "matmul")

    # ------------------------------------------------------------------
    # Comparison (returns plain numpy; comparisons are not differentiable)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old_shape = self.shape
        out_data = self.data.reshape(shape)

        def backward(grad):
            return (grad.reshape(old_shape),)

        return Tensor._make(out_data, (self,), backward, "reshape")

    def transpose(self, *axes):
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad):
            return (grad.transpose(inverse),)

        return Tensor._make(out_data, (self,), backward, "transpose")

    def swapaxes(self, axis1, axis2):
        out_data = np.swapaxes(self.data, axis1, axis2)

        def backward(grad):
            return (np.swapaxes(grad, axis1, axis2),)

        return Tensor._make(out_data, (self,), backward, "swapaxes")

    def __getitem__(self, index):
        out_data = self.data[index]
        shape = self.shape

        def backward(grad):
            full = np.zeros(shape, dtype=grad.dtype)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor._make(out_data, (self,), backward, "getitem")

    @staticmethod
    def concatenate(tensors, axis=0):
        tensors = [Tensor.ensure(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        splits = np.cumsum(sizes)[:-1]

        def backward(grad):
            return tuple(np.split(grad, splits, axis=axis))

        return Tensor._make(out_data, tuple(tensors), backward, "concat")

    @staticmethod
    def stack(tensors, axis=0):
        tensors = [Tensor.ensure(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad):
            pieces = np.split(grad, len(tensors), axis=axis)
            return tuple(np.squeeze(p, axis=axis) for p in pieces)

        return Tensor._make(out_data, tuple(tensors), backward, "stack")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims=False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(grad):
            if axis is None:
                return (np.broadcast_to(grad, shape).copy(),)
            g = grad
            if not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, shape).copy(),)

        return Tensor._make(out_data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims=False):
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / count

    def var(self, axis=None, keepdims=False):
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims=False):
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if axis is None:
                mask = (self.data == out_data)
                g = grad * mask / mask.sum()
                return (g,)
            expanded = out_data if keepdims else np.expand_dims(out_data, axis)
            mask = (self.data == expanded)
            g = grad if keepdims else np.expand_dims(grad, axis)
            counts = mask.sum(axis=axis, keepdims=True)
            return (mask * g / counts,)

        return Tensor._make(out_data, (self,), backward, "max")

    # ------------------------------------------------------------------
    # Elementwise math
    # ------------------------------------------------------------------
    def exp(self):
        out_data = np.exp(self.data)

        def backward(grad):
            return (grad * out_data,)

        return Tensor._make(out_data, (self,), backward, "exp")

    def log(self):
        out_data = np.log(self.data)

        def backward(grad):
            return (grad / self.data,)

        return Tensor._make(out_data, (self,), backward, "log")

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(grad):
            return (grad * 0.5 / out_data,)

        return Tensor._make(out_data, (self,), backward, "sqrt")

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            return (grad * (1.0 - out_data ** 2),)

        return Tensor._make(out_data, (self,), backward, "tanh")

    def clip(self, min_value=None, max_value=None):
        out_data = np.clip(self.data, min_value, max_value)

        def backward(grad):
            mask = np.ones_like(self.data)
            if min_value is not None:
                mask = mask * (self.data >= min_value)
            if max_value is not None:
                mask = mask * (self.data <= max_value)
            return (grad * mask,)

        return Tensor._make(out_data, (self,), backward, "clip")

    def abs(self):
        out_data = np.abs(self.data)

        def backward(grad):
            return (grad * np.sign(self.data),)

        return Tensor._make(out_data, (self,), backward, "abs")

    def where(self, condition, other):
        """Select ``self`` where ``condition`` else ``other`` (condition is
        a plain boolean array and is treated as a constant)."""
        other = Tensor.ensure(other)
        cond = np.asarray(condition)
        out_data = np.where(cond, self.data, other.data)

        def backward(grad):
            return (_unbroadcast(grad * cond, self.shape),
                    _unbroadcast(grad * ~cond, other.shape))

        return Tensor._make(out_data, (self, other), backward, "where")

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad=None):
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (so scalar losses need no argument).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        order = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate.
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad
