"""Neural-network substrate: autodiff tensors, layers, and optimizers.

The paper builds on PyTorch; this package is the from-scratch equivalent
used by every other subsystem in the reproduction.
"""

from repro.nn import functional
from repro.nn.init import (default_rng, kaiming_uniform, trunc_normal,
                           xavier_uniform)
from repro.nn.layers import (GELU, Conv2d, Dropout, Hardswish, Identity,
                             LayerNorm, Linear, ReLU, Sigmoid, Softmax)
from repro.nn.module import Module, ModuleList, Parameter, Sequential
from repro.nn.serialization import (load_checkpoint, load_into,
                                    save_checkpoint)
from repro.nn.optim import (SGD, Adam, AdamW, CosineSchedule, Optimizer,
                            clip_grad_norm)
from repro.nn.tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled", "functional",
    "Module", "ModuleList", "Parameter", "Sequential",
    "Linear", "LayerNorm", "Dropout", "Identity", "Conv2d",
    "GELU", "ReLU", "Hardswish", "Sigmoid", "Softmax",
    "Optimizer", "SGD", "Adam", "AdamW", "CosineSchedule", "clip_grad_norm",
    "default_rng", "trunc_normal", "xavier_uniform", "kaiming_uniform",
    "save_checkpoint", "load_checkpoint", "load_into",
]
