"""Module/Parameter abstractions, mirroring the familiar torch.nn API.

Modules own named parameters and submodules, support train/eval modes,
and expose ``state_dict``/``load_state_dict`` for checkpointing the
multi-stage training pipeline.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A Tensor that is registered as trainable state of a Module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        # Parameters are leaves regardless of the grad-enabled state at
        # construction time.
        self.requires_grad = True


class Module:
    """Base class for all neural network modules."""

    def __init__(self):
        self._parameters = OrderedDict()
        self._modules = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())
            self._parameters[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name, module):
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix=""):
        for name, param in self._parameters.items():
            yield (prefix + name, param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix + mod_name + ".")

    def parameters(self):
        for _, param in self.named_parameters():
            yield param

    def named_modules(self, prefix=""):
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix + name + ".")

    def modules(self):
        for _, module in self.named_modules():
            yield module

    def children(self):
        return iter(self._modules.values())

    def num_parameters(self):
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes and gradients
    # ------------------------------------------------------------------
    def train(self, mode=True):
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self):
        return self.train(False)

    def zero_grad(self):
        for param in self.parameters():
            param.grad = None

    def freeze(self):
        """Stop gradient accumulation into this module's parameters."""
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self):
        for param in self.parameters():
            param.requires_grad = True
        return self

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self):
        return OrderedDict(
            (name, param.data.copy()) for name, param in self.named_parameters())

    def load_state_dict(self, state):
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}")
        for name, values in state.items():
            target = own[name]
            values = np.asarray(values)
            if target.data.shape != values.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{target.data.shape} vs {values.shape}")
            target.data = values.copy()

    # ------------------------------------------------------------------
    # Calling
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules):
        super().__init__()
        self._order = []
        for i, module in enumerate(modules):
            name = str(i)
            self.register_module(name, module)
            self._order.append(name)

    def __iter__(self):
        return (self._modules[name] for name in self._order)

    def __len__(self):
        return len(self._order)

    def __getitem__(self, index):
        return self._modules[self._order[index]]

    def forward(self, x):
        for name in self._order:
            x = self._modules[name](x)
        return x


class ModuleList(Module):
    """List container that registers its items as submodules."""

    def __init__(self, modules=()):
        super().__init__()
        self._order = []
        for module in modules:
            self.append(module)

    def append(self, module):
        name = str(len(self._order))
        self.register_module(name, module)
        self._order.append(name)
        return self

    def __iter__(self):
        return (self._modules[name] for name in self._order)

    def __len__(self):
        return len(self._order)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._modules[name] for name in self._order[index]]
        return self._modules[self._order[index]]
