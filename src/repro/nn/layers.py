"""Core layers: Linear, LayerNorm, Dropout, activations, and a small Conv2d.

Linear layers are deliberately the workhorse everywhere (including the
token selector) because the paper reuses the FPGA GEMM engine for them;
Conv2d exists only so the Fig. 12 selector-structure ablation can compare
against a convolution-based selector.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = [
    "Linear",
    "LayerNorm",
    "Dropout",
    "Identity",
    "GELU",
    "ReLU",
    "Hardswish",
    "Sigmoid",
    "Softmax",
    "Conv2d",
]


class Linear(Module):
    """Fully-connected layer ``y = x W + b`` (GEMM on the accelerator).

    ``weight_init`` selects the initializer: ``"trunc_normal"`` (DeiT's
    std=0.02 scheme, right for deep residual backbones) or ``"kaiming"``
    (fan-in uniform, right for small non-residual MLP heads such as the
    token selector, where 0.02-scale weights starve gradients).
    """

    def __init__(self, in_features, out_features, bias=True, rng=None,
                 weight_init="trunc_normal"):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        if weight_init == "trunc_normal":
            weights = init.trunc_normal((in_features, out_features),
                                        std=0.02, rng=rng)
        elif weight_init == "kaiming":
            weights = init.kaiming_uniform((in_features, out_features),
                                           rng=rng)
        else:
            raise ValueError(f"unknown weight_init {weight_init!r}")
        self.weight = Parameter(weights)
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x):
        x = Tensor.ensure(x)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self):
        return (f"Linear(in={self.in_features}, out={self.out_features}, "
                f"bias={self.bias is not None})")


class LayerNorm(Module):
    """LayerNorm over the last dimension (runs on the ARM CPU in HeatViT)."""

    def __init__(self, normalized_shape, eps=1e-6):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(init.ones(normalized_shape))
        self.bias = Parameter(init.zeros(normalized_shape))

    def forward(self, x):
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def __repr__(self):
        return f"LayerNorm({self.normalized_shape}, eps={self.eps})"


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p=0.0, rng=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1): {p}")
        self.p = p
        self._rng = np.random.default_rng() if rng is None else rng

    def forward(self, x):
        if not self.training or self.p == 0.0:
            return Tensor.ensure(x)
        x = Tensor.ensure(x)
        keep = 1.0 - self.p
        mask = (self._rng.uniform(size=x.shape) < keep) / keep
        return x * Tensor(mask)


class Identity(Module):
    def forward(self, x):
        return Tensor.ensure(x)


class GELU(Module):
    def forward(self, x):
        return F.gelu(x)


class ReLU(Module):
    def forward(self, x):
        return F.relu(x)


class Hardswish(Module):
    def forward(self, x):
        return F.hardswish(x)


class Sigmoid(Module):
    def forward(self, x):
        return F.sigmoid(x)


class Softmax(Module):
    def __init__(self, axis=-1):
        super().__init__()
        self.axis = axis

    def forward(self, x):
        return F.softmax(x, axis=self.axis)


class Conv2d(Module):
    """Minimal 2-D convolution via im2col (stride/padding supported).

    Only used by the convolution-based token selector in the Fig. 12
    ablation and by the patch-embedding layer (where it degenerates to a
    strided reshape + GEMM).
    """

    def __init__(self, in_channels, out_channels, kernel_size, stride=1,
                 padding=0, bias=True, rng=None):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kernel_size if isinstance(kernel_size, tuple)
                            else (kernel_size, kernel_size))
        self.stride = stride if isinstance(stride, tuple) else (stride, stride)
        self.padding = (padding if isinstance(padding, tuple)
                        else (padding, padding))
        kh, kw = self.kernel_size
        fan = in_channels * kh * kw
        self.weight = Parameter(
            init.kaiming_uniform((fan, out_channels), rng=rng))
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x):
        """x: (B, C, H, W) -> (B, out_channels, H', W')."""
        x = Tensor.ensure(x)
        batch, channels, height, width = x.shape
        kh, kw = self.kernel_size
        sh, sw = self.stride
        ph, pw = self.padding
        out_h = (height + 2 * ph - kh) // sh + 1
        out_w = (width + 2 * pw - kw) // sw + 1

        cols = _im2col(x, kh, kw, sh, sw, ph, pw, out_h, out_w)
        out = cols @ self.weight          # (B, oh*ow, C*kh*kw) @ -> out_ch
        if self.bias is not None:
            out = out + self.bias
        out = out.reshape(batch, out_h, out_w, self.out_channels)
        return out.transpose(0, 3, 1, 2)


def _im2col(x, kh, kw, sh, sw, ph, pw, out_h, out_w):
    """Differentiable im2col built from pad + strided gather."""
    batch, channels, height, width = x.shape
    if ph or pw:
        padded_shape = (batch, channels, height + 2 * ph, width + 2 * pw)
        pad_data = np.zeros(padded_shape)

        def backward(grad):
            return (grad[:, :, ph:ph + height, pw:pw + width],)

        pad_data[:, :, ph:ph + height, pw:pw + width] = x.data
        x = Tensor._make(pad_data, (x,), backward, "pad")
    # Build gather indices once; __getitem__ handles the gradient.
    rows = (np.arange(out_h) * sh)[:, None] + np.arange(kh)[None, :]
    cols = (np.arange(out_w) * sw)[:, None] + np.arange(kw)[None, :]
    # x[:, :, rows, cols] with broadcasting: index arrays shaped
    # (out_h, 1, kh, 1) and (1, out_w, 1, kw).
    r_idx = rows[:, None, :, None]
    c_idx = cols[None, :, None, :]
    patches = x[:, :, r_idx, c_idx]       # (B, C, oh, ow, kh, kw)
    patches = patches.transpose(0, 2, 3, 1, 4, 5)
    return patches.reshape(x.shape[0], out_h * out_w, -1)
