"""Checkpoint serialization for Modules (``.npz`` based).

Algorithm 1 repeatedly fine-tunes and occasionally restarts from the
end of a previous step ("Initialize the model and selectors from the
end of the last Step 1"), so durable checkpoints are part of the
training substrate.  Checkpoints store the flat ``state_dict`` plus a
small JSON metadata blob (step counters, keep ratios, anything
JSON-serializable).
"""

from __future__ import annotations

import json
import os

import numpy as np

__all__ = ["save_checkpoint", "load_checkpoint", "load_into"]

_META_KEY = "__checkpoint_metadata__"


def save_checkpoint(path, module, metadata=None):
    """Write ``module.state_dict()`` (+ optional metadata) to ``path``.

    The file is written atomically (temp file + rename) so a crash
    mid-save never corrupts the previous checkpoint.
    """
    state = module.state_dict()
    if _META_KEY in state:
        raise ValueError(f"parameter name collides with {_META_KEY!r}")
    payload = dict(state)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    temp_path = path + ".tmp"
    with open(temp_path, "wb") as handle:
        np.savez(handle, **payload)
    os.replace(temp_path, path)
    return path


def load_checkpoint(path):
    """Read a checkpoint; returns ``(state_dict, metadata)``."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files
                 if name != _META_KEY}
        metadata = {}
        if _META_KEY in archive.files:
            raw = bytes(archive[_META_KEY].tobytes())
            metadata = json.loads(raw.decode("utf-8"))
    return state, metadata


def load_into(path, module):
    """Load a checkpoint's weights into ``module``; returns metadata."""
    state, metadata = load_checkpoint(path)
    module.load_state_dict(state)
    return metadata
