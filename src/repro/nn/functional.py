"""Differentiable functional operations used throughout the reproduction.

Every function here accepts and returns :class:`repro.nn.Tensor` and is
exercised by gradient-check tests against finite differences.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro.nn.tensor import Tensor

__all__ = [
    "erf",
    "gelu",
    "relu",
    "hardswish",
    "sigmoid",
    "softmax",
    "log_softmax",
    "layer_norm",
    "one_hot",
    "gumbel_softmax",
    "cross_entropy",
    "kl_divergence",
    "mse_loss",
]

_SQRT_2 = np.sqrt(2.0)
_SQRT_2_OVER_PI = np.sqrt(2.0 / np.pi)


def erf(x):
    """Gauss error function, the exact one used by GELU (paper Eq. 12)."""
    x = Tensor.ensure(x)
    out_data = special.erf(x.data)

    def backward(grad):
        return (grad * (2.0 / np.sqrt(np.pi)) * np.exp(-x.data ** 2),)

    return Tensor._make(out_data, (x,), backward, "erf")


def gelu(x):
    """Exact GELU activation: ``x/2 * (1 + erf(x / sqrt(2)))``."""
    x = Tensor.ensure(x)
    return x * 0.5 * (erf(x / _SQRT_2) + 1.0)


def relu(x):
    x = Tensor.ensure(x)
    out_data = np.maximum(x.data, 0.0)

    def backward(grad):
        return (grad * (x.data > 0.0),)

    return Tensor._make(out_data, (x,), backward, "relu")


def hardswish(x):
    """Hardswish from MobileNetV3: ``x * relu6(x + 3) / 6``."""
    x = Tensor.ensure(x)
    inner = (x + 3.0).clip(0.0, 6.0)
    return x * inner / 6.0


def sigmoid(x):
    x = Tensor.ensure(x)
    out_data = special.expit(x.data)

    def backward(grad):
        return (grad * out_data * (1.0 - out_data),)

    return Tensor._make(out_data, (x,), backward, "sigmoid")


def softmax(x, axis=-1):
    """Numerically stable softmax along ``axis``."""
    x = Tensor.ensure(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x, axis=-1):
    x = Tensor.ensure(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def layer_norm(x, weight, bias, eps=1e-6):
    """Layer normalization over the last dimension.

    The paper leaves LayerNorm on the ARM CPU of the ZCU102 (Section V);
    algorithmically it is the standard affine normalization.
    """
    x = Tensor.ensure(x)
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normed = (x - mu) / (var + eps).sqrt()
    return normed * weight + bias


def one_hot(indices, num_classes):
    """Return a constant one-hot float array (not differentiable)."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def gumbel_softmax(logits, tau=1.0, hard=True, axis=-1, rng=None):
    """Gumbel-Softmax with the straight-through estimator (paper Eq. 9).

    ``hard=True`` returns one-hot samples in the forward pass while
    gradients flow through the soft relaxation -- exactly the trick the
    paper uses to make the binary keep/prune decision trainable.
    """
    logits = Tensor.ensure(logits)
    rng = np.random.default_rng() if rng is None else rng
    uniform = rng.uniform(low=np.finfo(np.float64).tiny, high=1.0,
                          size=logits.shape)
    gumbel_noise = -np.log(-np.log(uniform))
    noisy = (logits + Tensor(gumbel_noise)) / tau
    soft = softmax(noisy, axis=axis)
    if not hard:
        return soft
    index = soft.data.argmax(axis=axis)
    hard_sample = one_hot(index, logits.shape[axis])
    if axis not in (-1, logits.ndim - 1):
        hard_sample = np.moveaxis(hard_sample, -1, axis)
    # Straight-through: forward is hard, backward is d(soft).
    return soft + Tensor(hard_sample - soft.data)


def cross_entropy(logits, targets):
    """Mean cross-entropy; ``targets`` are integer class ids or one-hot."""
    logits = Tensor.ensure(logits)
    logp = log_softmax(logits, axis=-1)
    targets = np.asarray(targets)
    if targets.ndim == logits.ndim - 1:
        targets = one_hot(targets, logits.shape[-1])
    per_sample = -(logp * Tensor(targets)).sum(axis=-1)
    return per_sample.mean()


def kl_divergence(student_logits, teacher_logits, temperature=1.0):
    """KL(teacher || student) distillation loss as used by DeiT.

    ``teacher_logits`` is treated as a constant (no gradient through the
    teacher), matching standard knowledge distillation.
    """
    student_logits = Tensor.ensure(student_logits)
    teacher = np.asarray(
        teacher_logits.data if isinstance(teacher_logits, Tensor)
        else teacher_logits)
    t = float(temperature)
    teacher_prob = special.softmax(teacher / t, axis=-1)
    student_logp = log_softmax(student_logits / t, axis=-1)
    teacher_logp = np.log(np.clip(teacher_prob, 1e-12, None))
    per_sample = (Tensor(teacher_prob)
                  * (Tensor(teacher_logp) - student_logp)).sum(axis=-1)
    return per_sample.mean() * (t * t)


def mse_loss(prediction, target):
    prediction = Tensor.ensure(prediction)
    target = Tensor.ensure(target)
    diff = prediction - target
    return (diff * diff).mean()
