"""Optimizers and learning-rate schedules for the training pipeline.

AdamW with a cosine schedule is what DeiT (and therefore the paper's
fine-tuning recipe) uses; SGD exists for ablations and tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "CosineSchedule",
           "clip_grad_norm"]


class Optimizer:
    """Base optimizer over an iterable of Parameters."""

    def __init__(self, parameters, lr):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self):
        for param in self.parameters:
            param.grad = None

    def step(self):
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with optional momentum and weight decay."""

    def __init__(self, parameters, lr=0.01, momentum=0.0, weight_decay=0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        for param, vel in zip(self.parameters, self._velocity):
            if param.grad is None or not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, parameters, lr=1e-3, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        self._step += 1
        bc1 = 1.0 - self.beta1 ** self._step
        bc2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None or not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bc1
            v_hat = v / bc2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat)
                                                         + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (the DeiT recipe)."""

    def step(self):
        if self.weight_decay:
            for param in self.parameters:
                if param.grad is not None and param.requires_grad:
                    param.data = param.data * (1.0 - self.lr
                                               * self.weight_decay)
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


class CosineSchedule:
    """Cosine learning-rate decay with linear warmup."""

    def __init__(self, optimizer, base_lr, total_steps, warmup_steps=0,
                 min_lr=0.0):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = base_lr
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self.min_lr = min_lr
        self._step = 0

    def current_lr(self):
        if self._step < self.warmup_steps:
            return self.base_lr * (self._step + 1) / max(1, self.warmup_steps)
        progress = ((self._step - self.warmup_steps)
                    / max(1, self.total_steps - self.warmup_steps))
        progress = min(progress, 1.0)
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine

    def step(self):
        self.optimizer.lr = self.current_lr()
        self._step += 1
        return self.optimizer.lr


def clip_grad_norm(parameters, max_norm):
    """Clip gradients in place to a global L2 norm; returns the norm."""
    parameters = [p for p in parameters if p.grad is not None]
    total = np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for param in parameters:
            param.grad = param.grad * scale
    return total
