"""Weight initializers (trunc-normal as used by DeiT, Xavier, Kaiming)."""

from __future__ import annotations

import numpy as np

__all__ = [
    "default_rng",
    "trunc_normal",
    "xavier_uniform",
    "kaiming_uniform",
    "zeros",
    "ones",
]


def default_rng(seed=None):
    return np.random.default_rng(seed)


def trunc_normal(shape, std=0.02, mean=0.0, rng=None, bound=2.0):
    """Truncated normal within ``mean ± bound*std`` (DeiT's initializer)."""
    rng = default_rng() if rng is None else rng
    out = rng.normal(loc=mean, scale=std, size=shape)
    low, high = mean - bound * std, mean + bound * std
    bad = (out < low) | (out > high)
    while bad.any():
        out[bad] = rng.normal(loc=mean, scale=std, size=int(bad.sum()))
        bad = (out < low) | (out > high)
    return out


def xavier_uniform(shape, gain=1.0, rng=None):
    rng = default_rng() if rng is None else rng
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_uniform(shape, rng=None):
    rng = default_rng() if rng is None else rng
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape):
    return np.zeros(shape, dtype=np.float64)


def ones(shape):
    return np.ones(shape, dtype=np.float64)


def _fans(shape):
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
