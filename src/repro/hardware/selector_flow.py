"""Functional model of the on-chip token selection flow (paper Fig. 9).

The accelerator implements the final GumbelSoftmax-with-threshold of the
token selector in three streamed steps:

1. for each token, compute ``exp(x_i)`` (with the Eq. 14 shift-based
   exponent) and accumulate the sum of exponents;
2. divide each exponent by the sum and compare against the threshold
   (0.5) to classify the token as informative or not;
3. informative tokens are concatenated into the dense output sequence,
   non-informative ones accumulate into a temporary token ``Tmp`` that
   is finally averaged and concatenated.

This module executes that flow on (quantized) score data and returns
both the dense output sequence and cycle counts, so tests can verify it
matches the algorithmic :class:`repro.core.TokenSelector` decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.approx.polynomial import exp_approx
from repro.core.gather import gather_kept_tokens, weighted_package

__all__ = ["TokenSelectionFlow", "FlowResult"]


@dataclass
class FlowResult:
    """Outcome of the hardware token-selection flow for one image."""

    keep_indices: np.ndarray     # indices of informative tokens
    output_tokens: np.ndarray    # (K + 1, D): kept tokens + package
    keep_flags: np.ndarray       # (N,) booleans
    cycles: int


class TokenSelectionFlow:
    """Streamed token selection with threshold classification.

    Parameters
    ----------
    threshold: keep if ``softmax(keep_logit) >= threshold`` (paper: 0.5).
    use_exp_approx: use the shift-based exponent of Eq. 14 (hardware
        behaviour) rather than the exact ``exp``.
    """

    # Per-token pipeline costs for the three steps (exponent, divide +
    # classify, concat/accumulate) and fixed sequencing overhead.
    CYCLES_PER_TOKEN = 3
    FIXED_OVERHEAD = 64

    def __init__(self, threshold=0.5, use_exp_approx=True):
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.threshold = threshold
        self.use_exp_approx = use_exp_approx

    def run(self, tokens, keep_logits, prune_logits):
        """Execute the flow for one image.

        ``tokens``: (N, D) token features.  ``keep_logits`` /
        ``prune_logits``: (N,) classifier outputs *before* the softmax
        (the flow computes the 2-way softmax itself, Fig. 9 step 1-2).
        """
        tokens = np.asarray(tokens, dtype=np.float64)
        keep_logits = np.asarray(keep_logits, dtype=np.float64)
        prune_logits = np.asarray(prune_logits, dtype=np.float64)
        if tokens.ndim != 2:
            raise ValueError("tokens must be (N, D)")
        count = tokens.shape[0]
        if keep_logits.shape != (count,) or prune_logits.shape != (count,):
            raise ValueError("logit shapes must be (N,)")

        # Step 1: exponents with numerical-stability shift.
        stacked = np.stack([keep_logits, prune_logits], axis=-1)
        shifted = stacked - stacked.max(axis=-1, keepdims=True)
        exp_fn = exp_approx if self.use_exp_approx else np.exp
        exps = exp_fn(shifted)
        # Step 2: divide and classify.
        keep_prob = exps[:, 0] / exps.sum(axis=-1)
        keep_flags = keep_prob >= self.threshold
        if not keep_flags.any():
            keep_flags[int(keep_prob.argmax())] = True
        # Step 3: concatenate informative tokens; average the rest
        # (shared with the model-side pruned paths via core.gather).
        keep_indices = np.flatnonzero(keep_flags)
        package = None
        if not keep_flags.all():
            package = weighted_package(tokens[~keep_flags],
                                       keep_prob[~keep_flags])
        output = gather_kept_tokens(tokens, keep_flags, package=package)
        cycles = self.CYCLES_PER_TOKEN * count + self.FIXED_OVERHEAD
        return FlowResult(keep_indices=keep_indices, output_tokens=output,
                          keep_flags=keep_flags, cycles=cycles)
