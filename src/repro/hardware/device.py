"""Hardware platform specifications (paper Sec. VII-A2).

The evaluation platform is a Xilinx ZCU102 (Zynq UltraScale+ MPSoC) at
150 MHz, plus the Jetson TX2 ARM CPU / Pascal GPU used for the Fig. 13
comparison.  The numbers here are public datasheet values; TX2 effective
throughputs are calibrated to the paper's measured baselines (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FPGASpec", "ProcessorSpec", "ZCU102", "TX2_CPU", "TX2_GPU",
           "BRAM36_BYTES"]

# One BRAM36 block stores 36 Kbit = 4608 bytes.
BRAM36_BYTES = 4608


@dataclass(frozen=True)
class FPGASpec:
    """An FPGA device: resource budget + clock + external memory."""

    name: str
    dsp: int
    bram36: int
    lut: int
    ff: int
    clock_mhz: float
    ddr_bandwidth_gbps: float

    @property
    def cycle_ns(self):
        return 1000.0 / self.clock_mhz

    @property
    def ddr_bytes_per_cycle(self):
        return self.ddr_bandwidth_gbps * 1e9 / (self.clock_mhz * 1e6)

    def utilization(self, used):
        """Fractions of each resource used by a design.

        ``used`` maps resource name -> count; returns name -> fraction.
        """
        budget = {"dsp": self.dsp, "bram36": self.bram36,
                  "lut": self.lut, "ff": self.ff}
        result = {}
        for key, amount in used.items():
            if key not in budget:
                raise KeyError(f"unknown resource {key!r}")
            result[key] = amount / budget[key]
        return result

    def fits(self, used):
        return all(frac <= 1.0 for frac in self.utilization(used).values())


# Xilinx ZCU102 evaluation board (paper Sec. VII-A2: 2520 DSPs, 912 BRAM
# blocks, 274.1k LUTs); FF budget is 2x the LUT budget on UltraScale+.
ZCU102 = FPGASpec(name="ZCU102", dsp=2520, bram36=912, lut=274_100,
                  ff=548_200, clock_mhz=150.0, ddr_bandwidth_gbps=19.2)


@dataclass(frozen=True)
class ProcessorSpec:
    """A CPU/GPU modeled as effective sustained GMACs/s + power.

    ``effective_gmacs`` is *sustained* throughput on ViT inference (not
    peak silicon FLOPS) and is calibrated such that the normalized
    speedups of Fig. 13 are reproduced.
    """

    name: str
    effective_gmacs: float
    power_w: float
    supports_low_bit: bool = False

    def latency_ms(self, gmacs):
        return gmacs / self.effective_gmacs * 1e3

    def fps(self, gmacs):
        return self.effective_gmacs / gmacs

    def energy_efficiency(self, gmacs):
        """Frames per second per watt."""
        return self.fps(gmacs) / self.power_w


# Jetson TX2: 4-core ARM A57 CPU (paper reports ~4 W under load) and the
# 256-core Pascal GPU (~12 W).  Effective throughputs calibrated so that
# the FP32 DeiT-T baseline lands at the paper's normalization anchor
# (FPGA final design = 1827x the TX2 CPU baseline at 271.2 FPS
# => CPU baseline ~= 0.148 FPS ~= 0.193 GMACs/s on 1.3 GMACs) and the
# GPU runs ~680x faster than the CPU.
TX2_CPU = ProcessorSpec(name="TX2-CPU", effective_gmacs=0.193, power_w=4.0)
TX2_GPU = ProcessorSpec(name="TX2-GPU", effective_gmacs=131.0, power_w=12.0)
