"""Build the keep-ratio -> latency table from the simulator (Table IV).

The paper measures one-block latency on the ZCU102 for keep ratios
1.0 .. 0.5 and feeds the table into the latency-aware training strategy
(Sec. VI).  :func:`build_latency_table` produces the same artifact from
the accelerator simulator so the whole pipeline runs without hardware;
:data:`PAPER_TABLE4` holds the measured values for comparison.
"""

from __future__ import annotations

from repro.core.latency import LatencySparsityTable
from repro.hardware.accelerator import ViTAcceleratorSim, baseline_design
from repro.hardware.device import ZCU102
from repro.vit.complexity import tokens_after_pruning

__all__ = ["build_latency_table", "block_latency_ms", "PAPER_TABLE4"]

# Table IV of the paper (ms per block, 16-bit blocks on ZCU102).
PAPER_TABLE4 = {
    "DeiT-T": {1.0: 1.034, 0.9: 0.945, 0.8: 0.881, 0.7: 0.764,
               0.6: 0.702, 0.5: 0.636},
    "DeiT-S": {1.0: 3.161, 0.9: 2.837, 0.8: 2.565, 0.7: 2.255,
               0.6: 1.973, 0.5: 1.682},
}


def block_latency_ms(config, keep_ratio, design=None, device=ZCU102,
                     with_selector=False):
    """Latency of ONE transformer block at a given token keep ratio."""
    design = baseline_design(config) if design is None else design
    sim = ViTAcceleratorSim(config, design, device=device)
    tokens = tokens_after_pruning(config.num_patches, keep_ratio)
    cycles, cpu_ns = sim.block_cycles(tokens, with_selector=with_selector)
    return (sum(cycles.values()) * device.cycle_ns + cpu_ns) / 1e6


def build_latency_table(config, keep_ratios=(1.0, 0.9, 0.8, 0.7, 0.6, 0.5),
                        design=None, device=ZCU102):
    """Simulated latency-sparsity table for Algorithm 1 (Eq. 18).

    Tiling quantization can make the simulated per-block latency
    locally non-monotone at very small token counts (two keep ratios
    rounding to tile boundaries in opposite orders), which the table --
    and Eq. 18's premise that fewer tokens are never slower -- rejects;
    a running max over increasing keep ratios restores monotonicity
    without changing any honestly-measured point.
    """
    entries, running = {}, 0.0
    for ratio in sorted(keep_ratios):
        running = max(running, block_latency_ms(config, ratio,
                                                design=design,
                                                device=device))
        entries[ratio] = running
    return LatencySparsityTable(entries)
