"""Build the keep-ratio -> latency table from the simulator (Table IV).

The paper measures one-block latency on the ZCU102 for keep ratios
1.0 .. 0.5 and feeds the table into the latency-aware training strategy
(Sec. VI).  :func:`build_latency_table` produces the same artifact from
the accelerator simulator so the whole pipeline runs without hardware;
:data:`PAPER_TABLE4` holds the measured values for comparison.

:func:`build_cost_model` is the batch-aware extension: it sweeps the
simulator over *batch sizes* as well as keep ratios and fits
``latency(B) = overhead + B * marginal`` per keep ratio, yielding a
calibrated :class:`repro.cost.CostModel` (marginal slopes populate the
Eq. 18 table, the intercept becomes the per-batch / per-bucket weight
-loading + pipeline-fill overhead that pure per-image pricing ignores).
"""

from __future__ import annotations

import numpy as np

from repro.core.latency import LatencySparsityTable
from repro.cost.model import CostModel
from repro.hardware.accelerator import ViTAcceleratorSim, baseline_design
from repro.hardware.device import ZCU102
from repro.vit.complexity import tokens_after_pruning

__all__ = ["build_latency_table", "block_latency_ms", "PAPER_TABLE4",
           "build_cost_model", "simulated_model_batch_ms",
           "cost_model_prediction_error", "DEFAULT_BATCH_SIZES",
           "FINE_KEEP_RATIO_GRID"]

# Calibration sweep for build_cost_model (log-spaced, paper-relevant
# serving range; the acceptance bound is checked over 1..64).
DEFAULT_BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64)

# Finer keep-ratio grid than the paper's Table IV (which stops at 0.5):
# deeply pruned operating points have cumulative stage ratios well
# below 0.5, and pricing them off a clipped table overestimates.  Used
# by the serving benches and examples.
FINE_KEEP_RATIO_GRID = tuple(round(0.1 * i, 1) for i in range(1, 11))

# Table IV of the paper (ms per block, 16-bit blocks on ZCU102).
PAPER_TABLE4 = {
    "DeiT-T": {1.0: 1.034, 0.9: 0.945, 0.8: 0.881, 0.7: 0.764,
               0.6: 0.702, 0.5: 0.636},
    "DeiT-S": {1.0: 3.161, 0.9: 2.837, 0.8: 2.565, 0.7: 2.255,
               0.6: 1.973, 0.5: 1.682},
}


def block_latency_ms(config, keep_ratio, design=None, device=ZCU102,
                     with_selector=False, batch=1):
    """Latency of ONE transformer block at a given token keep ratio.

    ``batch`` prices a whole batch executed back to back in one launch
    (weight tiles loaded once); ``batch=1`` is the paper's Table IV
    setting.
    """
    design = baseline_design(config) if design is None else design
    sim = ViTAcceleratorSim(config, design, device=device)
    tokens = tokens_after_pruning(config.num_patches, keep_ratio)
    cycles, cpu_ns = sim.block_cycles(tokens, with_selector=with_selector,
                                      batch=batch)
    return (sum(cycles.values()) * device.cycle_ns + cpu_ns) / 1e6


def build_latency_table(config, keep_ratios=(1.0, 0.9, 0.8, 0.7, 0.6, 0.5),
                        design=None, device=ZCU102):
    """Simulated latency-sparsity table for Algorithm 1 (Eq. 18).

    Tiling quantization can make the simulated per-block latency
    locally non-monotone at very small token counts (two keep ratios
    rounding to tile boundaries in opposite orders), which the table --
    and Eq. 18's premise that fewer tokens are never slower -- rejects;
    a running max over increasing keep ratios restores monotonicity
    without changing any honestly-measured point.
    """
    entries, running = {}, 0.0
    for ratio in sorted(keep_ratios):
        running = max(running, block_latency_ms(config, ratio,
                                                design=design,
                                                device=device))
        entries[ratio] = running
    return LatencySparsityTable(entries)


def build_cost_model(config, keep_ratios=(1.0, 0.9, 0.8, 0.7, 0.6, 0.5),
                     batch_sizes=DEFAULT_BATCH_SIZES, design=None,
                     device=ZCU102, extra_tokens=1):
    """Calibrate a batch-aware :class:`repro.cost.CostModel` from the sim.

    For every keep ratio the simulator measures one-block batch latency
    across ``batch_sizes`` and a least-squares line ``overhead + B *
    marginal`` is fitted.  The per-ratio slopes populate the Eq. 18
    marginal table (running-max monotonized, exactly as
    :func:`build_latency_table`); the mean intercept is the per-bucket
    launch overhead (weight loading + pipeline fill, paid once per
    launch instead of once per image), and ``depth`` of them make the
    whole-model per-batch overhead.

    ``extra_tokens`` is the served model's non-patch slot count (CLS,
    plus the package token when it packages --
    ``HeatViT.non_patch_slots``), used when the bucket planner converts
    engine sequence lengths back to table keep ratios.
    """
    if len(batch_sizes) < 2:
        raise ValueError("need >= 2 batch sizes to fit an overhead")
    batches = np.asarray(sorted(set(int(b) for b in batch_sizes)))
    if batches[0] < 1:
        raise ValueError("batch sizes must be >= 1")
    entries, running = {}, 0.0
    intercepts = []
    for ratio in sorted(keep_ratios):
        latencies = np.array([
            block_latency_ms(config, ratio, design=design, device=device,
                             batch=int(b)) for b in batches])
        slope, intercept = np.polyfit(batches, latencies, 1)
        running = max(running, max(slope, 0.0))
        entries[ratio] = running
        intercepts.append(max(intercept, 0.0))
    bucket_overhead = float(np.mean(intercepts))
    return CostModel(
        LatencySparsityTable(entries), num_patches=config.num_patches,
        extra_tokens=extra_tokens,
        batch_overhead_ms=config.depth * bucket_overhead,
        bucket_overhead_ms=bucket_overhead,
        name=f"sim-{config.name}")


def simulated_model_batch_ms(config, batch, selector_blocks=(),
                             keep_ratios=(), design=None, device=ZCU102):
    """Whole-model batch latency measured directly by the simulator.

    The ground truth the cost model is judged against: every block runs
    at its stage's cumulative keep ratio (blocks before the first
    selector dense, as in
    :func:`repro.core.latency.latency_for_keep_ratios`) with the whole
    batch in one launch, and the per-block batch latencies sum.  Covers
    the same ``depth`` encoder blocks the Eq. 18 table prices.
    """
    boundaries = sorted(selector_blocks)
    if len(boundaries) != len(keep_ratios):
        raise ValueError("one keep ratio per selector required")
    stage_ratios, cumulative = [1.0], 1.0
    for ratio in keep_ratios:
        cumulative *= float(ratio)
        stage_ratios.append(cumulative)
    blocks_per_stage = [0] * len(stage_ratios)
    for block_index in range(config.depth):
        stage = sum(1 for b in boundaries if b <= block_index)
        blocks_per_stage[stage] += 1
    total = 0.0
    for stage, count in enumerate(blocks_per_stage):
        if count:
            total += count * block_latency_ms(
                config, stage_ratios[stage], design=design, device=device,
                batch=batch)
    return total


def cost_model_prediction_error(config, cost_model,
                                batch_sizes=DEFAULT_BATCH_SIZES,
                                keep_ratios=None, design=None,
                                device=ZCU102):
    """Relative error of the fitted model vs the simulator, per block.

    Compares ``bucket_overhead + B * table(r)`` against the directly
    simulated one-block batch latency over the ``(keep_ratio, batch)``
    grid.  Returns ``{"max": .., "mean": ..}`` relative errors -- the
    calibration smoke (and the benchmark JSON) assert the acceptance
    bound (within 10% across batch sizes 1-64) on ``"max"``.
    """
    if keep_ratios is None:
        keep_ratios = [ratio for ratio, _ in cost_model.table.items()]
    errors = []
    for ratio in keep_ratios:
        for batch in batch_sizes:
            measured = block_latency_ms(config, ratio, design=design,
                                        device=device, batch=int(batch))
            # One block, one bucket launch: per-bucket overhead plus the
            # batch's marginal table cost.
            predicted = (cost_model.bucket_overhead_ms
                         + int(batch) * cost_model.table.latency(ratio))
            errors.append(abs(predicted - measured) / measured)
    return {"max": float(np.max(errors)), "mean": float(np.mean(errors))}
