"""Cycle-level model of the tiled GEMM engine (paper Fig. 8b).

The engine has a ``Ti x To x Th`` MAC array: ``Ti`` multipliers along
the input (reduction) dimension, ``To`` along the output dimension, and
``Th`` parallel head groups.

* Attention layers (Q x K^T, QK^T x V, and the per-head part of the
  linear transformation) run ``h`` independent group-GEMMs; ``Th``
  groups execute concurrently and results stay grouped ("Concat").
* Non-attention layers (projection, FFN, token-selector MLPs) use the
  head dimension as an extra reduction tile: the ``Th`` groups each take
  a ``Di/Th`` slice of the reduction and their partial sums are added
  ("Sum") -- the ``Attention?`` multiplexer of Fig. 8b.

Cycle counts are the exact loop-nest trip counts of the tiled schedule
(ceil division captures padding waste), plus a pipeline-fill overhead
per tile swap; DDR transfer time is overlapped via double buffering, so
a layer's latency is ``max(compute, transfer) + fill``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["GemmShape", "TiledGemmEngine"]


@dataclass(frozen=True)
class GemmShape:
    """One GEMM workload: ``(rows x depth) @ (depth x cols)``.

    ``groups > 1`` marks a per-head (attention) computation executing
    ``groups`` independent GEMMs of this shape.
    """

    rows: int
    depth: int
    cols: int
    groups: int = 1

    @property
    def macs(self):
        return self.groups * self.rows * self.depth * self.cols

    @property
    def input_bytes_16(self):
        return self.groups * self.rows * self.depth

    def operand_bytes(self, bitwidth):
        per = bitwidth // 8
        inputs = self.groups * self.rows * self.depth * per
        weights = self.groups * self.depth * self.cols * per
        outputs = self.groups * self.rows * self.cols * per
        return inputs + weights + outputs


class TiledGemmEngine:
    """The ``Ti x To x Th`` MAC array with its tiling schedule."""

    PIPELINE_FILL = 24   # cycles to fill/drain the MAC pipeline per tile

    def __init__(self, ti, to, th, bitwidth, device):
        if min(ti, to, th) < 1:
            raise ValueError("tile sizes must be >= 1")
        self.ti = ti
        self.to = to
        self.th = th
        self.bitwidth = bitwidth
        self.device = device

    @property
    def macs_per_cycle(self):
        return self.ti * self.to * self.th

    # ------------------------------------------------------------------
    def compute_cycles(self, shape):
        """Loop-nest trip count for one workload."""
        if shape.groups > 1:
            # Attention: Th groups in parallel, each a full GEMM.
            group_passes = math.ceil(shape.groups / self.th)
            tiles = (math.ceil(shape.depth / self.ti)
                     * math.ceil(shape.cols / self.to))
            return group_passes * tiles * shape.rows
        # Non-attention: heads tile the reduction dimension.
        reduction = math.ceil(shape.depth / (self.ti * self.th))
        tiles = reduction * math.ceil(shape.cols / self.to)
        return tiles * shape.rows

    def tile_swaps(self, shape):
        """Number of weight-tile swaps (pipeline fills) for a workload."""
        if shape.groups > 1:
            return (math.ceil(shape.groups / self.th)
                    * math.ceil(shape.depth / self.ti)
                    * math.ceil(shape.cols / self.to))
        return (math.ceil(shape.depth / (self.ti * self.th))
                * math.ceil(shape.cols / self.to))

    def transfer_cycles(self, shape):
        """DDR transfer cycles for all operands of a workload."""
        return math.ceil(shape.operand_bytes(self.bitwidth)
                         / self.device.ddr_bytes_per_cycle)

    def latency_cycles(self, shape):
        """Double-buffered layer latency in cycles."""
        compute = self.compute_cycles(shape)
        transfer = self.transfer_cycles(shape)
        fills = self.tile_swaps(shape) * self.PIPELINE_FILL
        return max(compute, transfer) + fills

    def efficiency(self, shape):
        """Achieved / peak MAC utilization for a workload in [0, 1]."""
        ideal = shape.macs / self.macs_per_cycle
        return ideal / self.latency_cycles(shape)
