"""Analytic FPGA resource model (paper Table III + Table VI columns).

Two layers of modeling:

* **Nonlinear function units** -- the approximated implementations are
  composed from primitive fixed-point operator costs (adders, DSP
  multipliers, comparators, barrel shifters, pipeline registers); the
  original implementations use the Vitis HLS math-library core costs,
  which we take from the paper's own synthesis measurements (they are
  vendor-IP properties we cannot re-synthesize without Vitis).
* **GEMM engine / buffers / control** -- per-MAC datapath glue, ping-pong
  buffer BRAM counts, and per-head control overheads, calibrated against
  the baseline design rows of Table VI.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.hardware.device import BRAM36_BYTES

__all__ = ["ResourceCount", "PRIMITIVES", "HLS_MATH_CORES",
           "approx_gelu_unit", "approx_softmax_unit", "approx_sigmoid_unit",
           "original_unit", "nonlinear_unit_table",
           "gemm_engine_resources", "buffer_brams", "selector_control",
           "PAPER_TABLE3"]


@dataclass(frozen=True)
class ResourceCount:
    """FF / LUT / DSP usage of one hardware unit."""

    ff: int = 0
    lut: int = 0
    dsp: int = 0

    def __add__(self, other):
        return ResourceCount(self.ff + other.ff, self.lut + other.lut,
                             self.dsp + other.dsp)

    def scaled(self, factor):
        return ResourceCount(int(self.ff * factor), int(self.lut * factor),
                             int(self.dsp * factor))


# ----------------------------------------------------------------------
# Primitive fixed-point operator costs (16-bit datapath, one pipeline
# stage each).  LUT counts follow the usual 1-LUT-per-result-bit rule
# for adders/muxes; multiplies map to DSP48 slices.
# ----------------------------------------------------------------------
PRIMITIVES = {
    "add16": ResourceCount(ff=16, lut=16, dsp=0),
    "sub16": ResourceCount(ff=16, lut=16, dsp=0),
    "mult16": ResourceCount(ff=32, lut=0, dsp=1),
    "mult_const": ResourceCount(ff=32, lut=0, dsp=1),
    "square16": ResourceCount(ff=32, lut=0, dsp=1),
    "compare16": ResourceCount(ff=4, lut=16, dsp=0),
    "mux16": ResourceCount(ff=16, lut=16, dsp=0),
    "abs_sign": ResourceCount(ff=18, lut=34, dsp=0),
    "clip16": ResourceCount(ff=20, lut=48, dsp=0),
    "barrel_shift16": ResourceCount(ff=32, lut=96, dsp=0),
    "lut_divider": ResourceCount(ff=420, lut=980, dsp=0),
    "tree_max16": ResourceCount(ff=120, lut=260, dsp=0),
    "tree_sum16": ResourceCount(ff=150, lut=300, dsp=0),
    "shift_const": ResourceCount(ff=16, lut=8, dsp=0),
}

# Vitis HLS math-library core costs (floating point exp/erf/div), as
# synthesized by the paper's tool flow -- Table III "Orig." columns are
# direct measurements of these cores plus glue.
HLS_MATH_CORES = {
    "erf_float": ResourceCount(ff=187_000, lut=157_500, dsp=132),
    "exp_float": ResourceCount(ff=640, lut=650, dsp=1),
    "div_float": ResourceCount(ff=760, lut=800, dsp=0),
    "float_mult": ResourceCount(ff=140, lut=90, dsp=3),
    "float_add": ResourceCount(ff=210, lut=220, dsp=2),
}

# Paper Table III, verbatim, for comparison in the benchmark harness.
PAPER_TABLE3 = {
    "GELU": {"approx": ResourceCount(ff=334, lut=438, dsp=4),
             "orig": ResourceCount(ff=191_116, lut=160_909, dsp=139)},
    "Sigmoid": {"approx": ResourceCount(ff=1015, lut=1512, dsp=0),
                "orig": ResourceCount(ff=2334, lut=2333, dsp=3)},
    "Softmax": {"approx": ResourceCount(ff=1939, lut=2364, dsp=2),
                "orig": ResourceCount(ff=2464, lut=2476, dsp=3)},
}


def _total(parts):
    total = ResourceCount()
    for part in parts:
        total = total + part
    return total


def approx_gelu_unit():
    """GELU_aprx (Eq. 12): abs/sign, clip, (x+b)^2 via one squarer, two
    constant multiplies, adds, and the final x * (.) multiply."""
    p = PRIMITIVES
    return _total([
        p["abs_sign"],            # |x|, sign(x)
        p["clip16"],              # min(|x|, -b)
        p["add16"],               # + b
        p["square16"],            # (.)^2            -> DSP
        p["mult_const"],          # * a (and delta1 folded in)
        p["add16"],               # + 1
        p["mux16"],               # apply sign
        p["add16"],               # 1 + L_erf
        p["mult16"],              # x * (.)          -> DSP
        p["mult_const"],          # * 0.5 (strength-reduced but keep DSP)
        p["shift_const"],
    ])


def approx_softmax_unit():
    """Softmax_aprx (Eqs. 13-14): max-subtract, shift-based exp with a
    second-order polynomial, accumulate, one fixed-point divide."""
    p = PRIMITIVES
    return _total([
        p["tree_max16"],          # running max
        p["sub16"],               # x - max
        p["mult_const"],          # z = floor(-x/ln2) via const mult
        p["add16"],               # p = x + z ln2
        p["square16"],            # (p + c1)^2       -> DSP
        p["add16"],
        p["barrel_shift16"],      # >> z
        p["tree_sum16"],          # sum of exps
        p["lut_divider"],         # exp / sum (LUT-based, no DSP)
        p["mux16"],
    ])


def approx_sigmoid_unit():
    """PLAN sigmoid: three comparators, shift-add segments, muxes."""
    p = PRIMITIVES
    return _total([
        p["abs_sign"],
        p["compare16"], p["compare16"], p["compare16"],
        p["shift_const"], p["shift_const"], p["shift_const"],
        p["add16"], p["add16"], p["add16"],
        p["mux16"], p["mux16"], p["mux16"],
        p["sub16"],               # 1 - y for negative x
        # PLAN keeps a small breakpoint ROM + wide muxes:
        ResourceCount(ff=760, lut=1150, dsp=0),
    ])


def original_unit(function):
    """HLS math-library implementation cost of GELU/Softmax/Sigmoid."""
    cores = HLS_MATH_CORES
    if function == "GELU":
        return _total([cores["erf_float"], cores["float_mult"],
                       cores["float_add"], cores["float_mult"]])
    if function == "Softmax":
        return _total([cores["exp_float"], cores["div_float"],
                       cores["float_add"], cores["float_add"],
                       ResourceCount(ff=640, lut=580, dsp=0)])
    if function == "Sigmoid":
        return _total([cores["exp_float"], cores["div_float"],
                       cores["float_add"], ResourceCount(ff=720, lut=660,
                                                         dsp=0)])
    raise KeyError(f"unknown nonlinear function {function!r}")


def nonlinear_unit_table():
    """Our analytic version of Table III: {fn: {'approx','orig'}}."""
    return {
        "GELU": {"approx": approx_gelu_unit(),
                 "orig": original_unit("GELU")},
        "Sigmoid": {"approx": approx_sigmoid_unit(),
                    "orig": original_unit("Sigmoid")},
        "Softmax": {"approx": approx_softmax_unit(),
                    "orig": original_unit("Softmax")},
    }


# ----------------------------------------------------------------------
# GEMM engine + infrastructure (calibrated against Table VI baselines)
# ----------------------------------------------------------------------
# A 16-bit MAC maps to 2 DSP48 slices in the baseline design ([31]'s
# W8A8-free variant); an 8-bit MAC fits a single slice.
_DSP_PER_MAC = {16: 2, 8: 1}
# Datapath glue (operand muxing, accumulator carry logic) per MAC.
_LUT_PER_MAC = {16: 58, 8: 36}
_FF_PER_MAC = {16: 64, 8: 40}
# Shared infrastructure: AXI/DDR controller datapath, address generators.
_BASE = ResourceCount(ff=38_000, lut=44_000, dsp=60)
# Per-head control (group sequencing, concat/sum select of Fig. 8b).
_HEAD_CTRL_LUT = 900
_HEAD_CTRL_FF = 700


def gemm_engine_resources(ti, to, th, bitwidth, use_approx_nonlinear):
    """Total FF/LUT/DSP of the accelerator datapath.

    Includes the MAC array (``ti*to*th`` MACs), shared infrastructure,
    per-head control, and one unit each of GELU/Softmax (original or
    approximated) -- Sigmoid exists only in designs with token selectors
    and is added by :func:`selector_control`.
    """
    if bitwidth not in _DSP_PER_MAC:
        raise ValueError(f"unsupported bitwidth {bitwidth}")
    macs = ti * to * th
    array = ResourceCount(
        ff=_FF_PER_MAC[bitwidth] * macs,
        lut=_LUT_PER_MAC[bitwidth] * macs,
        dsp=_DSP_PER_MAC[bitwidth] * macs)
    heads = ResourceCount(ff=_HEAD_CTRL_FF * th, lut=_HEAD_CTRL_LUT * th,
                          dsp=0)
    table = nonlinear_unit_table()
    kind = "approx" if use_approx_nonlinear else "orig"
    # The baseline [31] already avoids the float erf core; model its
    # nonlinear path as look-up-table units of moderate cost.
    if use_approx_nonlinear:
        nonlinear = table["GELU"][kind] + table["Softmax"][kind]
    else:
        nonlinear = ResourceCount(ff=7200, lut=8800, dsp=22)
    return _BASE + array + heads + nonlinear


def buffer_brams(max_tokens, head_dim, num_heads, th, ti, to, bitwidth,
                 mlp_hidden_dim):
    """Ping-pong on-chip buffer BRAM36 count (Fig. 8a).

    Buffers: input tokens (banked by ``ti`` per active head), weights
    (``ti x to`` banked), outputs (``to`` banked, 32-bit accumulators),
    and the attention intermediates (Q/K/V and the NxN score tile) that
    must be resident *per head group* -- the reason Table VI's BRAM
    grows with the number of heads.
    """
    bytes_per = bitwidth // 8
    double = 2  # ping-pong

    def banked(total_bytes, banks):
        per_bank = math.ceil(total_bytes / banks)
        return banks * max(1, math.ceil(per_bank / BRAM36_BYTES))

    input_buf = banked(max_tokens * ti * bytes_per * double, ti) * th
    weight_buf = banked(ti * to * bytes_per * double * 64, ti)
    output_buf = banked(max_tokens * to * 4 * double, to)
    qkv_buf = banked(max_tokens * head_dim * bytes_per * 3, 3) * num_heads
    score_buf = banked(max_tokens * max_tokens * bytes_per, 4) * th
    misc = 24   # instruction / descriptor / token-index buffers
    return input_buf + weight_buf + output_buf + qkv_buf + score_buf + misc


def selector_control(num_heads, bitwidth=8):
    """Extra logic for the token selection flow (Fig. 9).

    The classifier itself reuses the GEMM engine; what is added is the
    exponent/sum/divide pipeline, threshold comparators, the packaging
    accumulator, and index/concat control -- plus one PLAN sigmoid unit
    for the attention branch.  Returns (ResourceCount, extra_bram36).
    """
    p = PRIMITIVES
    flow = _total([
        p["mult_const"], p["add16"],          # exponent polynomial
        p["square16"],
        p["barrel_shift16"],
        p["tree_sum16"],                      # Sum of exponents
        p["lut_divider"],                     # exponent / Sum
        p["compare16"],                       # threshold at 0.5
        p["tree_sum16"],                      # Tmp accumulation (packager)
        p["lut_divider"],                     # package averaging
        p["mux16"], p["mux16"],               # concat steering
        ResourceCount(ff=2400, lut=3400, dsp=0),   # index FIFO + control FSM
    ])
    flow = flow + approx_sigmoid_unit()
    per_head = ResourceCount(ff=260 * num_heads, lut=340 * num_heads, dsp=0)
    # Token-index and score scratch buffers.
    extra_bram = 6
    return flow + per_head, extra_bram
