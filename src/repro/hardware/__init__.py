"""FPGA accelerator simulator + CPU/GPU comparison models."""

from repro.hardware.accelerator import (AcceleratorDesign, AcceleratorReport,
                                        ViTAcceleratorSim, baseline_design,
                                        heatvit_design)
from repro.hardware.comparison import (PlatformResult, compare_platforms,
                                       speedup_breakdown)
from repro.hardware.device import (BRAM36_BYTES, TX2_CPU, TX2_GPU, ZCU102,
                                   FPGASpec, ProcessorSpec)
from repro.hardware.gemm import GemmShape, TiledGemmEngine
from repro.hardware.latency_table import (DEFAULT_BATCH_SIZES, PAPER_TABLE4,
                                          block_latency_ms,
                                          build_cost_model,
                                          build_latency_table,
                                          cost_model_prediction_error,
                                          simulated_model_batch_ms)
from repro.hardware.resources import (PAPER_TABLE3, ResourceCount,
                                      approx_gelu_unit, approx_sigmoid_unit,
                                      approx_softmax_unit, buffer_brams,
                                      gemm_engine_resources,
                                      nonlinear_unit_table, original_unit,
                                      selector_control)
from repro.hardware.schedule import (LayerTraceEntry, format_trace,
                                     trace_schedule, utilization_summary)
from repro.hardware.selector_flow import FlowResult, TokenSelectionFlow
from repro.hardware.tiling import TilingChoice, search_tiling

__all__ = [
    "FPGASpec", "ProcessorSpec", "ZCU102", "TX2_CPU", "TX2_GPU",
    "BRAM36_BYTES",
    "GemmShape", "TiledGemmEngine",
    "AcceleratorDesign", "AcceleratorReport", "ViTAcceleratorSim",
    "baseline_design", "heatvit_design",
    "ResourceCount", "nonlinear_unit_table", "original_unit",
    "approx_gelu_unit", "approx_softmax_unit", "approx_sigmoid_unit",
    "gemm_engine_resources", "buffer_brams", "selector_control",
    "PAPER_TABLE3", "PAPER_TABLE4",
    "build_latency_table", "block_latency_ms",
    "build_cost_model", "simulated_model_batch_ms",
    "cost_model_prediction_error", "DEFAULT_BATCH_SIZES",
    "TokenSelectionFlow", "FlowResult",
    "TilingChoice", "search_tiling",
    "PlatformResult", "compare_platforms", "speedup_breakdown",
    "LayerTraceEntry", "trace_schedule", "format_trace",
    "utilization_summary",
]
