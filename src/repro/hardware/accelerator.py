"""End-to-end ViT accelerator simulator (paper Sec. V, Table VI).

Builds the full layer schedule of a (possibly token-pruned) ViT --
GEMMs, nonlinear activation passes, CPU-side LayerNorm, and the token
selection flow -- and produces latency / FPS / resource / power numbers
for a given :class:`AcceleratorDesign`.

Calibration targets (documented in EXPERIMENTS.md): the 16-bit baseline
designs use a 768-MAC array at 2 DSP/MAC; the 8-bit HeatViT designs use
a 1920-MAC array at 1 DSP/MAC.  Per-model designs share the total
parallelism and set ``Th`` to the model's head count, exactly as the
paper describes ("multiple hardware accelerators are designed according
to the number of heads in a specific ViT").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hardware.device import ZCU102
from repro.hardware.gemm import GemmShape, TiledGemmEngine
from repro.hardware.resources import (ResourceCount, buffer_brams,
                                      gemm_engine_resources,
                                      selector_control)
from repro.vit.complexity import StagePlan, tokens_after_pruning

__all__ = ["AcceleratorDesign", "AcceleratorReport", "ViTAcceleratorSim",
           "baseline_design", "heatvit_design"]

# Nonlinear / elementwise engines process this many elements per cycle.
_NONLINEAR_LANES = 16
# ARM-side LayerNorm throughput (elements per second); NEON-vectorized
# fp16 normalization on a Cortex-A53 class core.
_CPU_LN_ELEMENTS_PER_S = 6.0e8
# Power model (calibrated to Table VI's four measured designs).
_POWER_STATIC_W = 1.36
_POWER_PER_DSP_W = 0.002
_POWER_PER_BRAM_W = 0.007
_POWER_PER_LUT_W = 1.0e-5

# Total MAC-array parallelism per bitwidth (see module docstring).
_TOTAL_MACS = {16: 768, 8: 1920}
_DEFAULT_TI = 8


@dataclass(frozen=True)
class AcceleratorDesign:
    """A concrete accelerator instance."""

    name: str
    ti: int
    to: int
    th: int
    bitwidth: int
    with_token_selector: bool
    use_approx_nonlinear: bool

    @property
    def macs_per_cycle(self):
        return self.ti * self.to * self.th


def baseline_design(config):
    """The 16-bit, no-pruning baseline accelerator for a backbone."""
    heads = config.num_heads
    to = max(1, _TOTAL_MACS[16] // (_DEFAULT_TI * heads))
    return AcceleratorDesign(
        name=f"baseline-{config.name}", ti=_DEFAULT_TI, to=to, th=heads,
        bitwidth=16, with_token_selector=False, use_approx_nonlinear=False)


def heatvit_design(config):
    """The 8-bit HeatViT accelerator (token selector + approximations)."""
    heads = config.num_heads
    to = max(1, _TOTAL_MACS[8] // (_DEFAULT_TI * heads))
    return AcceleratorDesign(
        name=f"heatvit-{config.name}", ti=_DEFAULT_TI, to=to, th=heads,
        bitwidth=8, with_token_selector=True, use_approx_nonlinear=True)


@dataclass
class AcceleratorReport:
    """Simulation outcome for one design + workload."""

    design: AcceleratorDesign
    latency_ms: float
    fps: float
    resources: dict
    utilization: dict
    power_w: float
    energy_efficiency: float
    cycles_by_kind: dict = field(default_factory=dict)

    def speedup_over(self, other):
        return other.latency_ms / self.latency_ms


class ViTAcceleratorSim:
    """Simulates a ViT (optionally token-pruned) on a design."""

    def __init__(self, config, design, device=ZCU102):
        self.config = config
        self.design = design
        self.device = device
        self.engine = TiledGemmEngine(design.ti, design.to, design.th,
                                      design.bitwidth, device)

    # ------------------------------------------------------------------
    # Layer schedule
    # ------------------------------------------------------------------
    def block_gemms(self, tokens, batch=1):
        """The six Table II GEMMs of one encoder block.

        ``batch > 1`` models back-to-back execution of a batch on the
        same accelerator: weight-stationary layers stack the images
        along the row (token) dimension -- the weight tiles are loaded
        once for the whole batch -- while the per-head attention GEMMs
        are independent per image and multiply the group count.
        """
        cfg = self.config
        d = cfg.head_dim
        h = cfg.num_heads
        rows = batch * tokens
        return [
            ("qkv", GemmShape(rows, cfg.embed_dim, 3 * cfg.embed_dim)),
            ("qk_t", GemmShape(tokens, d, tokens, groups=batch * h)),
            ("att_v", GemmShape(tokens, tokens, d, groups=batch * h)),
            ("proj", GemmShape(rows, cfg.embed_dim, cfg.embed_dim)),
            ("fc1", GemmShape(rows, cfg.embed_dim, cfg.mlp_hidden_dim)),
            ("fc2", GemmShape(rows, cfg.mlp_hidden_dim, cfg.embed_dim)),
        ]

    def selector_gemms(self, tokens, batch=1):
        """Token-selector GEMMs (classifier + attention branch, Fig. 7)."""
        cfg = self.config
        d = cfg.head_dim
        h = cfg.num_heads
        feat = max(d // 2, 2)
        rows = batch * tokens
        return [
            ("sel_feature", GemmShape(tokens, d, feat, groups=batch * h)),
            ("sel_cls1", GemmShape(tokens, 2 * feat, feat,
                                   groups=batch * h)),
            ("sel_cls2", GemmShape(tokens, feat, max(feat // 2, 2),
                                   groups=batch * h)),
            ("sel_cls3", GemmShape(tokens, max(feat // 2, 2), 2,
                                   groups=batch * h)),
            ("sel_attn", GemmShape(rows, h, h)),
        ]

    def _nonlinear_cycles(self, elements):
        return math.ceil(elements / _NONLINEAR_LANES)

    def block_cycles(self, tokens, with_selector=False, batch=1):
        """FPGA cycles + CPU nanoseconds for one block (+ selector).

        ``batch`` sizes the workload for a whole batch executed in one
        launch: compute and data movement scale with the image count
        while weight-tile loads (the pipeline-fill overhead of the
        weight-stationary GEMMs) are paid once -- the economy of scale
        the batch-aware cost model calibrates against.
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        cfg = self.config
        cycles = {"gemm": 0, "nonlinear": 0, "selector_flow": 0}
        for _, shape in self.block_gemms(tokens, batch=batch):
            cycles["gemm"] += self.engine.latency_cycles(shape)
        # Softmax over h x N x N scores, GELU over N x hidden.
        cycles["nonlinear"] += self._nonlinear_cycles(
            batch * cfg.num_heads * tokens * tokens)
        cycles["nonlinear"] += self._nonlinear_cycles(
            batch * tokens * cfg.mlp_hidden_dim)
        if with_selector:
            for _, shape in self.selector_gemms(tokens, batch=batch):
                cycles["gemm"] += self.engine.latency_cycles(shape)
            # Fig. 9 flow: exponent+sum, divide+classify, concat/average;
            # each pass is streamed one token per cycle with small fixed
            # sequencing overhead paid once per launch.
            cycles["selector_flow"] += 3 * batch * tokens + 64
            cycles["nonlinear"] += self._nonlinear_cycles(
                batch * tokens * cfg.num_heads)  # sigmoid of attn branch
        cpu_ns = (2 * batch * tokens * cfg.embed_dim
                  / _CPU_LN_ELEMENTS_PER_S * 1e9)
        return cycles, cpu_ns

    # ------------------------------------------------------------------
    # Whole-model simulation
    # ------------------------------------------------------------------
    def tokens_schedule(self, stage_plan=None):
        """Per-block token counts (with the selector boundaries)."""
        cfg = self.config
        if stage_plan is None:
            return [cfg.num_tokens] * cfg.depth, set()
        counts = stage_plan.tokens_per_block(cfg.depth, cfg.num_patches)
        return counts, set(stage_plan.boundaries)

    def simulate(self, stage_plan=None):
        """Run the layer schedule; returns an :class:`AcceleratorReport`.

        ``stage_plan`` (a :class:`repro.vit.StagePlan`) enables token
        pruning; ``None`` simulates the dense backbone.
        """
        cfg = self.config
        design = self.design
        if stage_plan is not None and not design.with_token_selector:
            raise ValueError(
                "design has no token selector but a stage plan was given")
        counts, boundaries = self.tokens_schedule(stage_plan)
        totals = {"gemm": 0, "nonlinear": 0, "selector_flow": 0}
        cpu_ns_total = 0.0
        # Patch embedding GEMM + final head.
        patch_dim = cfg.in_channels * cfg.patch_size ** 2
        embed = GemmShape(cfg.num_patches, patch_dim, cfg.embed_dim)
        head = GemmShape(1, cfg.embed_dim, cfg.num_classes)
        totals["gemm"] += self.engine.latency_cycles(embed)
        totals["gemm"] += self.engine.latency_cycles(head)
        for block_index in range(cfg.depth):
            with_selector = block_index in boundaries
            cycles, cpu_ns = self.block_cycles(counts[block_index],
                                               with_selector=with_selector)
            for key, value in cycles.items():
                totals[key] += value
            cpu_ns_total += cpu_ns
        fpga_cycles = sum(totals.values())
        latency_ms = (fpga_cycles * self.device.cycle_ns
                      + cpu_ns_total) / 1e6
        fps = 1000.0 / latency_ms
        resources = self.resource_usage()
        utilization = self.device.utilization(resources)
        power = self.power_w(resources)
        return AcceleratorReport(
            design=design, latency_ms=latency_ms, fps=fps,
            resources=resources, utilization=utilization, power_w=power,
            energy_efficiency=fps / power, cycles_by_kind=dict(totals))

    # ------------------------------------------------------------------
    # Resources and power
    # ------------------------------------------------------------------
    def resource_usage(self):
        cfg = self.config
        design = self.design
        logic = gemm_engine_resources(
            design.ti, design.to, design.th, design.bitwidth,
            design.use_approx_nonlinear)
        brams = buffer_brams(
            max_tokens=cfg.num_tokens, head_dim=cfg.head_dim,
            num_heads=cfg.num_heads, th=design.th, ti=design.ti,
            to=design.to, bitwidth=design.bitwidth,
            mlp_hidden_dim=cfg.mlp_hidden_dim)
        if design.with_token_selector:
            extra, extra_bram = selector_control(cfg.num_heads,
                                                 design.bitwidth)
            logic = logic + extra
            brams += extra_bram
        return {"dsp": logic.dsp, "lut": logic.lut, "ff": logic.ff,
                "bram36": brams}

    @staticmethod
    def power_w(resources):
        return (_POWER_STATIC_W
                + _POWER_PER_DSP_W * resources["dsp"]
                + _POWER_PER_BRAM_W * resources["bram36"]
                + _POWER_PER_LUT_W * resources["lut"])
