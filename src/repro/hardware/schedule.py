"""Per-layer execution trace of the accelerator (profiling support).

`ViTAcceleratorSim.simulate` reports whole-model aggregates; this module
expands the schedule into one entry per executed layer -- cycles,
MAC-array efficiency, bound (compute vs DDR), and running timestamp --
the view an FPGA engineer uses to find under-utilized layers (e.g. the
ragged attention GEMMs that waste tiles after pruning).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.accelerator import ViTAcceleratorSim

__all__ = ["LayerTraceEntry", "trace_schedule", "format_trace",
           "utilization_summary"]


@dataclass(frozen=True)
class LayerTraceEntry:
    """One executed GEMM workload in the schedule."""

    block: int                 # transformer block index (-1 = embedding)
    layer: str                 # e.g. "qkv", "qk_t", "sel_feature"
    tokens: int
    cycles: int
    macs: int
    efficiency: float          # achieved/peak MAC utilization
    bound: str                 # "compute" or "memory"
    start_cycle: int


def trace_schedule(config, design, stage_plan=None, device=None):
    """Expand the full model schedule into :class:`LayerTraceEntry` list."""
    from repro.hardware.device import ZCU102
    device = ZCU102 if device is None else device
    sim = ViTAcceleratorSim(config, design, device=device)
    counts, boundaries = sim.tokens_schedule(stage_plan)
    entries = []
    clock = 0

    def push(block, name, tokens, shape):
        nonlocal clock
        cycles = sim.engine.latency_cycles(shape)
        compute = sim.engine.compute_cycles(shape)
        transfer = sim.engine.transfer_cycles(shape)
        entries.append(LayerTraceEntry(
            block=block, layer=name, tokens=tokens, cycles=cycles,
            macs=shape.macs, efficiency=sim.engine.efficiency(shape),
            bound="memory" if transfer > compute else "compute",
            start_cycle=clock))
        clock += cycles

    from repro.hardware.gemm import GemmShape
    patch_dim = config.in_channels * config.patch_size ** 2
    push(-1, "patch_embed", config.num_patches,
         GemmShape(config.num_patches, patch_dim, config.embed_dim))
    for block_index in range(config.depth):
        tokens = counts[block_index]
        if block_index in boundaries:
            for name, shape in sim.selector_gemms(tokens):
                push(block_index, name, tokens, shape)
        for name, shape in sim.block_gemms(tokens):
            push(block_index, name, tokens, shape)
    push(config.depth, "head", 1,
         GemmShape(1, config.embed_dim, config.num_classes))
    return entries


def format_trace(entries, limit=None):
    """Render a trace as a fixed-width text table."""
    rows = entries if limit is None else entries[:limit]
    lines = [f"{'blk':>4} {'layer':<12} {'tokens':>6} {'cycles':>9} "
             f"{'eff':>5} {'bound':<7} {'t_start':>10}"]
    for e in rows:
        lines.append(
            f"{e.block:>4} {e.layer:<12} {e.tokens:>6} {e.cycles:>9} "
            f"{e.efficiency:>5.2f} {e.bound:<7} {e.start_cycle:>10}")
    return "\n".join(lines)


def utilization_summary(entries):
    """Aggregate stats: overall efficiency, per-layer-kind breakdown,
    and the fraction of cycles spent memory-bound."""
    total_cycles = sum(e.cycles for e in entries)
    total_macs = sum(e.macs for e in entries)
    by_kind = {}
    for e in entries:
        kind = by_kind.setdefault(e.layer, {"cycles": 0, "macs": 0})
        kind["cycles"] += e.cycles
        kind["macs"] += e.macs
    memory_cycles = sum(e.cycles for e in entries if e.bound == "memory")
    weighted_eff = (sum(e.efficiency * e.cycles for e in entries)
                    / max(total_cycles, 1))
    return {
        "total_cycles": total_cycles,
        "total_macs": total_macs,
        "weighted_efficiency": weighted_eff,
        "memory_bound_fraction": memory_cycles / max(total_cycles, 1),
        "by_layer": by_kind,
    }
