"""FPGA vs Jetson TX2 CPU/GPU comparison (paper Sec. VII-C1, Fig. 13).

The TX2 processors are modeled with calibrated sustained throughputs
(:mod:`repro.hardware.device`); token pruning accelerates them by the
GMAC reduction (MSA and FFN shrink with the token count), while the
8-bit path exists only on the FPGA ("TX2 CPU/GPU does not support
low-bit computation").

All speedups are normalized against the original (dense, FP32) model on
the TX2 CPU, matching the figure's normalization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.accelerator import (ViTAcceleratorSim, baseline_design,
                                        heatvit_design)
from repro.hardware.device import TX2_CPU, TX2_GPU, ZCU102
from repro.vit.complexity import model_gmacs, pruned_model_gmacs

__all__ = ["PlatformResult", "compare_platforms", "speedup_breakdown"]


@dataclass
class PlatformResult:
    """One bar of Fig. 13."""

    platform: str
    pruned: bool
    fps: float
    power_w: float
    speedup_vs_cpu_dense: float
    energy_efficiency: float


def compare_platforms(config, stage_plan, device=ZCU102):
    """Fig. 13 data for one backbone: CPU/GPU (dense + pruned), FPGA
    baseline (16-bit dense), and the full HeatViT FPGA design."""
    dense_gmacs = model_gmacs(config)
    pruned_gmacs = pruned_model_gmacs(config, stage_plan)

    cpu_dense_fps = TX2_CPU.fps(dense_gmacs)
    results = [
        PlatformResult("TX2-CPU", False, cpu_dense_fps, TX2_CPU.power_w,
                       1.0, cpu_dense_fps / TX2_CPU.power_w),
        PlatformResult("TX2-CPU", True, TX2_CPU.fps(pruned_gmacs),
                       TX2_CPU.power_w,
                       TX2_CPU.fps(pruned_gmacs) / cpu_dense_fps,
                       TX2_CPU.fps(pruned_gmacs) / TX2_CPU.power_w),
        PlatformResult("TX2-GPU", False, TX2_GPU.fps(dense_gmacs),
                       TX2_GPU.power_w,
                       TX2_GPU.fps(dense_gmacs) / cpu_dense_fps,
                       TX2_GPU.fps(dense_gmacs) / TX2_GPU.power_w),
        PlatformResult("TX2-GPU", True, TX2_GPU.fps(pruned_gmacs),
                       TX2_GPU.power_w,
                       TX2_GPU.fps(pruned_gmacs) / cpu_dense_fps,
                       TX2_GPU.fps(pruned_gmacs) / TX2_GPU.power_w),
    ]

    base_report = ViTAcceleratorSim(config, baseline_design(config),
                                    device=device).simulate()
    results.append(PlatformResult(
        "FPGA-baseline", False, base_report.fps, base_report.power_w,
        base_report.fps / cpu_dense_fps, base_report.energy_efficiency))

    heat_report = ViTAcceleratorSim(config, heatvit_design(config),
                                    device=device).simulate(stage_plan)
    results.append(PlatformResult(
        "FPGA-HeatViT", True, heat_report.fps, heat_report.power_w,
        heat_report.fps / cpu_dense_fps, heat_report.energy_efficiency))
    return results


def speedup_breakdown(config, stage_plan, device=ZCU102):
    """Decompose the FPGA speedup into pruning and quantization parts.

    Returns ``{'pruning': x, 'quantization': y, 'total': x*y}`` relative
    to the 16-bit dense FPGA baseline, the Fig. 13 breakdown.
    """
    base = ViTAcceleratorSim(config, baseline_design(config),
                             device=device).simulate()
    heat_sim = ViTAcceleratorSim(config, heatvit_design(config),
                                 device=device)
    dense8 = heat_sim.simulate()
    pruned8 = heat_sim.simulate(stage_plan)
    quant_speedup = dense8.speedup_over(base)
    pruning_speedup = pruned8.latency_ms and (dense8.latency_ms
                                              / pruned8.latency_ms)
    return {"pruning": pruning_speedup,
            "quantization": quant_speedup,
            "total": pruned8.speedup_over(base)}
