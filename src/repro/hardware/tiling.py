"""Design-space exploration for the GEMM tiling factors (Sec. V-B2).

"To improve throughput, we optimize parallelism factors including Ti,
To, and Th ... we will conduct comprehensive FPGA resource modeling for
available computing and on-chip memory resources."  This module searches
(Ti, To, Th) under the device DSP/BRAM/LUT budgets to minimize simulated
model latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.accelerator import AcceleratorDesign, ViTAcceleratorSim
from repro.hardware.device import ZCU102

__all__ = ["TilingChoice", "search_tiling"]


@dataclass(frozen=True)
class TilingChoice:
    """One explored design point."""

    ti: int
    to: int
    th: int
    latency_ms: float
    fps: float
    utilization: dict

    @property
    def macs_per_cycle(self):
        return self.ti * self.to * self.th


def search_tiling(config, bitwidth=8, device=ZCU102,
                  ti_candidates=(4, 8, 16), to_candidates=(8, 16, 32, 64,
                                                           80, 96, 128),
                  max_dsp_fraction=0.85, with_token_selector=True,
                  stage_plan=None, top_k=5):
    """Exhaustively explore (Ti, To, Th) and rank by simulated latency.

    ``Th`` is fixed to the model's head count (the paper designs one
    accelerator per head count); Ti and To are swept.  Designs that
    exceed ``max_dsp_fraction`` of the device DSPs or any other resource
    budget are discarded.  Returns the ``top_k`` feasible choices, best
    first.
    """
    heads = config.num_heads
    choices = []
    for ti in ti_candidates:
        for to in to_candidates:
            design = AcceleratorDesign(
                name=f"search-{config.name}-{ti}x{to}x{heads}",
                ti=ti, to=to, th=heads, bitwidth=bitwidth,
                with_token_selector=with_token_selector,
                use_approx_nonlinear=(bitwidth == 8))
            sim = ViTAcceleratorSim(config, design, device=device)
            resources = sim.resource_usage()
            utilization = device.utilization(resources)
            if utilization["dsp"] > max_dsp_fraction:
                continue
            if not device.fits(resources):
                continue
            report = sim.simulate(stage_plan)
            choices.append(TilingChoice(
                ti=ti, to=to, th=heads, latency_ms=report.latency_ms,
                fps=report.fps, utilization=utilization))
    choices.sort(key=lambda c: c.latency_ms)
    if not choices:
        raise ValueError("no feasible tiling under the given budgets")
    return choices[:top_k]
