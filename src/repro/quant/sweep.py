"""Quantization studies: bit-width sweeps and per-channel quantization.

Supports the "more ambitious quantization" analysis of Sec. V: sweep
weight/activation precision, measure accuracy and logit drift, and
compare per-tensor vs per-channel weight scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor
from repro.quant.fixed_point import calibrate_minmax, dequantize, quantize

__all__ = ["per_channel_quantize", "per_channel_error",
           "BitWidthResult", "bitwidth_sweep"]


def per_channel_quantize(weight, bits=8):
    """Symmetric per-output-channel quantization of a 2-D weight.

    Returns ``(q, scales)`` with ``scales`` of shape ``(out_features,)``.
    Per-channel scaling shrinks quantization error for weights whose
    magnitude varies across output channels (the usual case for the
    qkv projections).
    """
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 2:
        raise ValueError("expected a 2-D (in, out) weight")
    qmax = 2 ** (bits - 1) - 1
    amax = np.abs(weight).max(axis=0)
    amax = np.where(amax == 0.0, 1.0, amax)
    scales = np.maximum(amax / qmax, np.finfo(np.float64).tiny)
    q = np.clip(np.rint(weight / scales), -qmax, qmax).astype(np.int64)
    return q, scales


def per_channel_error(weight, bits=8):
    """Mean |error| for per-tensor vs per-channel schemes: ``(pt, pc)``."""
    weight = np.asarray(weight, dtype=np.float64)
    params = calibrate_minmax(weight, bits=bits)
    per_tensor = np.abs(
        dequantize(quantize(weight, params), params) - weight).mean()
    q, scales = per_channel_quantize(weight, bits=bits)
    per_channel = np.abs(q * scales - weight).mean()
    return per_tensor, per_channel


@dataclass
class BitWidthResult:
    bits: int
    accuracy: float
    logit_drift: float


def bitwidth_sweep(make_model, images, labels, bit_widths=(16, 8, 6, 4),
                   approx_nonlinear=True):
    """Accuracy / drift across quantization bit widths.

    ``make_model`` must return a *fresh* float model each call (module
    surgery is destructive).  Drift is the max |logit delta| relative to
    the float model, normalized by the float logit range.
    """
    from repro.quant.qmodel import quantize_model

    float_model = make_model()
    float_model.eval()
    with nn.no_grad():
        reference = float_model(images).data
    ref_scale = max(np.abs(reference).max(), 1e-12)
    labels = np.asarray(labels)

    results = []
    for bits in bit_widths:
        model = make_model()
        model.eval()
        quantize_model(model, bits=bits,
                       approx_nonlinear=approx_nonlinear)
        with nn.no_grad():
            logits = model(images).data
        accuracy = float((logits.argmax(-1) == labels).mean())
        drift = float(np.abs(logits - reference).max() / ref_scale)
        results.append(BitWidthResult(bits=bits, accuracy=accuracy,
                                      logit_drift=drift))
    return results
