"""8-bit fixed-point quantization primitives (paper Sec. V).

Symmetric per-tensor quantization: ``q = round(x / scale)`` clipped to
``[-(2^(b-1) - 1), 2^(b-1) - 1]``.  The FPGA datapath uses 8-bit weights
and activations with wide (32-bit) accumulation; :func:`integer_matmul`
mirrors that accumulation so overflow behaviour can be tested.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuantParams", "quantize", "dequantize", "fake_quantize",
           "quantization_error", "integer_matmul", "calibrate_minmax"]


@dataclass(frozen=True)
class QuantParams:
    """Symmetric quantization parameters for one tensor."""

    scale: float
    bits: int = 8

    @property
    def qmax(self):
        return 2 ** (self.bits - 1) - 1

    @property
    def qmin(self):
        return -self.qmax

    def __post_init__(self):
        if self.bits < 2 or self.bits > 32:
            raise ValueError(f"bits out of range: {self.bits}")
        if self.scale <= 0.0:
            raise ValueError(f"scale must be positive: {self.scale}")


def calibrate_minmax(x, bits=8):
    """Min-max (abs-max for symmetric) calibration of one tensor."""
    x = np.asarray(x, dtype=np.float64)
    amax = float(np.abs(x).max()) if x.size else 0.0
    if amax == 0.0:
        amax = 1.0
    qmax = 2 ** (bits - 1) - 1
    # Guard against denormal inputs underflowing the scale to 0.
    scale = max(amax / qmax, np.finfo(np.float64).tiny)
    return QuantParams(scale=scale, bits=bits)


def quantize(x, params):
    """Quantize to integers (stored as int64 to survive accumulation)."""
    x = np.asarray(x, dtype=np.float64)
    q = np.rint(x / params.scale)
    return np.clip(q, params.qmin, params.qmax).astype(np.int64)


def dequantize(q, params):
    return np.asarray(q, dtype=np.float64) * params.scale


def fake_quantize(x, bits=8, params=None):
    """Quantize-dequantize round trip (the quantization 'noise' model)."""
    if params is None:
        params = calibrate_minmax(x, bits=bits)
    return dequantize(quantize(x, params), params)


def quantization_error(x, bits=8, params=None):
    """Elementwise |x - fake_quantize(x)|."""
    return np.abs(np.asarray(x, dtype=np.float64)
                  - fake_quantize(x, bits=bits, params=params))


def integer_matmul(q_a, q_b, accumulator_bits=32):
    """Integer GEMM with an accumulator-width overflow check.

    The GEMM engine accumulates 8x8-bit products in 32-bit registers
    (DSP48 usage on the ZCU102); this helper raises if the product of
    the given operands could not have been accumulated safely.
    """
    q_a = np.asarray(q_a, dtype=np.int64)
    q_b = np.asarray(q_b, dtype=np.int64)
    out = q_a @ q_b
    limit = 2 ** (accumulator_bits - 1) - 1
    if np.abs(out).max(initial=0) > limit:
        raise OverflowError(
            f"accumulation exceeds {accumulator_bits}-bit range")
    return out
