"""8-bit fixed-point quantization primitives (paper Sec. V).

Symmetric per-tensor quantization: ``q = round(x / scale)`` clipped to
``[-(2^(b-1) - 1), 2^(b-1) - 1]``.  The FPGA datapath uses 8-bit weights
and activations with wide (32-bit) accumulation; :func:`integer_matmul`
mirrors that accumulation so overflow behaviour can be tested, and
:func:`safe_accumulator_bits` derives the accumulator width a given
operand precision and reduction length actually need (the DSP48 cascade
on the ZCU102 offers 32- and 48-bit accumulation natively).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["QuantParams", "quantize", "dequantize", "fake_quantize",
           "quantization_error", "integer_matmul", "calibrate_minmax",
           "safe_accumulator_bits", "ACCUMULATOR_WIDTHS"]

#: Accumulator widths the GEMM engine can be built with: the DSP48's
#: native 48-bit cascade, the paper's 32-bit configuration, and a
#: 64-bit fallback (two cascaded DSP slices) for wide operands.
ACCUMULATOR_WIDTHS = (32, 48, 64)


@dataclass(frozen=True)
class QuantParams:
    """Symmetric quantization parameters for one tensor."""

    scale: float
    bits: int = 8

    @property
    def qmax(self):
        return 2 ** (self.bits - 1) - 1

    @property
    def qmin(self):
        return -self.qmax

    def __post_init__(self):
        if self.bits < 2 or self.bits > 32:
            raise ValueError(f"bits out of range: {self.bits}")
        # ``not (scale > 0)`` (rather than ``scale <= 0``) also rejects
        # NaN, whose comparisons are all False -- a NaN scale would
        # otherwise silently quantize every tensor to all-NaN.
        if not math.isfinite(self.scale) or not self.scale > 0.0:
            raise ValueError(f"scale must be positive and finite: "
                             f"{self.scale}")


def calibrate_minmax(x, bits=8):
    """Min-max (abs-max for symmetric) calibration of one tensor.

    Raises :class:`ValueError` on non-finite inputs: a single NaN/inf
    makes ``amax`` non-finite, which would previously slip past the
    ``scale <= 0`` guard (NaN comparisons are False) and return
    parameters that quantize everything to NaN.
    """
    x = np.asarray(x, dtype=np.float64)
    amax = float(np.abs(x).max()) if x.size else 0.0
    if not math.isfinite(amax):
        raise ValueError(
            f"cannot calibrate quantization on non-finite input "
            f"(abs-max is {amax}); clean NaN/inf values first")
    if amax == 0.0:
        amax = 1.0
    qmax = 2 ** (bits - 1) - 1
    # Guard against denormal inputs underflowing the scale to 0.
    scale = max(amax / qmax, np.finfo(np.float64).tiny)
    return QuantParams(scale=scale, bits=bits)


def quantize(x, params):
    """Quantize to integers (stored as int64 to survive accumulation)."""
    x = np.asarray(x, dtype=np.float64)
    q = np.rint(x / params.scale)
    return np.clip(q, params.qmin, params.qmax).astype(np.int64)


def dequantize(q, params):
    return np.asarray(q, dtype=np.float64) * params.scale


def fake_quantize(x, bits=8, params=None):
    """Quantize-dequantize round trip (the quantization 'noise' model)."""
    if params is None:
        params = calibrate_minmax(x, bits=bits)
    return dequantize(quantize(x, params), params)


def quantization_error(x, bits=8, params=None):
    """Elementwise |x - fake_quantize(x)|."""
    return np.abs(np.asarray(x, dtype=np.float64)
                  - fake_quantize(x, bits=bits, params=params))


def safe_accumulator_bits(bits, reduction_length):
    """Smallest supported accumulator width for a ``bits``-bit GEMM.

    The worst-case accumulated magnitude of a length-``K`` dot product
    of ``bits``-bit symmetric operands is ``qmax^2 * K``; the signed
    accumulator needs ``ceil(log2(qmax^2 * K)) + 1`` bits to hold it.
    Returns the smallest width from :data:`ACCUMULATOR_WIDTHS` that
    suffices, raising :class:`OverflowError` when even 64 bits cannot
    (no hard-coded 32-vs-48 branch: 16-bit operands over a long enough
    reduction genuinely exceed 48 bits).
    """
    if reduction_length < 1:
        raise ValueError(f"reduction_length must be >= 1: "
                         f"{reduction_length}")
    qmax = 2 ** (int(bits) - 1) - 1
    worst = qmax * qmax * int(reduction_length)
    needed = worst.bit_length() + 1          # + sign bit
    for width in ACCUMULATOR_WIDTHS:
        if needed <= width:
            return width
    raise OverflowError(
        f"{bits}-bit operands over a reduction of {reduction_length} "
        f"need a {needed}-bit accumulator; the widest supported is "
        f"{ACCUMULATOR_WIDTHS[-1]}-bit")


def integer_matmul(q_a, q_b, accumulator_bits=32):
    """Integer GEMM with an accumulator-width overflow check.

    The GEMM engine accumulates 8x8-bit products in 32-bit registers
    (DSP48 usage on the ZCU102); this helper raises if the product of
    the given operands could not have been accumulated safely.
    """
    q_a = np.asarray(q_a, dtype=np.int64)
    q_b = np.asarray(q_b, dtype=np.int64)
    out = q_a @ q_b
    limit = 2 ** (accumulator_bits - 1) - 1
    peak = int(np.abs(out).max(initial=0))
    if peak > limit:
        raise OverflowError(
            f"accumulation reaches magnitude {peak}, exceeding the "
            f"{accumulator_bits}-bit accumulator limit of {limit}")
    return out
