"""8-bit fixed-point quantization substrate."""

from repro.quant.fixed_point import (QuantParams, calibrate_minmax,
                                     dequantize, fake_quantize,
                                     integer_matmul, quantization_error,
                                     quantize)
from repro.quant.sweep import (BitWidthResult, bitwidth_sweep,
                               per_channel_error, per_channel_quantize)
from repro.quant.qmodel import (QuantizedLinear, count_quantized_modules,
                                fake_quantize_tensor, quantize_model)

__all__ = [
    "QuantParams", "quantize", "dequantize", "fake_quantize",
    "quantization_error", "integer_matmul", "calibrate_minmax",
    "QuantizedLinear", "fake_quantize_tensor", "quantize_model",
    "count_quantized_modules",
    "per_channel_quantize", "per_channel_error",
    "BitWidthResult", "bitwidth_sweep",
]
