"""8-bit fixed-point quantization substrate."""

from repro.quant.fixed_point import (ACCUMULATOR_WIDTHS, QuantParams,
                                     calibrate_minmax, dequantize,
                                     fake_quantize, integer_matmul,
                                     quantization_error, quantize,
                                     safe_accumulator_bits)
from repro.quant.sweep import (BitWidthResult, bitwidth_sweep,
                               per_channel_error, per_channel_quantize)
from repro.quant.qmodel import (PER_CHANNEL_CHILDREN, QuantizedLinear,
                                count_quantized_modules,
                                fake_quantize_tensor, quantize_model)

__all__ = [
    "QuantParams", "quantize", "dequantize", "fake_quantize",
    "quantization_error", "integer_matmul", "calibrate_minmax",
    "safe_accumulator_bits", "ACCUMULATOR_WIDTHS",
    "QuantizedLinear", "fake_quantize_tensor", "quantize_model",
    "count_quantized_modules", "PER_CHANNEL_CHILDREN",
    "per_channel_quantize", "per_channel_error",
    "BitWidthResult", "bitwidth_sweep",
]
