"""Model-level 8-bit quantization: quantized Linear layers and module
surgery that converts a trained float model for deployment.

Two flavours:

* :class:`QuantizedLinear` -- weights stored as int8, activations
  dynamically quantized per tensor, integer GEMM with 32-bit
  accumulation.  Inference-only (deployment semantics).
* :func:`fake_quantize_tensor` -- straight-through fake quantization for
  quantization-aware fine-tuning.

:func:`quantize_model` walks any :class:`repro.nn.Module` tree and swaps
``Linear -> QuantizedLinear`` (and optionally ``GELU/Sigmoid/Softmax`` to
their polynomial approximations), mirroring the paper's deployment flow:
token pruning first, then 8-bit quantization + approximated nonlinear
functions.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor
from repro.approx.layers import ApproxGELU, ApproxSigmoid
from repro.quant.fixed_point import (QuantParams, calibrate_minmax,
                                     dequantize, integer_matmul, quantize)

__all__ = ["QuantizedLinear", "fake_quantize_tensor", "quantize_model",
           "count_quantized_modules"]


def fake_quantize_tensor(x, bits=8):
    """Straight-through fake quantization of a Tensor (for QAT)."""
    x = Tensor.ensure(x)
    params = calibrate_minmax(x.data, bits=bits)
    rounded = dequantize(quantize(x.data, params), params)
    return x + Tensor(rounded - x.data)


class QuantizedLinear(nn.Module):
    """Int8-weight Linear with dynamic per-tensor activation quantization.

    Forward computes ``dequant(int_gemm(quant(x), W_q))`` -- numerically
    identical to what the FPGA GEMM engine produces.  Bias is added in
    float after dequantization (the accelerator keeps bias at higher
    precision).
    """

    def __init__(self, weight_q, weight_params, bias, in_features,
                 out_features):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight_q = weight_q
        self.weight_params = weight_params
        self.bias_data = bias
        self.bits = weight_params.bits

    @classmethod
    def from_linear(cls, linear, bits=8):
        weight = linear.weight.data
        params = calibrate_minmax(weight, bits=bits)
        weight_q = quantize(weight, params)
        bias = None if linear.bias is None else linear.bias.data.copy()
        return cls(weight_q, params, bias, linear.in_features,
                   linear.out_features)

    def forward(self, x):
        x = Tensor.ensure(x)
        data = x.data
        act_params = calibrate_minmax(data, bits=self.bits)
        x_q = quantize(data, act_params)
        flat = x_q.reshape(-1, self.in_features)
        # 8-bit products fit 32-bit accumulators; wider operands use the
        # DSP48's native 48-bit accumulator.
        accumulator = 32 if self.bits <= 8 else 48
        out_q = integer_matmul(flat, self.weight_q,
                               accumulator_bits=accumulator)
        out = out_q.astype(np.float64) * (act_params.scale
                                          * self.weight_params.scale)
        out = out.reshape(data.shape[:-1] + (self.out_features,))
        if self.bias_data is not None:
            out = out + self.bias_data
        return Tensor(out)

    def __repr__(self):
        return (f"QuantizedLinear(in={self.in_features}, "
                f"out={self.out_features}, bits={self.bits})")


def quantize_model(model, bits=8, approx_nonlinear=True, delta1=0.5):
    """In-place module surgery: float model -> deployment model.

    Swaps every ``Linear`` for a :class:`QuantizedLinear` and, when
    ``approx_nonlinear`` is set, every ``GELU``/``Sigmoid`` for its
    polynomial approximation.  Returns the number of swapped modules.
    The resulting model is inference-only (no gradients).
    """
    swapped = 0
    for module in list(model.modules()):
        for name, child in list(module._modules.items()):
            replacement = None
            if isinstance(child, nn.Linear):
                replacement = QuantizedLinear.from_linear(child, bits=bits)
            elif approx_nonlinear and type(child) is nn.GELU:
                replacement = ApproxGELU(delta1=delta1)
            elif approx_nonlinear and type(child) is nn.Sigmoid:
                replacement = ApproxSigmoid()
            if replacement is not None:
                module.register_module(name, replacement)
                swapped += 1
    return swapped


def count_quantized_modules(model):
    return sum(1 for m in model.modules() if isinstance(m, QuantizedLinear))
