"""Model-level 8-bit quantization: quantized Linear layers and module
surgery that converts a trained float model for deployment.

Two flavours:

* :class:`QuantizedLinear` -- weights stored as int8 (per-tensor or
  per-output-channel scales), activations dynamically quantized per
  tensor, integer GEMM with an accumulator wide enough for the operand
  precision and reduction length.  Inference-only (deployment
  semantics).
* :func:`fake_quantize_tensor` -- straight-through fake quantization for
  quantization-aware fine-tuning.

:func:`quantize_model` walks any :class:`repro.nn.Module` tree and swaps
``Linear -> QuantizedLinear`` plus, when ``approx_nonlinear`` is set,
``GELU/Sigmoid/Softmax`` to their polynomial approximations, mirroring
the paper's deployment flow: token pruning first, then 8-bit
quantization + approximated nonlinear functions.  This simulation is the
numeric reference the engine's ``backend="int8"`` fast path is held
bitwise-equal to (``tests/engine/test_quantized.py``).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor
from repro.approx.layers import ApproxGELU, ApproxSigmoid, ApproxSoftmax
from repro.quant.fixed_point import (QuantParams, calibrate_minmax,
                                     dequantize, integer_matmul, quantize,
                                     safe_accumulator_bits)
from repro.quant.sweep import per_channel_quantize

__all__ = ["QuantizedLinear", "fake_quantize_tensor", "quantize_model",
           "count_quantized_modules"]


def fake_quantize_tensor(x, bits=8):
    """Straight-through fake quantization of a Tensor (for QAT)."""
    x = Tensor.ensure(x)
    params = calibrate_minmax(x.data, bits=bits)
    rounded = dequantize(quantize(x.data, params), params)
    return x + Tensor(rounded - x.data)


class QuantizedLinear(nn.Module):
    """Integer-weight Linear with dynamic per-tensor activation quantization.

    Forward computes ``dequant(int_gemm(quant(x), W_q))`` -- numerically
    identical to what the FPGA GEMM engine produces.  Bias is added in
    float after dequantization (the accelerator keeps bias at higher
    precision).  Weights carry either one scale per tensor or one per
    output channel (``per_channel=True`` in :meth:`from_linear`); the
    accumulator width is derived from the operand precision and the
    reduction length via :func:`safe_accumulator_bits` rather than a
    hard-coded 32/48 branch, so 16-bit operands over wide reductions get
    the 64-bit accumulator they need.
    """

    def __init__(self, weight_q, weight_scales, bias, in_features,
                 out_features, bits, weight_params=None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight_q = weight_q
        # Scalar float (per-tensor) or (out_features,) array (per-channel).
        self.weight_scales = weight_scales
        self.weight_params = weight_params
        self.bias_data = bias
        self.per_channel = isinstance(weight_scales, np.ndarray)
        self.bits = bits
        self.accumulator_bits = safe_accumulator_bits(bits, in_features)

    @classmethod
    def from_linear(cls, linear, bits=8, per_channel=False):
        weight = linear.weight.data
        bias = None if linear.bias is None else linear.bias.data.copy()
        if per_channel:
            weight_q, scales = per_channel_quantize(weight, bits=bits)
            return cls(weight_q, scales, bias, linear.in_features,
                       linear.out_features, bits)
        params = calibrate_minmax(weight, bits=bits)
        weight_q = quantize(weight, params)
        return cls(weight_q, params.scale, bias, linear.in_features,
                   linear.out_features, bits, weight_params=params)

    def forward(self, x):
        x = Tensor.ensure(x)
        data = x.data
        act_params = calibrate_minmax(data, bits=self.bits)
        x_q = quantize(data, act_params)
        flat = x_q.reshape(-1, self.in_features)
        out_q = integer_matmul(flat, self.weight_q,
                               accumulator_bits=self.accumulator_bits)
        out = out_q.astype(np.float64) * (act_params.scale
                                          * self.weight_scales)
        out = out.reshape(data.shape[:-1] + (self.out_features,))
        if self.bias_data is not None:
            out = out + self.bias_data
        return Tensor(out)

    def __repr__(self):
        scheme = "per_channel" if self.per_channel else "per_tensor"
        return (f"QuantizedLinear(in={self.in_features}, "
                f"out={self.out_features}, bits={self.bits}, {scheme})")


#: Child names quantized per output channel by default -- the qkv and
#: MLP GEMMs the paper calls out as magnitude-skewed across channels.
PER_CHANNEL_CHILDREN = ("qkv", "fc1", "fc2")


def _wants_per_channel(per_channel, name):
    if per_channel is True or per_channel is False:
        return per_channel
    return name in per_channel


def quantize_model(model, bits=8, approx_nonlinear=True, delta1=0.5,
                   delta2=1.0, per_channel=False, skip=()):
    """In-place module surgery: float model -> deployment model.

    Swaps every ``Linear`` (including subclasses) for a
    :class:`QuantizedLinear` and, when ``approx_nonlinear`` is set,
    every ``GELU``/``Sigmoid``/``Softmax`` module for its polynomial
    approximation.  Returns the number of swapped modules.  The
    resulting model is inference-only (no gradients).

    ``per_channel`` selects weight scaling: ``False`` (per-tensor
    everywhere), ``True`` (per output channel everywhere), or a
    collection of child names (e.g. ``("qkv", "fc1", "fc2")``) that get
    per-channel scales while everything else stays per-tensor.

    ``skip`` is an explicit opt-out: children that are instances of any
    listed type are left untouched (the ``isinstance`` checks otherwise
    deliberately catch subclasses).

    ``delta2`` defaults to 1.0: the paper's ``delta2 < 1`` softmax
    regularizer assumes fine-tuning with the approximation in the loop;
    halving every attention row on an unmodified checkpoint is not a
    faithful deployment.  (``delta1`` keeps its historical 0.5 default
    for the GELU swap.)
    """
    skip = tuple(skip)
    swapped = 0
    for module in list(model.modules()):
        for name, child in list(module._modules.items()):
            if skip and isinstance(child, skip):
                continue
            replacement = None
            if isinstance(child, nn.Linear):
                replacement = QuantizedLinear.from_linear(
                    child, bits=bits,
                    per_channel=_wants_per_channel(per_channel, name))
            elif approx_nonlinear and isinstance(child, nn.GELU):
                replacement = ApproxGELU(delta1=delta1)
            elif approx_nonlinear and isinstance(child, nn.Sigmoid):
                replacement = ApproxSigmoid()
            elif approx_nonlinear and isinstance(child, nn.Softmax):
                replacement = ApproxSoftmax(axis=child.axis, delta2=delta2)
            if replacement is not None:
                module.register_module(name, replacement)
                swapped += 1
    return swapped


def count_quantized_modules(model):
    return sum(1 for m in model.modules() if isinstance(m, QuantizedLinear))
