"""Synthetic "cluttered object" dataset standing in for ImageNet-1K.

Token pruning works because classification accuracy depends on object
pixels, not background pixels (paper Sec. II-B, citing instance
localization results).  This generator makes that structure explicit and
controllable: every image contains one class-determining object (a
shape/color combination) whose size and location vary per image, over a
noisy textured background.  Because object size varies, the *optimal*
number of informative tokens varies per image -- exactly the property
image-adaptive pruning exploits and static pruning cannot (Fig. 4).

Ground-truth object masks are returned alongside images so tests can
check that the token selector keeps object tokens and prunes background.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SyntheticConfig", "SyntheticDataset", "generate_dataset",
           "patch_object_fraction", "NUM_SHAPES", "NUM_COLORS"]

NUM_SHAPES = 4   # square, disk, cross, diamond
NUM_COLORS = 2   # warm (R+G), cool (B+G)


@dataclass(frozen=True)
class SyntheticConfig:
    """Generation parameters.

    ``object_scale_range`` is the object's linear size as a fraction of
    the image side; wide ranges produce strongly image-dependent token
    redundancy.
    """

    image_size: int = 32
    num_classes: int = 8
    object_scale_range: tuple = (0.25, 0.65)
    noise_std: float = 0.15
    background_amplitude: float = 0.25
    object_intensity: float = 1.0
    # Fraction of the legal placement range the object centre may roam:
    # 1.0 = anywhere, 0.0 = always centred.  Laptop-scale models learn
    # shapes much faster with moderate jitter, while object *size*
    # variation (the driver of image-adaptive pruning) is unaffected.
    center_jitter: float = 1.0

    def __post_init__(self):
        if self.num_classes > NUM_SHAPES * NUM_COLORS:
            raise ValueError(
                f"at most {NUM_SHAPES * NUM_COLORS} classes supported")
        lo, hi = self.object_scale_range
        if not 0.0 < lo <= hi <= 1.0:
            raise ValueError("object_scale_range must be within (0, 1]")
        if not 0.0 <= self.center_jitter <= 1.0:
            raise ValueError("center_jitter must be in [0, 1]")


class SyntheticDataset:
    """Container: images ``(B, 3, H, W)``, labels ``(B,)``, masks
    ``(B, H, W)`` (1 on object pixels), and per-image object fraction."""

    def __init__(self, images, labels, masks):
        self.images = images
        self.labels = labels
        self.masks = masks

    def __len__(self):
        return len(self.labels)

    @property
    def object_fractions(self):
        return self.masks.reshape(len(self), -1).mean(axis=1)

    def split(self, train_fraction=0.8, rng=None):
        """Shuffle and split into (train, val) datasets."""
        rng = np.random.default_rng(0) if rng is None else rng
        order = rng.permutation(len(self))
        cut = int(train_fraction * len(self))
        first, second = order[:cut], order[cut:]
        return (SyntheticDataset(self.images[first], self.labels[first],
                                 self.masks[first]),
                SyntheticDataset(self.images[second], self.labels[second],
                                 self.masks[second]))


def _shape_mask(shape_id, size, scale, center, image_size):
    """Binary mask of the object shape on the pixel grid."""
    ys, xs = np.mgrid[0:image_size, 0:image_size].astype(np.float64)
    cy, cx = center
    half = max(1.0, scale * image_size / 2.0)
    dy, dx = ys - cy, xs - cx
    if shape_id == 0:    # square
        return (np.abs(dy) <= half) & (np.abs(dx) <= half)
    if shape_id == 1:    # cross (maximally distinct from the square so
        # small class counts remain learnable at low resolution)
        arm = max(1.0, half / 2.0)
        return (((np.abs(dy) <= arm) & (np.abs(dx) <= half))
                | ((np.abs(dx) <= arm) & (np.abs(dy) <= half)))
    if shape_id == 2:    # disk
        return dy ** 2 + dx ** 2 <= half ** 2
    if shape_id == 3:    # diamond
        return np.abs(dy) + np.abs(dx) <= half
    raise ValueError(f"unknown shape id {shape_id}")


def _class_attributes(label):
    """Map a class label to (shape_id, color_id).

    Color varies fastest so that small class counts still mix both easy
    (color) and hard (shape) features -- keeping laptop-scale models
    trainable while preserving a shape-recognition component.
    """
    return label // NUM_COLORS, label % NUM_COLORS


def _color_vector(color_id, intensity):
    if color_id == 0:    # warm
        return np.array([intensity, 0.6 * intensity, 0.1 * intensity])
    return np.array([0.1 * intensity, 0.6 * intensity, intensity])


def generate_dataset(config, count, rng=None):
    """Generate ``count`` labelled images (labels are uniform)."""
    rng = np.random.default_rng(0) if rng is None else rng
    size = config.image_size
    images = np.zeros((count, 3, size, size))
    labels = rng.integers(0, config.num_classes, size=count)
    masks = np.zeros((count, size, size))

    # Smooth background texture shared structure, per-image phase.
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float64)
    for index in range(count):
        phase = rng.uniform(0, 2 * np.pi, size=2)
        freq = rng.uniform(0.15, 0.45, size=2)
        texture = (np.sin(freq[0] * xs + phase[0])
                   * np.cos(freq[1] * ys + phase[1]))
        background = config.background_amplitude * texture
        image = np.tile(background, (3, 1, 1))

        shape_id, color_id = _class_attributes(int(labels[index]))
        scale = rng.uniform(*config.object_scale_range)
        margin = max(2.0, scale * size / 2.0)
        middle = size / 2.0
        half_range = max(0.0, (size - 2 * margin) / 2.0)
        half_range *= config.center_jitter
        center = rng.uniform(middle - half_range, middle + half_range,
                             size=2)
        mask = _shape_mask(shape_id, size, scale, center, size)
        color = _color_vector(color_id, config.object_intensity)
        image = image * (1.0 - mask) + color[:, None, None] * mask

        image += rng.normal(scale=config.noise_std, size=image.shape)
        images[index] = image
        masks[index] = mask

    return SyntheticDataset(images, labels.astype(np.int64), masks)


def patch_object_fraction(masks, patch_size):
    """Per-patch object coverage: ``(B, N)`` in [0, 1].

    Token ``j`` is "informative" ground-truth-wise when its patch
    overlaps the object; used to evaluate selector quality.
    """
    masks = np.asarray(masks)
    single = masks.ndim == 2
    if single:
        masks = masks[None]
    batch, height, width = masks.shape
    if height % patch_size or width % patch_size:
        raise ValueError("mask size not divisible by patch size")
    gh, gw = height // patch_size, width // patch_size
    patches = masks.reshape(batch, gh, patch_size, gw, patch_size)
    fractions = patches.mean(axis=(2, 4)).reshape(batch, gh * gw)
    return fractions[0] if single else fractions
