"""Lightweight data augmentations for training on the synthetic set.

DeiT's recipe leans heavily on augmentation; at our scale a small set
(flips, crops with padding, brightness/contrast jitter, Gaussian noise)
is enough to regularize the little backbones without external deps.
All transforms take/return ``(B, C, H, W)`` float arrays and an
explicit ``rng`` for reproducibility.
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_horizontal_flip", "random_vertical_flip",
           "random_crop_pad", "color_jitter", "add_gaussian_noise",
           "Compose", "standard_augmentation"]


def _check_batch(images):
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 4:
        raise ValueError(f"expected (B, C, H, W), got {images.shape}")
    return images


def random_horizontal_flip(images, rng, probability=0.5):
    images = _check_batch(images).copy()
    flips = rng.uniform(size=len(images)) < probability
    images[flips] = images[flips, :, :, ::-1]
    return images


def random_vertical_flip(images, rng, probability=0.5):
    images = _check_batch(images).copy()
    flips = rng.uniform(size=len(images)) < probability
    images[flips] = images[flips, :, ::-1, :]
    return images


def random_crop_pad(images, rng, padding=2):
    """Pad reflectively by ``padding`` and crop back at a random offset."""
    images = _check_batch(images)
    batch, channels, height, width = images.shape
    padded = np.pad(images, ((0, 0), (0, 0), (padding, padding),
                             (padding, padding)), mode="reflect")
    out = np.empty_like(images)
    offsets = rng.integers(0, 2 * padding + 1, size=(batch, 2))
    for index in range(batch):
        dy, dx = offsets[index]
        out[index] = padded[index, :, dy:dy + height, dx:dx + width]
    return out


def color_jitter(images, rng, brightness=0.2, contrast=0.2):
    """Per-image random brightness shift and contrast scale."""
    images = _check_batch(images)
    batch = len(images)
    shift = rng.uniform(-brightness, brightness, size=(batch, 1, 1, 1))
    scale = 1.0 + rng.uniform(-contrast, contrast, size=(batch, 1, 1, 1))
    mean = images.mean(axis=(2, 3), keepdims=True)
    return (images - mean) * scale + mean + shift


def add_gaussian_noise(images, rng, std=0.02):
    images = _check_batch(images)
    return images + rng.normal(scale=std, size=images.shape)


class Compose:
    """Apply a sequence of ``fn(images, rng)`` transforms."""

    def __init__(self, transforms):
        self.transforms = list(transforms)

    def __call__(self, images, rng):
        for transform in self.transforms:
            images = transform(images, rng)
        return images


def standard_augmentation(padding=2, noise_std=0.02):
    """The default training augmentation pipeline."""
    return Compose([
        random_horizontal_flip,
        lambda imgs, rng: random_crop_pad(imgs, rng, padding=padding),
        color_jitter,
        lambda imgs, rng: add_gaussian_noise(imgs, rng, std=noise_std),
    ])
