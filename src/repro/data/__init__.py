"""Synthetic data substrate (ImageNet substitute; see DESIGN.md)."""

from repro.data.transforms import (Compose, add_gaussian_noise,
                                   color_jitter, random_crop_pad,
                                   random_horizontal_flip,
                                   random_vertical_flip,
                                   standard_augmentation)
from repro.data.synthetic import (NUM_COLORS, NUM_SHAPES, SyntheticConfig,
                                  SyntheticDataset, generate_dataset,
                                  patch_object_fraction)

__all__ = [
    "SyntheticConfig", "SyntheticDataset", "generate_dataset",
    "patch_object_fraction", "NUM_SHAPES", "NUM_COLORS",
    "Compose", "random_horizontal_flip", "random_vertical_flip",
    "random_crop_pad", "color_jitter", "add_gaussian_noise",
    "standard_augmentation",
]
