"""Polynomial approximations of ViT nonlinear functions (paper Sec. V-D).

These are the hardware-friendly replacements for GELU, Softmax, and
Sigmoid that avoid the Vitis HLS math library's expensive ``exp``/``erf``
cores (Table III).  The GELU and Softmax approximations carry explicit
regularization factors ``delta1``/``delta2`` (< 1) that *shrink* the
function's derivative and therefore damp quantization-error propagation
(Sec. V-E); pass ``delta=1.0`` for a pure I-BERT-style approximation.

All functions are plain numpy (they model fixed-function hardware, not
trainable layers) and are vectorized elementwise.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ERF_A", "ERF_B", "DEFAULT_DELTA1", "DEFAULT_DELTA2",
    "erf_approx", "gelu_approx", "exp_approx", "softmax_approx",
    "sigmoid_plan", "gelu_exact", "softmax_exact", "sigmoid_exact",
]

# Second-order erf fit constants (Eq. 11, from I-BERT).
ERF_A = -0.2888
ERF_B = -1.769
# Regularization factors used throughout the paper's experiments.
DEFAULT_DELTA1 = 0.5
DEFAULT_DELTA2 = 0.5

# exp(p) fit on p in (-ln2, 0] (Eq. 14).
_EXP_C0 = 0.3585
_EXP_C1 = 1.353
_EXP_C2 = 0.344

_LN2 = np.log(2.0)


def erf_approx(x, delta1=DEFAULT_DELTA1):
    """``L_erf`` (Eq. 11): sign(x) * d1 * [a*(min(|x|,-b)+b)^2 + 1].

    The clip at ``|x| = -b = 1.769`` saturates the polynomial exactly
    where the true erf saturates; ``delta1 < 1`` then shrinks the whole
    output range as the quantization-error regularizer.
    """
    x = np.asarray(x, dtype=np.float64)
    clipped = np.minimum(np.abs(x), -ERF_B)
    poly = ERF_A * (clipped + ERF_B) ** 2 + 1.0
    return np.sign(x) * delta1 * poly


def gelu_approx(x, delta1=DEFAULT_DELTA1):
    """``GELU_aprx`` (Eq. 12): x/2 * (1 + L_erf(x / sqrt(2)))."""
    x = np.asarray(x, dtype=np.float64)
    return 0.5 * x * (1.0 + erf_approx(x / np.sqrt(2.0), delta1=delta1))


def exp_approx(x):
    """Shift-based exp for non-positive inputs (Eqs. 13-14 machinery).

    Decompose ``x = (-ln 2) * z + p`` with integer ``z >= 0`` and
    ``p in (-ln2, 0]``; then ``exp(x) = exp(p) >> z`` where ``exp(p)`` is
    the second-order fit of Eq. 14.  On the FPGA the ``>> z`` is a free
    barrel shift; here it is ``* 2.0 ** -z``.
    """
    x = np.asarray(x, dtype=np.float64)
    if np.any(x > 1e-9):
        raise ValueError("exp_approx expects non-positive inputs "
                         "(apply the max-subtraction first)")
    x = np.minimum(x, 0.0)
    z = np.floor(-x / _LN2)
    p = x + z * _LN2                      # p in (-ln2, 0]
    exp_p = _EXP_C0 * (p + _EXP_C1) ** 2 + _EXP_C2
    return exp_p * np.exp2(-z)


def softmax_approx(x, axis=-1, delta2=DEFAULT_DELTA2):
    """``Softmax_aprx`` (Eq. 13): d2 * exp~(x - max) / sum exp~(x - max).

    The max subtraction guarantees non-positive inputs for
    :func:`exp_approx`; ``delta2 < 1`` scales the output distribution so
    downstream quantization error shrinks (Eq. 17).
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - x.max(axis=axis, keepdims=True)
    exps = exp_approx(shifted)
    return delta2 * exps / exps.sum(axis=axis, keepdims=True)


def sigmoid_plan(x):
    """PLAN piecewise-linear sigmoid (Tsmots et al., used in Sec. V-D).

    Exact on the breakpoints' plateaus, within ~2e-2 of the true sigmoid
    everywhere; only adders/shifters on hardware.
    """
    x = np.asarray(x, dtype=np.float64)
    ax = np.abs(x)
    y = np.where(ax >= 5.0, 1.0,
                 np.where(ax >= 2.375, 0.03125 * ax + 0.84375,
                          np.where(ax >= 1.0, 0.125 * ax + 0.625,
                                   0.25 * ax + 0.5)))
    return np.where(x >= 0.0, y, 1.0 - y)


# ----------------------------------------------------------------------
# Exact references (numpy) for error measurements
# ----------------------------------------------------------------------
def gelu_exact(x):
    from scipy import special
    x = np.asarray(x, dtype=np.float64)
    return 0.5 * x * (1.0 + special.erf(x / np.sqrt(2.0)))


def softmax_exact(x, axis=-1):
    from scipy import special
    return special.softmax(np.asarray(x, dtype=np.float64), axis=axis)


def sigmoid_exact(x):
    from scipy import special
    return special.expit(np.asarray(x, dtype=np.float64))
