"""Differentiable (Tensor-level) versions of the approximated functions.

The numpy functions in :mod:`repro.approx.polynomial` model the
fixed-function hardware; the classes here wrap the same polynomials in
autodiff ops so models can be *fine-tuned with the approximations in the
loop*, as the paper does ("for each model, we try multiple sets of token
pruning ratios and there is no accuracy drop between the approximate
model and the original one").
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor
from repro.approx.polynomial import (DEFAULT_DELTA1, DEFAULT_DELTA2, ERF_A,
                                     ERF_B)

__all__ = ["erf_approx_t", "gelu_approx_t", "softmax_approx_t",
           "sigmoid_plan_t", "ApproxGELU", "ApproxSigmoid", "ApproxSoftmax"]

_LN2 = np.log(2.0)
_SQRT_2 = np.sqrt(2.0)


def erf_approx_t(x, delta1=DEFAULT_DELTA1):
    """Differentiable ``L_erf`` (Eq. 11).  sign(x) is treated as a
    constant, which matches the true (a.e.) derivative."""
    x = Tensor.ensure(x)
    sign = Tensor(np.sign(x.data))
    clipped = x.abs().clip(max_value=-ERF_B)
    poly = (clipped + ERF_B) ** 2 * ERF_A + 1.0
    return sign * poly * delta1


def gelu_approx_t(x, delta1=DEFAULT_DELTA1):
    """Differentiable ``GELU_aprx`` (Eq. 12)."""
    x = Tensor.ensure(x)
    return x * 0.5 * (erf_approx_t(x / _SQRT_2, delta1=delta1) + 1.0)


def _exp_approx_t(x):
    """Differentiable shift-based exp for non-positive inputs (Eq. 14).

    The shift count ``z`` is an integer constant of the forward pass, so
    the gradient flows only through the second-order polynomial -- the
    same piecewise-smooth behaviour the hardware exhibits.
    """
    x = Tensor.ensure(x)
    z = np.floor(-np.minimum(x.data, 0.0) / _LN2)
    p = x + Tensor(z * _LN2)
    exp_p = (p + 1.353) ** 2 * 0.3585 + 0.344
    return exp_p * Tensor(np.exp2(-z))


def softmax_approx_t(x, axis=-1, delta2=DEFAULT_DELTA2):
    """Differentiable ``Softmax_aprx`` (Eq. 13)."""
    x = Tensor.ensure(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = _exp_approx_t(shifted)
    return exps / exps.sum(axis=axis, keepdims=True) * delta2


def sigmoid_plan_t(x):
    """Differentiable PLAN sigmoid (piecewise-linear, exact gradients)."""
    x = Tensor.ensure(x)
    ax = x.abs()
    data = ax.data
    # Piecewise selection via constant masks; each segment is linear so
    # the composed gradient is exact almost everywhere.
    seg_hi = data >= 5.0
    seg_mid = (data >= 2.375) & ~seg_hi
    seg_low = (data >= 1.0) & ~seg_hi & ~seg_mid
    seg_base = data < 1.0
    y = (Tensor(seg_hi.astype(np.float64))
         + (ax * 0.03125 + 0.84375) * Tensor(seg_mid.astype(np.float64))
         + (ax * 0.125 + 0.625) * Tensor(seg_low.astype(np.float64))
         + (ax * 0.25 + 0.5) * Tensor(seg_base.astype(np.float64)))
    positive = Tensor((x.data >= 0.0).astype(np.float64))
    return y * positive + (1.0 - y) * (1.0 - positive)


class ApproxGELU(nn.Module):
    """Drop-in replacement for :class:`repro.nn.GELU` (Eq. 12)."""

    def __init__(self, delta1=DEFAULT_DELTA1):
        super().__init__()
        self.delta1 = delta1

    def forward(self, x):
        return gelu_approx_t(x, delta1=self.delta1)


class ApproxSigmoid(nn.Module):
    """Drop-in replacement for :class:`repro.nn.Sigmoid` (PLAN)."""

    def forward(self, x):
        return sigmoid_plan_t(x)


class ApproxSoftmax(nn.Module):
    """Drop-in replacement for :class:`repro.nn.Softmax` (Eq. 13)."""

    def __init__(self, axis=-1, delta2=DEFAULT_DELTA2):
        super().__init__()
        self.axis = axis
        self.delta2 = delta2

    def forward(self, x):
        return softmax_approx_t(x, axis=self.axis, delta2=self.delta2)
