"""Quantization-error regularization analysis (paper Sec. V-E, Fig. 10).

The paper argues that because the approximated GELU/Softmax have
derivative magnitude strictly below 1 (thanks to ``delta1``/``delta2``),
an input quantization error ``de`` shrinks when propagated through them
(Eqs. 15-17).  This module computes the exact and approximated
derivatives so the claim can be plotted (Fig. 10) and property-tested.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro.approx.polynomial import (DEFAULT_DELTA1, DEFAULT_DELTA2, ERF_A,
                                     ERF_B, softmax_approx, softmax_exact)

__all__ = [
    "gelu_exact_derivative", "gelu_approx_derivative",
    "softmax_error_bound", "softmax_error_empirical",
    "gelu_error_propagation", "derivative_profile",
]

_SQRT_2 = np.sqrt(2.0)


def gelu_exact_derivative(x):
    """d/dx of the exact GELU: Phi(x) + x * phi(x)."""
    x = np.asarray(x, dtype=np.float64)
    cdf = 0.5 * (1.0 + special.erf(x / _SQRT_2))
    pdf = np.exp(-0.5 * x ** 2) / np.sqrt(2.0 * np.pi)
    return cdf + x * pdf


def _erf_approx_derivative(x, delta1):
    """Derivative of L_erf: 2*a*delta1*(min(|x|,-b)+b) * sign'(branch)."""
    x = np.asarray(x, dtype=np.float64)
    ax = np.abs(x)
    inside = ax < -ERF_B
    # For |x| < 1.769: d/dx sign(x)*d1*(a*(|x|+b)^2+1) = d1*2a*(|x|+b)
    # (sign * d|x|/dx = 1); outside, the output saturates -> derivative 0.
    return np.where(inside, delta1 * 2.0 * ERF_A * (ax + ERF_B), 0.0)


def gelu_approx_derivative(x, delta1=DEFAULT_DELTA1):
    """d/dx of GELU_aprx = 1/2*(1 + L_erf(x/sqrt2)) + x/2 * L_erf'(x/sqrt2)/sqrt2."""
    from repro.approx.polynomial import erf_approx
    x = np.asarray(x, dtype=np.float64)
    l = erf_approx(x / _SQRT_2, delta1=delta1)
    dl = _erf_approx_derivative(x / _SQRT_2, delta1) / _SQRT_2
    return 0.5 * (1.0 + l) + 0.5 * x * dl


def gelu_error_propagation(x, input_error, delta1=DEFAULT_DELTA1):
    """Eq. 15: |dA/dx| * de for the approximated GELU."""
    return np.abs(gelu_approx_derivative(x, delta1=delta1)) * input_error


def softmax_error_bound(probabilities, input_error, delta2=DEFAULT_DELTA2):
    """Eq. 17: total output error 2*d2*|de|*A0*(1-A0) for a perturbed
    input coordinate with output probability ``A0``."""
    a0 = np.asarray(probabilities, dtype=np.float64)
    return 2.0 * delta2 * np.abs(input_error) * a0 * (1.0 - a0)


def softmax_error_empirical(x, index, input_error, axis=-1,
                            delta2=DEFAULT_DELTA2, approx=True):
    """Measured total |output change| when ``x[index]`` moves by ``de``.

    Supports both the approximated and the exact softmax so tests can
    compare against the analytic bound of Eq. 17.
    """
    x = np.asarray(x, dtype=np.float64).copy()
    fn = ((lambda v: softmax_approx(v, axis=axis, delta2=delta2))
          if approx else (lambda v: softmax_exact(v, axis=axis)))
    base = fn(x)
    x[index] += input_error
    moved = fn(x)
    return np.abs(moved - base).sum()


def derivative_profile(x_grid=None, delta1=DEFAULT_DELTA1):
    """The Fig. 10 data: exact vs approximated GELU derivative.

    Returns ``(x, d_exact, d_approx)`` arrays.
    """
    if x_grid is None:
        x_grid = np.linspace(-6.0, 6.0, 241)
    x = np.asarray(x_grid, dtype=np.float64)
    return x, gelu_exact_derivative(x), gelu_approx_derivative(x, delta1)
