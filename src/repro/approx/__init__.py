"""Polynomial approximations of nonlinear functions + regularization."""

from repro.approx.polynomial import (DEFAULT_DELTA1, DEFAULT_DELTA2, ERF_A,
                                     ERF_B, erf_approx, exp_approx,
                                     gelu_approx, gelu_exact, sigmoid_exact,
                                     sigmoid_plan, softmax_approx,
                                     softmax_exact)
from repro.approx.layers import (ApproxGELU, ApproxSigmoid, ApproxSoftmax,
                                 erf_approx_t, gelu_approx_t,
                                 sigmoid_plan_t, softmax_approx_t)
from repro.approx.regularization import (derivative_profile,
                                         gelu_approx_derivative,
                                         gelu_error_propagation,
                                         gelu_exact_derivative,
                                         softmax_error_bound,
                                         softmax_error_empirical)

__all__ = [
    "ERF_A", "ERF_B", "DEFAULT_DELTA1", "DEFAULT_DELTA2",
    "erf_approx", "gelu_approx", "exp_approx", "softmax_approx",
    "sigmoid_plan", "gelu_exact", "softmax_exact", "sigmoid_exact",
    "gelu_exact_derivative", "gelu_approx_derivative",
    "gelu_error_propagation", "softmax_error_bound",
    "softmax_error_empirical", "derivative_profile",
    "ApproxGELU", "ApproxSigmoid", "ApproxSoftmax",
    "erf_approx_t", "gelu_approx_t", "softmax_approx_t", "sigmoid_plan_t",
]
