"""Length-bucketing policy for the batched pruned-inference engine.

Image-adaptive token pruning leaves every image with its own sequence
length, which defeats naive batching.  The standard fix for
variable-length workloads is *length bucketing*: group sequences of
equal length and run each group as one vectorized forward, optionally
padding nearby lengths together when the padding waste is cheaper than
launching another tiny batch.

This module is pure policy -- given the per-image sequence lengths it
decides the grouping and padding; :mod:`repro.engine.executor` applies
the plan.  Keeping it side-effect free makes the decisions unit-testable
(``tests/engine/test_bucketing.py``).

With a :class:`repro.cost.CostModel` the planner additionally merges on
*price*: launching one more bucket costs a fixed per-bucket overhead
(weight loading / pipeline fill), so a group whose total padding cost is
smaller than that overhead batches into the longer bucket even when the
pure length-gap heuristic would keep it separate.  The cost-aware plan
is guaranteed never to price worse than the heuristic plan it replaces
(the cheaper of the two is returned), and a zero-overhead model leaves
the decisions exactly as the heuristic made them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BucketingPolicy", "BucketPlan", "plan_buckets",
           "plan_cost_ms", "group_exact", "pack_groups"]


@dataclass(frozen=True)
class BucketingPolicy:
    """Tunable knobs for the bucket planner.

    Attributes
    ----------
    allow_padding: when False every distinct length gets its own bucket
        (maximally faithful, minimally batched).
    pad_limit: never pad any image by more than this many tokens.
    max_pad_fraction: nor by more than this fraction of the bucket's
        padded length (guards short sequences against relative bloat).
    min_bucket: groups smaller than this always try to merge upward
        (within the padding limits above).  Groups of ``min_bucket`` or
        more images may still merge, but only while the total padding
        waste stays below one virtual sequence
        (``pad * group_size <= padded_length``) -- big groups a hair
        apart batch together, big groups far apart stand alone.
    """

    allow_padding: bool = True
    pad_limit: int = 8
    max_pad_fraction: float = 0.5
    min_bucket: int = 4

    def __post_init__(self):
        if self.pad_limit < 0:
            raise ValueError("pad_limit must be >= 0")
        if not 0.0 <= self.max_pad_fraction <= 1.0:
            raise ValueError("max_pad_fraction must be in [0, 1]")
        if self.min_bucket < 1:
            raise ValueError("min_bucket must be >= 1")

    def may_merge(self, padded_length, group_length, group_size):
        """Should a ``group_size``-image group of real length
        ``group_length`` join a bucket padded to ``padded_length``?"""
        pad = padded_length - group_length
        if pad < 0:
            raise ValueError("cannot pad to a shorter length")
        if pad == 0:
            return True
        if not self.allow_padding:
            return False
        if pad > self.pad_limit:
            return False
        if pad > self.max_pad_fraction * padded_length:
            return False
        # Pay at most one extra "virtual sequence" of padding waste per
        # merge -- beyond that the bigger batch stops being profitable.
        return pad * group_size <= padded_length or group_size < self.min_bucket


@dataclass
class BucketPlan:
    """One planned bucket: which images run together and at what length.

    ``indices`` point into the caller's image batch; ``lengths`` are the
    members' real (unpadded) sequence lengths; ``padded_length`` is the
    common length the executor pads to (equal to ``lengths.max()``).
    """

    indices: np.ndarray
    lengths: np.ndarray
    padded_length: int

    @property
    def needs_padding(self):
        return bool((self.lengths < self.padded_length).any())

    @property
    def padded_tokens(self):
        """Total padding waste (tokens) this plan accepts."""
        return int((self.padded_length - self.lengths).sum())


def group_exact(lengths):
    """Map each distinct length to the array of image indices having it.

    Returned as a list of ``(length, indices)`` pairs sorted by length
    descending (the planner folds shorter groups into longer buckets).
    """
    lengths = np.asarray(lengths)
    pairs = []
    for value in np.unique(lengths)[::-1]:
        pairs.append((int(value), np.flatnonzero(lengths == value)))
    return pairs


def plan_buckets(lengths, policy=None, cost_model=None):
    """Partition images into execution buckets.

    ``lengths``: per-image sequence lengths, ``(B,)``.  Returns a list of
    :class:`BucketPlan` covering every index exactly once, ordered by
    padded length descending.  With ``policy.allow_padding`` False this
    degenerates to one bucket per distinct length.

    ``cost_model`` (a :class:`repro.cost.CostModel`) makes the planner
    cost-aware: besides the heuristic length-gap merges, a group also
    joins the current bucket when the modeled padding cost is *strictly*
    smaller than the per-bucket launch overhead it saves.  The returned
    plan never prices worse (per :func:`plan_cost_ms`) than the pure
    heuristic plan; with a zero-overhead model the cost branch can never
    fire and the decisions are identical to the heuristic's.
    """
    policy = BucketingPolicy() if policy is None else policy
    lengths = np.asarray(lengths)
    if lengths.size == 0:
        return []
    heuristic = _plan_greedy(lengths, policy, None)
    if cost_model is None or cost_model.is_zero_overhead:
        # With nothing to save per launch the cost branch can never
        # fire -- skip the second planning pass on the hot path.
        return heuristic
    cost_aware = _plan_greedy(lengths, policy, cost_model)
    if (plan_cost_ms(cost_aware, cost_model)
            < plan_cost_ms(heuristic, cost_model)):
        return cost_aware
    return heuristic


def plan_cost_ms(plans, cost_model):
    """Modeled per-block price of a bucket partition.

    Every bucket pays one launch overhead and prices each member at the
    *padded* length -- :meth:`repro.cost.CostModel.bucket_ms` summed
    over the partition.
    """
    return cost_model.stage_cost_ms(
        (plan.padded_length, plan.indices.size) for plan in plans)


def _plan_greedy(lengths, policy, cost_model):
    """One greedy planning pass over the descending length groups."""
    plans = []
    current_length = None
    current_members = []     # (length, indices) accepted into the bucket
    for length, indices in group_exact(lengths):
        if current_length is not None and _accept_merge(
                policy, cost_model, current_length, length, indices.size):
            current_members.append((length, indices))
            continue
        if current_members:
            plans.append(_finish(current_members, current_length))
        current_length = length
        current_members = [(length, indices)]
    if current_members:
        plans.append(_finish(current_members, current_length))
    return plans


def _accept_merge(policy, cost_model, padded_length, length, group_size):
    if policy.may_merge(padded_length, length, group_size):
        return True
    if cost_model is None or not policy.allow_padding:
        return False
    # Cost-aware merge: joining prices every member at the padded
    # length; standing alone opens a new bucket and pays its launch
    # overhead.  Merge exactly when padding costs less than the saved
    # overhead (strict, so a zero-overhead model never merges here).
    padding_cost = group_size * (cost_model.block_ms(padded_length)
                                 - cost_model.block_ms(length))
    return padding_cost < cost_model.bucket_overhead_ms


def pack_groups(group_sizes, max_batch=None):
    """Pack pre-grouped image sets (e.g. request remainders carried
    between scheduler submits) into executor chunks.

    ``group_sizes``: number of images in each group, in submission order.
    ``max_batch``: chunk capacity; ``None`` packs everything into one
    chunk.  Groups are packed FIFO and split at chunk capacity, so the
    chunk boundaries fall exactly every ``max_batch`` rows of the
    groups' concatenation -- identical to the classic
    ``images[lo:lo + max_batch]`` slicing of ``InferenceSession.submit``,
    which keeps grouped and flat submission paths bitwise-equivalent.

    Returns a list of chunks, each a list of ``(group_index, lo, hi)``
    pieces meaning rows ``lo:hi`` of that group run in this chunk.
    Every row of every group appears in exactly one piece, and global
    row order (groups concatenated) is preserved across chunks.
    """
    if max_batch is not None and max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    chunks = []
    current = []
    room = max_batch
    for index, size in enumerate(group_sizes):
        size = int(size)
        if size < 0:
            raise ValueError("group sizes must be >= 0")
        lo = 0
        while lo < size:
            if max_batch is None:
                current.append((index, 0, size))
                break
            if room == 0:
                chunks.append(current)
                current, room = [], max_batch
            take = min(size - lo, room)
            current.append((index, lo, lo + take))
            lo += take
            room -= take
    if current:
        chunks.append(current)
    return chunks


def _finish(members, padded_length):
    indices = np.concatenate([idx for _, idx in members])
    member_lengths = np.concatenate(
        [np.full(idx.size, length) for length, idx in members])
    return BucketPlan(indices=indices, lengths=member_lengths,
                      padded_length=int(padded_length))
