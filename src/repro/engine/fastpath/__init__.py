"""Compiled graph-free inference fast path for the serving engine.

The deployed token-pruned path used to execute through the float64
autograd ``Tensor`` tape even under ``no_grad``; this subsystem lowers a
model once into contiguous weight arrays plus fused ndarray kernels
(:func:`compile_model` -> :class:`CompiledModel`) and reuses scratch
memory across buckets and bursts (:class:`Workspace`).  The Tensor path
remains the reference implementation; parity is enforced by
``tests/engine/test_fastpath.py``.

:func:`compile_quantized` lowers the same models into the paper's
deployment numerics instead -- integer GEMMs with float rescale,
dynamic activation quantization, polynomial GELU/softmax -- bitwise
equal to the :func:`repro.quant.quantize_model` simulation on the
float64 grade (``tests/engine/test_quantized.py``).

Select a backend per session::

    session = InferenceSession(model, backend="fastpath")            # float32
    session = InferenceSession(model, backend="fastpath",
                               dtype=np.float64)                     # parity-grade
    session = InferenceSession(model, backend="int8")                # quantized
    session = InferenceSession(model, backend="int8",
                               dtype=np.float64)                     # sim-bitwise
"""

from repro.engine.fastpath.compiled import (CompileError, CompiledBlock,
                                            CompiledModel, CompiledSelector,
                                            compile_model)
from repro.engine.fastpath.kernels import (MASK_BIAS, fused_layer_norm,
                                           gelu_exact, gelu_rational,
                                           gelu_tanh, mask_to_bias,
                                           masked_softmax)
from repro.engine.fastpath.quantized import (QuantizedBlock,
                                             QuantizedLinearKernel,
                                             QuantizedModel,
                                             QuantizedSelector,
                                             compile_quantized)
from repro.engine.fastpath.workspace import Workspace

__all__ = [
    "compile_model", "CompiledModel", "CompiledBlock", "CompiledSelector",
    "CompileError", "Workspace",
    "compile_quantized", "QuantizedModel", "QuantizedBlock",
    "QuantizedSelector", "QuantizedLinearKernel",
    "fused_layer_norm", "masked_softmax", "gelu_exact", "gelu_rational",
    "gelu_tanh", "mask_to_bias", "MASK_BIAS",
]
