"""Quantized (int8 / int16) compiled backend for the serving engine.

:func:`compile_quantized` lowers a HeatViT/ViT model the same way
:func:`repro.quant.quantize_model` surgeries it -- per-layer integer
weights (per-channel scales for the qkv/fc1/fc2 GEMMs, per-tensor
elsewhere), dynamic per-tensor activation quantization between stages,
and the paper's polynomial GELU/softmax in place of the exact
nonlinearities -- but into a :class:`QuantizedModel` that speaks the
same interface as :class:`.compiled.CompiledModel`, so
:class:`repro.engine.BucketedExecutor` drives it with the existing
bucketing/pruning control flow.

Two numerics grades, selected by dtype:

* ``float64`` -- **simulation parity**.  Every kernel replicates the
  surgered Tensor model's operation order exactly; the integer GEMMs
  run as float64 BLAS on integer-valued operands (exact below 2^53), so
  executor logits are *bitwise* equal to the ``quantize_model``
  simulation on stock configs (``tests/engine/test_quantized.py``).
  Token selectors are evaluated through actual surgered copies of the
  selector modules (the simulation approximates only their Linear and
  GELU children -- its functional softmax/sigmoid stay exact -- and
  bitwise-mirroring that mix is cheapest done by running it).
* ``float32`` -- the **serving grade**: in-place workspace kernels, a
  fused ``modf``/``ldexp`` shift-based exp, quantized selector MLPs in
  the ragged boundary pipeline.  Gated on top-1/keep agreement with the
  float64 engine, not bitwise parity.

``bits=16`` needs integer products up to ``32767^2 * K`` -- beyond
float32's 2^24 exact-integer window for any real reduction -- so int16
always compiles in the float64 parity grade.
"""

from __future__ import annotations

import copy

import numpy as np
from scipy import special

from repro import nn
from repro.nn.tensor import Tensor
from repro.approx.polynomial import DEFAULT_DELTA1
from repro.engine.fastpath.compiled import (CompileError, _compile_activation,
                                            _contig)
from repro.engine.fastpath.kernels import (fused_layer_norm, mask_to_bias,
                                           masked_softmax)
from repro.engine.fastpath.qkernels import (approx_gelu_fast,
                                            approx_gelu_reference,
                                            approx_softmax_fast,
                                            approx_softmax_reference,
                                            layer_norm_reference,
                                            quantize_fast,
                                            quantize_reference)
from repro.engine.fastpath.workspace import Workspace
from repro.quant.fixed_point import calibrate_minmax, safe_accumulator_bits
from repro.quant.qmodel import (PER_CHANNEL_CHILDREN, _wants_per_channel,
                                quantize_model)
from repro.quant.sweep import per_channel_quantize

__all__ = ["compile_quantized", "QuantizedModel", "QuantizedBlock",
           "QuantizedSelector", "QuantizedLinearKernel"]

_EPS = 1e-8          # mirrors repro.core.selector._EPS


class QuantizedLinearKernel:
    """One quantized GEMM: integer weights + float rescale + bias.

    The compile-time analogue of :class:`repro.quant.QuantizedLinear`:
    weights are quantized once (per-tensor or per-output-channel) and
    stored as integer-valued arrays of the compute dtype; activations
    are quantized per tensor at every call, exactly the simulation's
    dynamic scheme.  :meth:`apply_reference` mirrors the simulation
    bitwise; :meth:`apply_fast` is the in-place float32 form.

    No runtime accumulator check: :func:`safe_accumulator_bits` already
    proves at compile time that ``qmax^2 * in_features`` fits the width
    the simulation would pick, so its (never-firing) runtime check can
    be elided without behavioural difference.
    """

    __slots__ = ("w_q", "scales", "bias", "in_features", "out_features",
                 "bits", "qmax", "per_channel", "accumulator_bits",
                 "_scale_buf")

    def __init__(self, w_q, scales, bias, bits, dtype):
        self.w_q = _contig(w_q, dtype)
        self.per_channel = isinstance(scales, np.ndarray)
        self.scales = (_contig(scales, dtype) if self.per_channel
                       else float(scales))
        # Scratch for the dynamic (act_scale * weight_scales) product --
        # owned by the kernel, not the workspace, so the fast rescale
        # skips a buffer-pool lookup per call.
        self._scale_buf = (np.empty_like(self.scales) if self.per_channel
                           else None)
        self.bias = None if bias is None else _contig(bias, dtype)
        self.in_features, self.out_features = self.w_q.shape
        self.bits = bits
        self.qmax = 2 ** (bits - 1) - 1
        self.accumulator_bits = safe_accumulator_bits(bits,
                                                      self.in_features)
        # Exactness budget of the float GEMM the backend actually runs:
        # every partial sum must be an exactly-representable integer.
        window = 2 ** 24 if dtype == np.dtype(np.float32) else 2 ** 53
        if self.qmax * self.qmax * self.in_features > window:
            raise CompileError(
                f"{bits}-bit GEMM over in_features={self.in_features} "
                f"exceeds {np.dtype(dtype).name}'s exact-integer window; "
                f"compile with dtype=float64")

    @classmethod
    def from_linear(cls, linear, bits, dtype, per_channel):
        weight = linear.weight.data
        bias = None if linear.bias is None else linear.bias.data
        if per_channel:
            w_q, scales = per_channel_quantize(weight, bits=bits)
        else:
            params = calibrate_minmax(weight, bits=bits)
            w_q = quantize_reference(np.asarray(weight, dtype=np.float64),
                                     params.scale, params.qmax)
            scales = params.scale
        return cls(w_q, scales, bias, bits, np.dtype(dtype))

    def apply_reference(self, x):
        """Bitwise mirror of ``QuantizedLinear.forward`` (float64)."""
        params = calibrate_minmax(x, bits=self.bits)
        q = quantize_reference(x, params.scale, self.qmax)
        out = np.matmul(q.reshape(-1, self.in_features), self.w_q)
        out = out * (params.scale * self.scales)
        out = out.reshape(x.shape[:-1] + (self.out_features,))
        if self.bias is not None:
            out = out + self.bias
        return out

    def apply_fast(self, x, ws, key, out=None, inplace=False):
        """Quantize -> GEMM -> rescale -> bias, on workspace scratch.

        ``inplace=True`` reuses ``x`` itself as the quantization buffer
        (valid when ``x`` is dead scratch).  ``out`` may be a strided
        view (e.g. an embedding buffer's token rows).
        """
        q, act_scale = quantize_fast(x, self.qmax, ws, key + "q",
                                     out=x if inplace else None)
        if out is None:
            out = ws.take(key + "o", x.shape[:-1] + (self.out_features,))
        np.matmul(q, self.w_q, out=out)
        dt = self.w_q.dtype.type
        if self.per_channel:
            combined = self._scale_buf
            np.multiply(self.scales, dt(act_scale), out=combined)
            out *= combined
        else:
            out *= dt(self.scales * act_scale)
        if self.bias is not None:
            out += self.bias
        return out


class _QuantGELUKernel:
    """Picklable ``fn(x, ws, key)`` wrapper around the Eq. 12 kernel."""

    __slots__ = ("delta1",)

    def __init__(self, delta1):
        self.delta1 = delta1

    def __call__(self, x, ws, key):
        return approx_gelu_fast(x, self.delta1, ws, key)


def _compile_qmlp(sequential, bits, dtype, per_channel, delta1):
    """Lower a Sequential to quantized-linear / activation steps.

    Child names inside a ``Sequential`` are its indices ("0", "1", ...)
    -- the same names :func:`quantize_model` sees -- so the per-channel
    selection matches the simulation's surgery exactly.
    """
    steps = []
    for name, module in sequential._modules.items():
        if isinstance(module, nn.Linear):
            steps.append(("qlin", QuantizedLinearKernel.from_linear(
                module, bits, dtype,
                _wants_per_channel(per_channel, name))))
        elif isinstance(module, nn.GELU):
            steps.append(("act", _QuantGELUKernel(delta1)))
        else:
            # Not approximated by quantize_model either -- run exact.
            steps.append(("act", _compile_activation(module, dtype,
                                                     "rational")))
    return steps


def _run_qmlp(steps, x, ws, prefix):
    for index, step in enumerate(steps):
        if step[0] == "qlin":
            x = step[1].apply_fast(x, ws, f"{prefix}{index}")
        else:
            x = step[1](x, ws, f"{prefix}{index}s")
    return x


class QuantizedBlock:
    """One encoder block in simulation numerics.

    Unlike :class:`.compiled.CompiledBlock`, LayerNorm affines are NOT
    folded into the consuming GEMM -- folding would hand the quantizer
    different weights than the simulation's.  The only compile-time
    fold retained is the attention ``1/sqrt(d)`` pre-scale on the qkv
    kernel's Q-channel rescales/bias, and only on the float32 grade
    (per-channel qkv makes it a pure constant fold; the parity grade
    keeps the simulation's explicit score multiply).
    """

    __slots__ = ("num_heads", "head_dim", "embed_dim", "hidden_dim",
                 "n1_w", "n1_b", "eps1", "n2_w", "n2_b", "eps2",
                 "qkv", "proj", "fc1", "fc2", "scale", "delta1", "delta2",
                 "parity", "fold_qscale")

    def __init__(self, block, bits, dtype, per_channel, delta1, delta2,
                 parity):
        attn = block.attn
        self.num_heads = attn.num_heads
        self.head_dim = attn.head_dim
        self.embed_dim = attn.embed_dim
        self.scale = attn.scale
        self.delta1 = delta1
        self.delta2 = delta2
        self.parity = parity
        self.n1_w = _contig(block.norm1.weight.data, dtype)
        self.n1_b = _contig(block.norm1.bias.data, dtype)
        self.eps1 = block.norm1.eps
        self.n2_w = _contig(block.norm2.weight.data, dtype)
        self.n2_b = _contig(block.norm2.bias.data, dtype)
        self.eps2 = block.norm2.eps
        self.qkv = QuantizedLinearKernel.from_linear(
            attn.qkv, bits, dtype, _wants_per_channel(per_channel, "qkv"))
        self.proj = QuantizedLinearKernel.from_linear(
            attn.proj, bits, dtype, _wants_per_channel(per_channel, "proj"))
        self.fc1 = QuantizedLinearKernel.from_linear(
            block.mlp.fc1, bits, dtype,
            _wants_per_channel(per_channel, "fc1"))
        self.fc2 = QuantizedLinearKernel.from_linear(
            block.mlp.fc2, bits, dtype,
            _wants_per_channel(per_channel, "fc2"))
        self.hidden_dim = self.fc1.out_features
        self.fold_qscale = not parity and self.qkv.per_channel
        if self.fold_qscale:
            dim = self.embed_dim
            self.qkv.scales = self.qkv.scales.copy()
            self.qkv.scales[:dim] *= dtype.type(self.scale)
            if self.qkv.bias is not None:
                self.qkv.bias = self.qkv.bias.copy()
                self.qkv.bias[:dim] *= dtype.type(self.scale)

    # ------------------------------------------------------------------
    def _forward_reference(self, x, bias):
        """Bitwise mirror of the surgered Tensor block (pre-norm MSA +
        FFN with QuantizedLinear / ApproxSoftmax / ApproxGELU)."""
        batch, tokens, dim = x.shape
        h, d = self.num_heads, self.head_dim
        normed = layer_norm_reference(x, self.n1_w, self.n1_b, self.eps1)
        qkv = self.qkv.apply_reference(normed)
        qkv = qkv.reshape(batch, tokens, 3, h, d).transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scores = np.matmul(q, k.swapaxes(-1, -2)) * self.scale
        if bias is not None:
            scores = scores + bias[:, None, None, :]
        attn = approx_softmax_reference(scores, self.delta2)
        out = np.matmul(attn, v)
        out = out.transpose(0, 2, 1, 3).reshape(batch, tokens, dim)
        x += self.proj.apply_reference(out)                # residual 1
        normed = layer_norm_reference(x, self.n2_w, self.n2_b, self.eps2)
        hidden = approx_gelu_reference(self.fc1.apply_reference(normed),
                                       self.delta1)
        x += self.fc2.apply_reference(hidden)              # residual 2
        return x

    def _forward_fast(self, x, bias, ws):
        batch, tokens, dim = x.shape
        h, d = self.num_heads, self.head_dim
        normed = ws.take("qblk_ln", (batch, tokens, dim))
        fused_layer_norm(x, self.n1_w, self.n1_b, self.eps1, out=normed,
                         ws=ws, key="qblk_ln1")
        qkv = ws.take("qblk_qkv", (batch, tokens, 3 * dim))
        self.qkv.apply_fast(normed, ws, "qblk_qkv", out=qkv, inplace=True)
        split = qkv.reshape(batch, tokens, 3, h, d)
        q = split[:, :, 0].transpose(0, 2, 1, 3)           # (B, h, T, d)
        k = split[:, :, 1].transpose(0, 2, 3, 1)           # (B, h, d, T)
        v = split[:, :, 2].transpose(0, 2, 1, 3)           # (B, h, T, d)
        scores = ws.take("qblk_scores", (batch, h, tokens, tokens))
        np.matmul(q, k, out=scores)
        if not self.fold_qscale:
            scores *= scores.dtype.type(self.scale)
        approx_softmax_fast(scores, bias, self.delta2, ws, "qblk_sm")
        context = ws.take("qblk_ctx", (batch, h, tokens, d))
        np.matmul(scores, v, out=context)
        merged = ws.take("qblk_merge", (batch, tokens, dim))
        np.copyto(merged.reshape(batch, tokens, h, d),
                  context.transpose(0, 2, 1, 3))
        attn_out = ws.take("qblk_attn_out", (batch, tokens, dim))
        self.proj.apply_fast(merged, ws, "qblk_proj", out=attn_out,
                             inplace=True)
        x += attn_out                                      # residual 1
        fused_layer_norm(x, self.n2_w, self.n2_b, self.eps2, out=normed,
                         ws=ws, key="qblk_ln2")
        hidden = ws.take("qblk_mlp", (batch, tokens, self.hidden_dim))
        self.fc1.apply_fast(normed, ws, "qblk_fc1", out=hidden,
                            inplace=True)
        approx_gelu_fast(hidden, self.delta1, ws, "qblk_act")
        self.fc2.apply_fast(hidden, ws, "qblk_fc2", out=attn_out,
                            inplace=True)
        x += attn_out                                      # residual 2
        return x

    def forward(self, x, bias, ws):
        if self.parity:
            return self._forward_reference(x, bias)
        return self._forward_fast(x, bias, ws)


class QuantizedSelector:
    """A token selector in simulation numerics.

    The simulation surgeries only a selector's *module* children: its
    Linears (per-tensor -- Sequential child names never match the
    per-channel list) and GELU modules.  The classifier's softmax and
    the attention branch's sigmoid are functional calls and stay exact.

    * Parity grade (and any non-stock selector): score through an
      actual surgered deep copy of the selector module -- bitwise equal
      to the simulation by construction.  Dense (per exact group) only.
    * Float32 grade, stock selectors: the
      :class:`.compiled.CompiledSelector` pipeline with quantized MLP
      steps, the Eq. 12 GELU kernel, and *exact* softmax/sigmoid --
      including the ragged single-pipeline boundary.
    """

    __slots__ = ("dtype", "num_heads", "head_dim", "module", "ragged_ok",
                 "norm_w", "norm_b", "norm_eps", "feature_mlp",
                 "classifier_mlp", "attention_mlp")

    def __init__(self, selector, bits, dtype, per_channel, delta1, delta2,
                 parity):
        from repro.core.selector import MultiHeadTokenClassifier

        self.dtype = dtype
        self.module = None
        self.ragged_ok = False
        stock = isinstance(selector.classifier, MultiHeadTokenClassifier)
        if parity or not stock:
            module = copy.deepcopy(selector)
            quantize_model(module, bits=bits, approx_nonlinear=True,
                           delta1=delta1, delta2=delta2,
                           per_channel=per_channel)
            module.eval()
            self.module = module
            self.norm_w = self.norm_b = self.norm_eps = None
            self.feature_mlp = self.classifier_mlp = None
            self.attention_mlp = None
            self.num_heads = selector.num_heads
            self.head_dim = selector.embed_dim // selector.num_heads
            return
        self.num_heads = selector.num_heads
        self.head_dim = selector.embed_dim // selector.num_heads
        self.norm_w = _contig(selector.norm.weight.data, dtype)
        self.norm_b = _contig(selector.norm.bias.data, dtype)
        self.norm_eps = selector.norm.eps
        classifier = selector.classifier
        self.feature_mlp = _compile_qmlp(classifier.feature_mlp, bits,
                                         dtype, per_channel, delta1)
        self.classifier_mlp = _compile_qmlp(classifier.classifier_mlp,
                                            bits, dtype, per_channel,
                                            delta1)
        self.attention_mlp = _compile_qmlp(selector.attention_branch.mlp,
                                           bits, dtype, per_channel,
                                           delta1)
        self.ragged_ok = True

    # ------------------------------------------------------------------
    def _select_module(self, patches):
        """Evaluate through the surgered Tensor selector (eval mode)."""
        with nn.no_grad():
            out = self.module(Tensor(np.asarray(patches,
                                                dtype=np.float64)),
                              hard=False)
        keep = out.decision.data > 0.5
        packages = out.package.data[:, 0, :]
        return keep, packages.astype(self.dtype, copy=False)

    def select(self, patches, ws):
        """Dense scoring of ``(g, N, D)`` patches -> ``(keep, packages)``."""
        if self.module is not None:
            return self._select_module(patches)
        sdt = self.dtype
        g, tokens, dim = patches.shape
        h, d = self.num_heads, self.head_dim
        normed = ws.take("qsel_norm", (g, tokens, dim))
        fused_layer_norm(patches, self.norm_w, self.norm_b, self.norm_eps,
                         out=normed, ws=ws, key="qsel_ln")
        heads = normed.reshape(g, tokens, h, d)
        local = _run_qmlp(self.feature_mlp, heads.transpose(0, 2, 1, 3),
                          ws, "qsel_feat")                 # (g, h, N, f)
        feat = local.shape[-1]
        combined = ws.take("qsel_comb", (g, h, tokens, 2 * feat))
        combined[..., :feat] = local
        gmean = np.add.reduce(local, axis=2, keepdims=True)
        gmean /= tokens
        combined[..., feat:] = gmean
        per_head = _run_qmlp(self.classifier_mlp, combined, ws, "qsel_cls")
        masked_softmax(per_head, ws=ws, key="qsel_sm")     # exact (Eq. 5)
        head_stat = np.add.reduce(heads, axis=-1)
        head_stat /= d                                     # (g, N, h)
        importance = _run_qmlp(self.attention_mlp, head_stat, ws,
                               "qsel_att")
        special.expit(importance, out=importance)          # exact (Eq. 7)
        weights = importance.transpose(0, 2, 1)[..., None]
        per_head *= weights
        scores = np.add.reduce(per_head, axis=1)           # (g, N, 2)
        total = np.add.reduce(weights, axis=1)
        total += sdt.type(_EPS)
        scores /= total
        keep_score = scores[..., 0]
        keep = keep_score >= scores[..., 1]
        for row in np.flatnonzero(~keep.any(axis=1)):      # >=1-token guard
            keep[row, np.argmax(keep_score[row])] = True
        pruned_w = np.where(keep, sdt.type(0.0), keep_score)
        packages = np.matmul(pruned_w[:, None, :], patches)[:, 0, :]
        packages /= (pruned_w.sum(axis=1, keepdims=True) + sdt.type(_EPS))
        return keep, packages

    def select_ragged(self, flat, counts, ws):
        """Ragged scoring of concatenated tokens (float32 grade only)."""
        sdt = self.dtype
        m, dim = flat.shape
        h, d = self.num_heads, self.head_dim
        counts = np.asarray(counts)
        starts = np.zeros(counts.size, dtype=np.intp)
        np.cumsum(counts[:-1], out=starts[1:])
        normed = ws.take("qrag_norm", (m, dim))
        fused_layer_norm(flat, self.norm_w, self.norm_b, self.norm_eps,
                         out=normed, ws=ws, key="qrag_ln")
        heads = normed.reshape(m, h, d)
        local = _run_qmlp(self.feature_mlp, heads, ws, "qrag_feat")
        feat = local.shape[-1]
        gmean = np.add.reduceat(local, starts, axis=0)     # (n, h, f)
        gmean /= counts[:, None, None]
        combined = ws.take("qrag_comb", (m, h, 2 * feat))
        combined[..., :feat] = local
        combined[..., feat:] = np.repeat(gmean, counts, axis=0)
        per_head = _run_qmlp(self.classifier_mlp, combined, ws, "qrag_cls")
        masked_softmax(per_head, ws=ws, key="qrag_sm")     # (M, h, 2)
        head_stat = np.add.reduce(heads, axis=-1)
        head_stat /= d                                     # (M, h)
        importance = _run_qmlp(self.attention_mlp, head_stat, ws,
                               "qrag_att")
        special.expit(importance, out=importance)
        weights = importance[..., None]                    # (M, h, 1)
        per_head *= weights
        scores = np.add.reduce(per_head, axis=1)           # (M, 2)
        total = np.add.reduce(weights, axis=1)
        total += sdt.type(_EPS)
        scores /= total
        keep_score = scores[..., 0]
        keep = keep_score >= scores[..., 1]
        kept_any = np.logical_or.reduceat(keep, starts)
        for image in np.flatnonzero(~kept_any):            # guard
            lo = starts[image]
            hi = lo + counts[image]
            keep[lo + np.argmax(keep_score[lo:hi])] = True
        pruned_w = np.where(keep, sdt.type(0.0), keep_score)
        weighted = ws.take("qrag_pkg", (m, dim))
        np.multiply(flat, pruned_w[:, None], out=weighted)
        packages = np.add.reduceat(weighted, starts, axis=0)
        packages /= (np.add.reduceat(pruned_w, starts)[:, None]
                     + sdt.type(_EPS))
        return keep, packages


class QuantizedModel:
    """Quantized weights + kernels behind the ``CompiledModel`` interface.

    ``supports_ragged`` tells the executor whether the selector boundary
    may run as one ragged pipeline (float32 grade, stock selectors) or
    must fall back to dense per-group evaluation (the parity grade's
    surgered selector modules take that path).
    """

    def __init__(self, config, dtype, bits, parity, blocks, selectors,
                 embed_weights, head_weights, delta1, delta2):
        self.config = config
        self.dtype = dtype
        self.bits = bits
        self.parity = parity
        self.blocks = blocks
        self.selectors = selectors
        (self.patch, self.cls_token, self.pos_embed) = embed_weights
        (self.final_norm_w, self.final_norm_b, self.final_norm_eps,
         self.head) = head_weights
        self.delta1 = delta1
        self.delta2 = delta2
        self.supports_ragged = all(s.ragged_ok for s in selectors)
        self._default_ws = Workspace(dtype)

    # ------------------------------------------------------------------
    def workspace(self, ws=None):
        return self._default_ws if ws is None else ws

    def embed(self, images, ws=None):
        """Patch-embed + CLS + position embeddings: ``(B, 1+N, D)``."""
        ws = self.workspace(ws)
        images = np.asarray(images, dtype=self.dtype)
        batch, channels, height, width = images.shape
        p = self.config.patch_size
        grid_h, grid_w = height // p, width // p
        cols = images.reshape(batch, channels, grid_h, p, grid_w, p)
        cols = cols.transpose(0, 2, 4, 1, 3, 5)
        cols = cols.reshape(batch, grid_h * grid_w, channels * p * p)
        if self.parity:
            tokens = self.patch.apply_reference(cols)
            cls = self.cls_token + np.zeros((batch, 1, tokens.shape[-1]))
            x = np.concatenate([cls, tokens], axis=1)
            return x + self.pos_embed
        out = ws.take("qembed", (batch, 1 + grid_h * grid_w,
                                 self.patch.out_features))
        self.patch.apply_fast(cols, ws, "qembed_p", out=out[:, 1:, :],
                              inplace=True)
        out[:, 0, :] = self.cls_token[0, 0]
        out += self.pos_embed
        return out

    def run_block(self, index, x, bias=None, ws=None):
        return self.blocks[index].forward(x, bias, self.workspace(ws))

    def forward(self, tokens, key_mask=None, ws=None):
        """Dense block stack (no selectors) -- the parity tests' entry."""
        ws = self.workspace(ws)
        x = np.array(tokens, dtype=self.dtype)
        bias = (None if key_mask is None
                else mask_to_bias(key_mask, self.dtype))
        for index in range(len(self.blocks)):
            self.run_block(index, x, bias, ws)
        return x

    def select(self, stage, patches, ws=None):
        return self.selectors[stage].select(patches, self.workspace(ws))

    def select_ragged(self, stage, flat, counts, ws=None):
        return self.selectors[stage].select_ragged(flat, counts,
                                                   self.workspace(ws))

    def classify(self, x, ws=None):
        """Final LayerNorm + quantized head on the CLS row.

        LayerNorm is per-token, so norming only row 0 is exact; the
        head's activation scale is calibrated on the CLS rows alone,
        exactly as the simulation's head sees them (``classify`` slices
        before its head Linear).
        """
        ws = self.workspace(ws)
        if self.parity:
            cls_row = layer_norm_reference(x[:, 0, :], self.final_norm_w,
                                           self.final_norm_b,
                                           self.final_norm_eps)
            return self.head.apply_reference(cls_row)
        batch = x.shape[0]
        cls_row = ws.take("qcls_norm", (batch, x.shape[-1]))
        fused_layer_norm(x[:, 0, :], self.final_norm_w, self.final_norm_b,
                         self.final_norm_eps, out=cls_row, ws=ws,
                         key="qcls_ln")
        return self.head.apply_fast(cls_row, ws, "qcls_head", inplace=True)


def compile_quantized(model, bits=8, dtype=None,
                      per_channel=PER_CHANNEL_CHILDREN,
                      delta1=DEFAULT_DELTA1, delta2=1.0):
    """Compile a model into simulation-faithful quantized kernels.

    Parameters
    ----------
    model: a ``VisionTransformer`` or ``HeatViT``; weights are copied
        (and quantized) at compile time.
    bits: operand precision -- 8 (the paper's deployment) or 16.
    dtype: ``float32`` (default for 8-bit: the serving grade) or
        ``float64`` (the bitwise simulation-parity grade; the only
        choice for 16-bit, whose integer products exceed float32's
        exact window).
    per_channel / delta1 / delta2: forwarded with
        :func:`repro.quant.quantize_model` semantics -- run the
        simulation with the same values to reproduce this backend
        bitwise.
    """
    if bits < 2 or bits > 16:
        raise CompileError(f"bits out of range for the quantized "
                           f"backend: {bits}")
    if dtype is None:
        dtype = np.float32 if bits <= 8 else np.float64
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise CompileError(f"unsupported dtype {dtype}; use float32 or "
                           f"float64")
    parity = dtype == np.dtype(np.float64)
    backbone = getattr(model, "backbone", model)
    for attr in ("patch_embed", "blocks", "norm", "head"):
        if not hasattr(backbone, attr):
            raise CompileError(
                f"cannot compile {type(model).__name__}: expected a "
                f"VisionTransformer(-backed) model with .{attr}")
    blocks = [QuantizedBlock(block, bits, dtype, per_channel, delta1,
                             delta2, parity)
              for block in backbone.blocks]
    selectors = [QuantizedSelector(s, bits, dtype, per_channel, delta1,
                                   delta2, parity)
                 for s in getattr(model, "selectors", [])]
    embed_weights = (
        QuantizedLinearKernel.from_linear(
            backbone.patch_embed.projection, bits, dtype,
            _wants_per_channel(per_channel, "projection")),
        _contig(backbone.cls_token.data, dtype),
        _contig(backbone.pos_embed.data, dtype),
    )
    head_weights = (
        _contig(backbone.norm.weight.data, dtype),
        _contig(backbone.norm.bias.data, dtype),
        backbone.norm.eps,
        QuantizedLinearKernel.from_linear(
            backbone.head, bits, dtype,
            _wants_per_channel(per_channel, "head")),
    )
    return QuantizedModel(backbone.config, dtype, bits, parity, blocks,
                          selectors, embed_weights, head_weights, delta1,
                          delta2)
