"""Graph-free compiled inference for ViT / HeatViT serving.

:func:`compile_model` walks a :class:`repro.vit.VisionTransformer` or a
:class:`repro.core.HeatViT` once, extracts every weight into contiguous
arrays of the target dtype, and returns a :class:`CompiledModel` whose
methods run pure-ndarray fused kernels (:mod:`.kernels`) with scratch
from a :class:`.Workspace` -- no autograd tape, no per-op ``Tensor``
allocations, no ``(3, B, h, N, d)`` transpose round-trip in attention.

Compile-time fusions
--------------------
* **Pre-fused, pre-scaled QKV**: the qkv projection is one GEMM whose
  query columns are pre-multiplied by the ``1/sqrt(d)`` attention scale,
  so the score matmul needs no separate scaling pass.
* **Attention layout**: Q/K/V are strided views into the one
  ``(B, T, 3, h, d)`` qkv buffer; the batched matmuls consume the views
  directly instead of materializing the reference path's transposed
  5-D copy, and the only explicit copy is the single head-merge back to
  ``(B, T, D)``.
* **LayerNorm affine / biases**: stored contiguous in the target dtype,
  applied in place by :func:`.kernels.fused_layer_norm`.
* **Token selectors** are compiled to the same ndarray kernels (LN ->
  per-head scoring MLPs -> attention branch -> Eq. 8 combine -> Eq. 10
  packager), so keep/prune decisions on the fast path come from the
  exact same arithmetic as the compiled blocks.  A selector whose
  classifier is not the stock :class:`MultiHeadTokenClassifier` (e.g.
  the Fig. 12 conv ablation) falls back to invoking the original Tensor
  module under ``no_grad`` -- slower, still correct.

The Tensor path stays the reference implementation: float64 compiles
match it to well under the engine's 1e-8 bound, float32 to ~1e-6 logits
with (empirically pinned) identical token-keep decisions and argmax.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro import nn
from repro.nn.tensor import Tensor
from repro.engine.fastpath.kernels import (fused_layer_norm, gelu_exact,
                                           gelu_rational, gelu_tanh,
                                           masked_softmax)
from repro.engine.fastpath.workspace import Workspace

__all__ = ["compile_model", "CompiledModel", "CompiledBlock",
           "CompiledSelector", "CompileError"]

_EPS = 1e-8          # mirrors repro.core.selector._EPS


class CompileError(TypeError):
    """A module the fast path cannot lower (and cannot fall back on)."""


def _contig(array, dtype):
    return np.ascontiguousarray(array, dtype=dtype)


def _fold_norm_affine(norm, linear, dtype):
    """Fold a LayerNorm's affine into the Linear that consumes it.

    ``(xn * w + b) @ W + c  ==  xn @ (diag(w) W) + (b W + c)`` -- exact
    up to rounding order, one full-tensor multiply and add cheaper per
    invocation.  Returns fresh ``(weight, bias)`` arrays in ``dtype``.
    """
    w = np.asarray(norm.weight.data, dtype=dtype)
    b = np.asarray(norm.bias.data, dtype=dtype)
    weight = np.asarray(linear.weight.data, dtype=dtype)
    bias = (np.zeros(weight.shape[1], dtype=dtype) if linear.bias is None
            else np.asarray(linear.bias.data, dtype=dtype))
    return w[:, None] * weight, bias + b @ weight


_GELU_KERNELS = {"exact": gelu_exact, "rational": gelu_rational,
                 "tanh": gelu_tanh}


def _relu_kernel(x, ws, key):
    return np.maximum(x, 0.0, out=x)


def _sigmoid_kernel(x, ws, key):
    return special.expit(x, out=x)


def _hardswish_kernel(x, ws, key):
    scratch = ws.take(key + "0", x.shape)
    np.clip(x + 3.0, 0.0, 6.0, out=scratch)
    scratch /= 6.0
    x *= scratch
    return x


def _identity_kernel(x, ws, key):
    return x


class _TensorActivation:
    """Opaque activation executed through its reference Tensor module.

    A class (not a closure) so compiled models stay picklable -- worker
    processes receive compiled sessions by pickle or rebuild them from
    a :class:`repro.engine.SessionSpec`.
    """

    __slots__ = ("module", "dtype")

    def __init__(self, module, dtype):
        self.module = module
        self.dtype = dtype

    def __call__(self, x, ws, key):
        with nn.no_grad():
            result = self.module(Tensor(np.asarray(x, dtype=np.float64)))
        x[...] = result.data.astype(self.dtype, copy=False)
        return x


def _compile_activation(module, dtype, gelu):
    """Map an activation Module to an in-place ``fn(x, ws, key)``.

    Every returned callable is picklable (module-level functions or
    :class:`_TensorActivation` instances)."""
    if isinstance(module, nn.GELU):
        return _GELU_KERNELS[gelu]
    if isinstance(module, nn.ReLU):
        return _relu_kernel
    if isinstance(module, nn.Sigmoid):
        return _sigmoid_kernel
    if isinstance(module, nn.Hardswish):
        return _hardswish_kernel
    if isinstance(module, nn.Identity):
        return _identity_kernel
    return _TensorActivation(module, dtype)


def _compile_mlp(sequential, dtype, gelu):
    """Lower a ``Sequential`` of Linear / activation modules to a step
    program executed by :func:`_run_mlp`."""
    steps = []
    for module in sequential:
        if isinstance(module, nn.Linear):
            weight = _contig(module.weight.data, dtype)
            bias = (None if module.bias is None
                    else _contig(module.bias.data, dtype))
            steps.append(("linear", weight, bias))
        else:
            steps.append(("act", _compile_activation(module, dtype, gelu)))
    return steps


def _run_mlp(steps, x, ws, prefix):
    """Execute a compiled MLP program; returns a workspace buffer."""
    for index, step in enumerate(steps):
        if step[0] == "linear":
            _, weight, bias = step
            out = ws.take(f"{prefix}{index}",
                          x.shape[:-1] + (weight.shape[1],))
            np.matmul(x, weight, out=out)
            if bias is not None:
                out += bias
            x = out
        else:
            x = step[1](x, ws, f"{prefix}{index}s")
    return x


class CompiledBlock:
    """One transformer encoder block lowered to fused ndarray kernels.

    Both LayerNorms' affine transforms are folded into the GEMM that
    consumes them at compile time (``(xn * w + b) @ W`` becomes
    ``xn @ (diag(w) W) + b W``), so at run time each LN stops at the
    normalized activations -- the "pre-scaled LayerNorm affine" fusion.
    """

    __slots__ = ("num_heads", "head_dim", "embed_dim", "hidden_dim",
                 "eps1", "qkv_w", "qkv_b", "proj_w", "proj_b",
                 "eps2", "fc1_w", "fc1_b", "fc2_w", "fc2_b", "act")

    def __init__(self, block, dtype, gelu):
        attn = block.attn
        self.num_heads = attn.num_heads
        self.head_dim = attn.head_dim
        self.embed_dim = attn.embed_dim
        self.eps1 = block.norm1.eps
        self.eps2 = block.norm2.eps
        # Pre-fused QKV: norm1's affine folded in, and the attention
        # scale pre-multiplied onto the query columns (features [0, D)
        # of the qkv output are Q).
        qkv_w, qkv_b = _fold_norm_affine(block.norm1, attn.qkv, dtype)
        qkv_w[:, :self.embed_dim] *= dtype.type(attn.scale)
        qkv_b[:self.embed_dim] *= dtype.type(attn.scale)
        self.qkv_w = _contig(qkv_w, dtype)
        self.qkv_b = _contig(qkv_b, dtype)
        self.proj_w = _contig(attn.proj.weight.data, dtype)
        self.proj_b = _contig(attn.proj.bias.data, dtype)
        fc1_w, fc1_b = _fold_norm_affine(block.norm2, block.mlp.fc1, dtype)
        self.fc1_w = _contig(fc1_w, dtype)
        self.fc1_b = _contig(fc1_b, dtype)
        self.fc2_w = _contig(block.mlp.fc2.weight.data, dtype)
        self.fc2_b = _contig(block.mlp.fc2.bias.data, dtype)
        self.hidden_dim = self.fc1_w.shape[1]
        self.act = _compile_activation(block.mlp.act, dtype, gelu)

    def forward(self, x, bias, ws):
        """Pre-norm block, fully in place on ``x`` (``(B, T, D)``).

        ``bias`` is the additive key-padding score bias ``(B, T)`` (or
        ``None``); ``ws`` supplies every scratch buffer.
        """
        batch, tokens, dim = x.shape
        h, d = self.num_heads, self.head_dim
        normed = ws.take("blk_ln", (batch, tokens, dim))
        fused_layer_norm(x, None, None, self.eps1, out=normed,
                         ws=ws, key="blk_ln1")
        qkv = ws.take("blk_qkv", (batch, tokens, 3 * dim))
        np.matmul(normed, self.qkv_w, out=qkv)
        qkv += self.qkv_b
        split = qkv.reshape(batch, tokens, 3, h, d)
        q = split[:, :, 0].transpose(0, 2, 1, 3)           # (B, h, T, d)
        k = split[:, :, 1].transpose(0, 2, 3, 1)           # (B, h, d, T)
        v = split[:, :, 2].transpose(0, 2, 1, 3)           # (B, h, T, d)
        scores = ws.take("blk_scores", (batch, h, tokens, tokens))
        np.matmul(q, k, out=scores)                        # Q pre-scaled
        masked_softmax(scores, bias, ws, "blk_sm")
        context = ws.take("blk_ctx", (batch, h, tokens, d))
        np.matmul(scores, v, out=context)
        merged = ws.take("blk_merge", (batch, tokens, dim))
        # The one explicit head-merge copy: (B, h, T, d) -> (B, T, h*d).
        np.copyto(merged.reshape(batch, tokens, h, d),
                  context.transpose(0, 2, 1, 3))
        attn_out = ws.take("blk_attn_out", (batch, tokens, dim))
        np.matmul(merged, self.proj_w, out=attn_out)
        attn_out += self.proj_b
        x += attn_out                                      # residual 1
        fused_layer_norm(x, None, None, self.eps2, out=normed,
                         ws=ws, key="blk_ln2")
        hidden = ws.take("blk_mlp", (batch, tokens, self.hidden_dim))
        np.matmul(normed, self.fc1_w, out=hidden)
        hidden += self.fc1_b
        self.act(hidden, ws, "blk_act")
        np.matmul(hidden, self.fc2_w, out=attn_out)        # reuse buffer
        attn_out += self.fc2_b
        x += attn_out                                      # residual 2
        return x


class CompiledSelector:
    """A token selector lowered to ndarray kernels (eval semantics).

    Reproduces :meth:`repro.core.TokenSelector.forward` with
    ``hard=False`` and no incoming mask -- exactly what both deployment
    paths execute: deterministic argmax decisions, the >=1-token guard,
    and the Eq. 10 score-weighted packager.

    A selector whose classifier is not the stock
    :class:`MultiHeadTokenClassifier` (e.g. the Fig. 12 conv ablation)
    compiles in **hybrid fallback** mode: the classifier stays an opaque
    Tensor module, but the LayerNorm, attention branch, Eq. 8 combine,
    guard, and packager still run as native kernels -- in float64, the
    arithmetic the old whole-module fallback used -- so the ragged
    single-pipeline boundary (:meth:`select_ragged`) is available for
    every selector, stock or not.
    """

    __slots__ = ("dtype", "score_dtype", "num_heads", "head_dim",
                 "norm_w", "norm_b", "norm_eps", "feature_mlp",
                 "classifier_mlp", "attention_mlp", "fallback_module",
                 "classifier_module", "_fallback_ws")

    def __init__(self, selector, dtype, gelu):
        from repro.core.selector import MultiHeadTokenClassifier

        self.dtype = dtype
        self.fallback_module = None
        self.classifier_module = None
        self._fallback_ws = None
        score_dtype = dtype
        if not isinstance(selector.classifier, MultiHeadTokenClassifier):
            # Hybrid fallback: score in float64 through the original
            # classifier module (matches the reference bit-for-bit up to
            # rounding order), native kernels for everything else.
            self.fallback_module = selector
            self.classifier_module = selector.classifier
            score_dtype = np.dtype(np.float64)
            gelu = "exact"
            self._fallback_ws = Workspace(score_dtype)
        self.score_dtype = score_dtype
        self.num_heads = selector.num_heads
        self.head_dim = selector.embed_dim // selector.num_heads
        self.norm_w = _contig(selector.norm.weight.data, score_dtype)
        self.norm_b = _contig(selector.norm.bias.data, score_dtype)
        self.norm_eps = selector.norm.eps
        if self.classifier_module is None:
            classifier = selector.classifier
            self.feature_mlp = _compile_mlp(classifier.feature_mlp,
                                            score_dtype, gelu)
            self.classifier_mlp = _compile_mlp(classifier.classifier_mlp,
                                               score_dtype, gelu)
        else:
            self.feature_mlp = None
            self.classifier_mlp = None
        self.attention_mlp = _compile_mlp(selector.attention_branch.mlp,
                                          score_dtype, gelu)

    def _scoring_input(self, tokens, ws):
        """Cast to the scoring dtype and pick the scoring workspace.

        Stock selectors score in the compile dtype with the caller's
        workspace; hybrid fallbacks score in float64 with their own
        scratch pool (the caller's pool is typed to the compile dtype).
        """
        if self.classifier_module is None:
            return tokens, ws
        return np.asarray(tokens, dtype=self.score_dtype), self._fallback_ws

    def _classifier_scores_dense(self, normed, ws):
        """Per-head keep/prune probabilities for dense ``(g, N, D)``
        normed tokens: ``(g, h, N, 2)``."""
        if self.classifier_module is not None:
            with nn.no_grad():
                scores = self.classifier_module(
                    Tensor(np.ascontiguousarray(normed)))
            return scores.data
        g, tokens, dim = normed.shape
        h, d = self.num_heads, self.head_dim
        heads = normed.reshape(g, tokens, h, d)
        # Per-head token scores (Eqs. 3-5): local features, masked-free
        # global average, concat, classify, softmax.
        local = _run_mlp(self.feature_mlp, heads.transpose(0, 2, 1, 3),
                         ws, "sel_feat")                   # (g, h, N, f)
        feat = local.shape[-1]
        combined = ws.take("sel_comb", (g, h, tokens, 2 * feat))
        combined[..., :feat] = local
        gmean = np.add.reduce(local, axis=2, keepdims=True)
        gmean /= tokens
        combined[..., feat:] = gmean
        per_head = _run_mlp(self.classifier_mlp, combined, ws, "sel_cls")
        masked_softmax(per_head, ws=ws, key="sel_sm")      # (g, h, N, 2)
        return per_head

    def select(self, patches, ws):
        """Score ``(g, N, D)`` patch tokens; returns ``(keep, packages)``
        with ``keep`` boolean ``(g, N)`` and ``packages`` ``(g, D)``.
        """
        patches, ws = self._scoring_input(patches, ws)
        sdt = self.score_dtype
        g, tokens, dim = patches.shape
        h, d = self.num_heads, self.head_dim
        normed = ws.take("sel_norm", (g, tokens, dim))
        fused_layer_norm(patches, self.norm_w, self.norm_b, self.norm_eps,
                         out=normed, ws=ws, key="sel_ln")
        per_head = self._classifier_scores_dense(normed, ws)
        # Attention branch (Eqs. 6-7): head channel means -> MLP -> sigmoid.
        head_stat = np.add.reduce(normed.reshape(g, tokens, h, d), axis=-1)
        head_stat /= d                                     # (g, N, h)
        importance = _run_mlp(self.attention_mlp, head_stat, ws, "sel_att")
        special.expit(importance, out=importance)
        # Eq. 8 combine: head-importance-weighted average of the scores.
        weights = importance.transpose(0, 2, 1)[..., None]  # (g, h, N, 1)
        per_head *= weights
        scores = np.add.reduce(per_head, axis=1)            # (g, N, 2)
        total = np.add.reduce(weights, axis=1)
        total += sdt.type(_EPS)
        scores /= total
        keep_score = scores[..., 0]
        keep = keep_score >= scores[..., 1]
        # Degenerate guard: never prune every token of an image.
        for row in np.flatnonzero(~keep.any(axis=1)):
            keep[row, np.argmax(keep_score[row])] = True
        # Eq. 10 packager on the RAW (un-normed) tokens, weighted by the
        # pruned tokens' keep scores.
        pruned_w = np.where(keep, sdt.type(0.0), keep_score)
        packages = np.matmul(pruned_w[:, None, :], patches)[:, 0, :]
        packages /= (pruned_w.sum(axis=1, keepdims=True)
                     + sdt.type(_EPS))
        return keep, packages.astype(self.dtype, copy=False)

    def _classifier_scores_ragged(self, normed, counts, starts, ws):
        """Per-head probabilities for ragged tokens: ``(M, h, 2)``.

        Stock selectors run one flat kernel pipeline with segment
        reductions.  Hybrid fallbacks batch images of equal length into
        dense classifier-module calls (the module's own global pooling
        is per image either way) and scatter the scores back flat --
        the boundary still costs one module call per *distinct length*,
        not one per ``(length, package)`` group per padded bucket.
        """
        m = normed.shape[0]
        h = self.num_heads
        if self.classifier_module is not None:
            per_head = np.empty((m, h, 2), dtype=self.score_dtype)
            by_count = {}
            for image, count in enumerate(counts):
                by_count.setdefault(int(count), []).append(image)
            for count, images in by_count.items():
                dense = np.empty((len(images), count, normed.shape[1]),
                                 dtype=self.score_dtype)
                for row, image in enumerate(images):
                    lo = starts[image]
                    dense[row] = normed[lo:lo + count]
                with nn.no_grad():
                    scores = self.classifier_module(Tensor(dense))
                scores = scores.data                       # (g, h, n, 2)
                for row, image in enumerate(images):
                    lo = starts[image]
                    per_head[lo:lo + count] = scores[row].transpose(1, 0, 2)
            return per_head
        heads = normed.reshape(m, h, self.head_dim)
        local = _run_mlp(self.feature_mlp, heads, ws, "rag_feat")  # (M,h,f)
        feat = local.shape[-1]
        gmean = np.add.reduceat(local, starts, axis=0)     # (n, h, f)
        gmean /= counts[:, None, None]
        combined = ws.take("rag_comb", (m, h, 2 * feat))
        combined[..., :feat] = local
        combined[..., feat:] = np.repeat(gmean, counts, axis=0)
        per_head = _run_mlp(self.classifier_mlp, combined, ws, "rag_cls")
        masked_softmax(per_head, ws=ws, key="rag_sm")      # (M, h, 2)
        return per_head

    def select_ragged(self, flat, counts, ws):
        """Score a ragged batch of images in ONE kernel pipeline.

        ``flat``: ``(M, D)`` patch tokens of many images concatenated
        along the token axis; ``counts``: ``(n,)`` per-image token
        counts summing to ``M``.  This is the selector-boundary hot
        path: every per-token op (LN, MLPs, softmax, sigmoid, Eq. 8)
        is arithmetically identical to the dense :meth:`select`, and
        the per-image reductions (Eq. 4 global pooling, the >=1-token
        guard, the Eq. 10 packager) run as segment reductions
        (``np.add.reduceat``) -- so one call replaces one
        :meth:`select` per distinct sequence length.  Segment sums
        accumulate sequentially instead of numpy's pairwise order, a
        rounding-level (~1e-16 in float64) deviation only.

        Hybrid fallback selectors (non-stock classifiers) run the same
        pipeline with the classifier scored per distinct length; see
        :meth:`_classifier_scores_ragged`.

        Returns ``(keep_flat, packages)``: boolean ``(M,)`` and
        ``(n, D)``.
        """
        flat, ws = self._scoring_input(flat, ws)
        sdt = self.score_dtype
        m, dim = flat.shape
        h, d = self.num_heads, self.head_dim
        counts = np.asarray(counts)
        starts = np.zeros(counts.size, dtype=np.intp)
        np.cumsum(counts[:-1], out=starts[1:])
        normed = ws.take("rag_norm", (m, dim))
        fused_layer_norm(flat, self.norm_w, self.norm_b, self.norm_eps,
                         out=normed, ws=ws, key="rag_ln")
        per_head = self._classifier_scores_ragged(normed, counts, starts,
                                                  ws)
        head_stat = np.add.reduce(normed.reshape(m, h, d), axis=-1)
        head_stat /= d                                     # (M, h)
        importance = _run_mlp(self.attention_mlp, head_stat, ws, "rag_att")
        special.expit(importance, out=importance)
        weights = importance[..., None]                    # (M, h, 1)
        per_head *= weights
        scores = np.add.reduce(per_head, axis=1)           # (M, 2)
        total = np.add.reduce(weights, axis=1)
        total += sdt.type(_EPS)
        scores /= total
        keep_score = scores[..., 0]
        keep = keep_score >= scores[..., 1]
        kept_any = np.logical_or.reduceat(keep, starts)
        for image in np.flatnonzero(~kept_any):            # guard
            lo = starts[image]
            hi = lo + counts[image]
            keep[lo + np.argmax(keep_score[lo:hi])] = True
        pruned_w = np.where(keep, sdt.type(0.0), keep_score)
        weighted = ws.take("rag_pkg", (m, dim))
        np.multiply(flat, pruned_w[:, None], out=weighted)
        packages = np.add.reduceat(weighted, starts, axis=0)
        packages /= (np.add.reduceat(pruned_w, starts)[:, None]
                     + sdt.type(_EPS))
        return keep, packages.astype(self.dtype, copy=False)


class CompiledModel:
    """Weights + kernels for the graph-free serving forward pass.

    Buffers returned by :meth:`embed` / :meth:`forward` belong to the
    model (they are mutated in place by subsequent block calls and
    reused across invocations sharing a workspace); copy them if you
    need them to survive the next call.

    ``supports_ragged`` advertises the ragged selector-boundary entry
    point to the executor; quantized models unset it on the parity
    grade (whose selectors run per exact group).
    """

    supports_ragged = True

    def __init__(self, config, dtype, blocks, selectors, embed_weights,
                 head_weights, gelu):
        self.config = config
        self.dtype = dtype
        self.gelu = gelu
        self.blocks = blocks
        self.selectors = selectors
        (self.patch_w, self.patch_b, self.cls_token,
         self.pos_embed) = embed_weights
        # Final LayerNorm affine folded into the head GEMM.
        (self.final_norm_eps, self.head_w, self.head_b) = head_weights
        self._default_ws = Workspace(dtype)

    # ------------------------------------------------------------------
    def workspace(self, ws=None):
        return self._default_ws if ws is None else ws

    def embed(self, images, ws=None):
        """Patch-embed + CLS + position embeddings: ``(B, 1+N, D)``."""
        ws = self.workspace(ws)
        images = np.asarray(images, dtype=self.dtype)
        batch, channels, height, width = images.shape
        p = self.config.patch_size
        grid_h, grid_w = height // p, width // p
        cols = images.reshape(batch, channels, grid_h, p, grid_w, p)
        cols = cols.transpose(0, 2, 4, 1, 3, 5)
        cols = cols.reshape(batch, grid_h * grid_w, channels * p * p)
        out = ws.take("embed", (batch, 1 + grid_h * grid_w,
                                self.patch_w.shape[1]))
        np.matmul(cols, self.patch_w, out=out[:, 1:, :])
        out[:, 1:, :] += self.patch_b
        out[:, 0, :] = self.cls_token
        out += self.pos_embed
        return out

    def run_block(self, index, x, bias=None, ws=None):
        """Run block ``index`` in place on ``x``; see
        :meth:`CompiledBlock.forward`."""
        return self.blocks[index].forward(x, bias, self.workspace(ws))

    def forward(self, tokens, key_mask=None, ws=None):
        """Run the whole block stack over a token sequence.

        ``tokens``: ``(B, T, D)`` (copied, the input is not mutated);
        ``key_mask``: optional ``(B, T)`` {0,1} key-padding mask.
        Selectors are NOT applied -- physically-pruned control flow
        lives in :class:`repro.engine.BucketedExecutor`; this is the
        dense stack the parity tests compare against the Tensor blocks.
        """
        from repro.engine.fastpath.kernels import mask_to_bias

        ws = self.workspace(ws)
        x = np.array(tokens, dtype=self.dtype)
        bias = (None if key_mask is None
                else mask_to_bias(key_mask, self.dtype))
        for index in range(len(self.blocks)):
            self.run_block(index, x, bias, ws)
        return x

    def select(self, stage, patches, ws=None):
        """Apply compiled selector ``stage``; see
        :meth:`CompiledSelector.select`."""
        return self.selectors[stage].select(patches, self.workspace(ws))

    def select_ragged(self, stage, flat, counts, ws=None):
        """Ragged-batch form of :meth:`select`; see
        :meth:`CompiledSelector.select_ragged`."""
        return self.selectors[stage].select_ragged(flat, counts,
                                                   self.workspace(ws))

    def classify(self, x, ws=None):
        """Final LayerNorm + head on the CLS row: ``(B, num_classes)``.

        Only token 0 feeds the head, so the fast path norms just that
        row (LayerNorm is per-token; identical to norming the full
        sequence and slicing).  Returns a fresh array.
        """
        ws = self.workspace(ws)
        batch = x.shape[0]
        cls_row = ws.take("cls_norm", (batch, x.shape[-1]))
        fused_layer_norm(x[:, 0, :], None, None, self.final_norm_eps,
                         out=cls_row, ws=ws, key="cls_ln")
        logits = np.matmul(cls_row, self.head_w)
        logits += self.head_b
        return logits


def compile_model(model, dtype=np.float32, gelu="auto"):
    """Compile a ``VisionTransformer`` or ``HeatViT`` for the fast path.

    Parameters
    ----------
    model: the model to lower.  Weights are **copied** at compile time;
        recompile after mutating parameters (e.g. loading a checkpoint).
        Keep-ratio retuning needs no recompile (ratios only steer
        training-time losses; eval decisions come from the weights).
    dtype: ``numpy.float32`` (default: half the memory traffic,
        ~1e-6-level logits vs the reference) or ``numpy.float64``
        (reference-equivalent to well under 1e-8).
    gelu: ``"auto"`` (default: exact erf for float64 parity, the
        rational-erf kernel for float32 -- ~6e-7 activation error,
        below the float32 noise floor), ``"exact"`` (erf everywhere),
        ``"rational"``, or ``"tanh"`` (fastest, ~1e-3 deviation -- not
        parity-grade).
    """
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise CompileError(f"unsupported dtype {dtype}; use float32 or "
                           f"float64")
    if gelu == "auto":
        gelu = "exact" if dtype == np.dtype(np.float64) else "rational"
    if gelu not in ("exact", "rational", "tanh"):
        raise CompileError(f"unknown gelu mode {gelu!r}")
    backbone = getattr(model, "backbone", model)
    for attr in ("patch_embed", "blocks", "norm", "head"):
        if not hasattr(backbone, attr):
            raise CompileError(
                f"cannot compile {type(model).__name__}: expected a "
                f"VisionTransformer(-backed) model with .{attr}")
    blocks = [CompiledBlock(block, dtype, gelu)
              for block in backbone.blocks]
    selectors = [CompiledSelector(s, dtype, gelu)
                 for s in getattr(model, "selectors", [])]
    embed_weights = (
        _contig(backbone.patch_embed.projection.weight.data, dtype),
        _contig(backbone.patch_embed.projection.bias.data, dtype),
        _contig(backbone.cls_token.data[0, 0], dtype),
        _contig(backbone.pos_embed.data, dtype),
    )
    head_w, head_b = _fold_norm_affine(backbone.norm, backbone.head, dtype)
    head_weights = (backbone.norm.eps, _contig(head_w, dtype),
                    _contig(head_b, dtype))
    return CompiledModel(backbone.config, dtype, blocks, selectors,
                         embed_weights, head_weights, gelu)
