"""Quantized-path kernels: the paper's polynomial nonlinearities plus
dynamic per-tensor activation quantization, in two numerics grades.

The ``backend="int8"``/``"int16"`` fast path (:mod:`.quantized`) holds
itself to the :func:`repro.quant.quantize_model` simulation -- the
surgered Tensor model whose Linears are :class:`QuantizedLinear` and
whose GELU/Softmax modules are the polynomial approximations.  Every
kernel here therefore comes in two forms:

* ``*_reference`` -- float64, allocation-per-op, replicating the Tensor
  chain's exact operation order so results are **bitwise** equal to the
  simulation (integer-valued float64 GEMMs are exact integer arithmetic
  below 2^53, so even BLAS summation order cannot perturb them).
* ``*_fast`` -- float32, in place on :class:`.Workspace` scratch, free
  to reassociate (reciprocal-multiplies, a fused ``modf``/``ldexp``
  shift-based exp) because the float32 lane is gated on top-1/keep
  *agreement*, not bitwise parity.

The reference forms intentionally mirror :mod:`repro.approx.layers`
(``softmax_approx_t`` / ``gelu_approx_t``) and
:func:`repro.nn.functional.layer_norm` operation for operation; edit
those and these together.
"""

from __future__ import annotations

import math

import numpy as np

from repro.approx.polynomial import (ERF_A, ERF_B, _EXP_C0, _EXP_C1,
                                     _EXP_C2, _LN2)

__all__ = [
    "quantize_reference", "layer_norm_reference", "approx_gelu_reference",
    "approx_softmax_reference", "quantize_fast", "approx_gelu_fast",
    "approx_softmax_fast",
]

_SQRT_2 = np.sqrt(2.0)
_TINY = float(np.finfo(np.float64).tiny)
# sqrt(c0) folded into the polynomial's linear term so the fast exp
# evaluates c0*(p + c1)^2 + c2 as (s*p + s*c1)^2 + c2 -- one pass less.
_SQRT_C0 = float(np.sqrt(_EXP_C0))
# The fast GELU clips |x| (not |x/sqrt2|), folding the 1/sqrt(2) into
# the clip bound and the square's coefficient:
#   a*(min(|u|,-b)+b)^2 + 1 == (a/2)*(min(|x|,-b*sqrt2)+b*sqrt2)^2 + 1.
_GELU_CLIP = float(-ERF_B * _SQRT_2)
_GELU_SHIFT = float(ERF_B * _SQRT_2)
_GELU_A2 = float(ERF_A / 2.0)


# ----------------------------------------------------------------------
# Reference (bitwise simulation-parity, float64) kernels
# ----------------------------------------------------------------------
def quantize_reference(x, scale, qmax):
    """``quant.fixed_point.quantize`` kept in float64.

    Returns the integer *values* as float64 (``rint`` below 2^53 is
    exact), so the follow-up GEMM can run on BLAS while remaining
    bitwise-identical to the simulation's int64 matmul.
    """
    q = np.rint(x / scale)
    return np.clip(q, float(-qmax), float(qmax))


def layer_norm_reference(x, weight, bias, eps):
    """Bitwise mirror of :func:`repro.nn.functional.layer_norm`.

    Same reduction order (``sum / n``), same division by the epsilon'd
    standard deviation (no reciprocal-multiply), affine applied last --
    never folded into the next GEMM, because folding would change which
    weights the quantizer sees.
    """
    n = x.shape[-1]
    mu = np.add.reduce(x, axis=-1, keepdims=True) / n
    centered = x - mu
    var = np.add.reduce(centered * centered, axis=-1, keepdims=True) / n
    normed = centered / np.sqrt(var + eps)
    return normed * weight + bias


def approx_gelu_reference(x, delta1):
    """Bitwise mirror of ``repro.approx.layers.gelu_approx_t`` (Eq. 12)."""
    u = x / _SQRT_2
    sign = np.sign(u)
    clipped = np.clip(np.abs(u), None, -ERF_B)
    poly = (clipped + ERF_B) ** 2 * ERF_A + 1.0
    erf = sign * poly * delta1
    return x * 0.5 * (erf + 1.0)


def approx_softmax_reference(x, delta2):
    """Bitwise mirror of ``repro.approx.layers.softmax_approx_t``
    (Eq. 13 with the Eq. 14 shift-based exp) over the last axis.

    A ``-1e9`` key-padding bias drives ``np.exp2(-z)`` into an exact
    ``0.0``, so the engine's padding invariant survives the
    approximation unchanged.
    """
    shifted = x - x.max(axis=-1, keepdims=True)
    z = np.floor(-np.minimum(shifted, 0.0) / _LN2)
    p = shifted + z * _LN2
    exp_p = (p + _EXP_C1) ** 2 * _EXP_C0 + _EXP_C2
    exps = exp_p * np.exp2(-z)
    return exps / exps.sum(axis=-1, keepdims=True) * delta2


# ----------------------------------------------------------------------
# Fast (float32, in-place) kernels
# ----------------------------------------------------------------------
def quantize_fast(x, qmax, ws, key, out=None):
    """Dynamic per-tensor quantization into workspace scratch.

    Returns ``(q, scale)`` with ``q`` integer-valued in ``x``'s dtype.
    Two whole-buffer min/max reductions replace the reference's
    ``abs().max()`` pass, and the scaling is a reciprocal-multiply; the
    clip is skipped entirely because with an abs-max-derived scale
    ``|rint(x / scale)| <= qmax`` already holds (the half-ulp slack of
    the reciprocal cannot push ``rint`` past ``qmax + 0.5``).
    """
    if x.size:
        amax = max(float(x.max()), -float(x.min()))
    else:
        amax = 0.0
    if not math.isfinite(amax):
        raise ValueError(
            f"cannot calibrate quantization on non-finite input "
            f"(abs-max is {amax}); clean NaN/inf values first")
    if amax == 0.0:
        amax = 1.0
    scale = max(amax / qmax, _TINY)
    q = ws.take(key, x.shape) if out is None else out
    np.multiply(x, x.dtype.type(1.0 / scale), out=q)
    np.rint(q, out=q)
    return q, scale


def approx_gelu_fast(x, delta1, ws, key):
    """Polynomial GELU (Eq. 12) in place on ``x``.

    Pure arithmetic -- no ``exp``/``erf``/``reciprocal`` -- in ten
    in-place passes over one scratch buffer (the 1/sqrt2 is folded into
    the clip constants, the x/2 into the final blend), so it runs well
    under half the float32 lane's rational-erf kernel; the fast lane's
    answer to the paper's fixed-function GELU unit.
    """
    dt = x.dtype.type
    poly = ws.take(key + "p", x.shape)
    np.abs(x, out=poly)
    np.minimum(poly, dt(_GELU_CLIP), out=poly)
    poly += dt(_GELU_SHIFT)
    np.multiply(poly, poly, out=poly)
    poly *= dt(_GELU_A2)
    poly += dt(1.0)                       # erf-poly of |x|, always > 0
    np.copysign(poly, x, out=poly)        # sign(x) * poly
    poly *= dt(0.5 * delta1)
    poly += dt(0.5)                       # (delta1*erf + 1) / 2
    x *= poly
    return x


def approx_softmax_fast(scores, bias, delta2, ws, key):
    """Shift-based-exp softmax (Eqs. 13-14) in place over the last axis.

    ``bias`` is an optional ``(B, T)`` additive key bias folded in
    before the shift.  The reference's ``z``/``p`` decomposition
    (``floor`` + two full-tensor fixups) collapses into a ``trunc`` +
    subtract (truncation == the reference's ``floor`` because the
    shifted scores are non-positive), and the power-of-two rescale is a
    single ``np.exp2`` on the integer-valued ``-z`` buffer -- exact for
    integers, and benchmarked barely above a multiply (unlike ``modf``
    / ``ldexp``, which cost ~10x/4x that).  Masked keys sit near
    ``-1e9``: their ``exp2`` argument (~ ``-1.4e9``) underflows to an
    exact ``0.0`` weight, preserving the engine's padding invariant.
    """
    dt = scores.dtype.type
    if bias is not None:
        scores += bias.reshape(bias.shape[0],
                               *([1] * (scores.ndim - 2)), bias.shape[1])
    t = scores.shape[-1]
    flat = scores.reshape(-1, t)
    peak = ws.take(key + "_max", (flat.shape[0], 1))
    np.maximum.reduce(flat, axis=-1, keepdims=True, out=peak)
    np.subtract(flat, peak, out=flat)                  # <= 0
    flat *= dt(1.0 / _LN2)                             # x / ln2, <= 0
    whole = ws.take(key + "_int", scores.shape).reshape(flat.shape)
    np.trunc(flat, out=whole)             # integer-valued -z
    np.subtract(flat, whole, out=flat)    # frac in (-1, 0]
    flat *= dt(_SQRT_C0 * _LN2)
    flat += dt(_SQRT_C0 * _EXP_C1)
    np.multiply(flat, flat, out=flat)
    flat += dt(_EXP_C2)                   # c0*(p + c1)^2 + c2
    np.exp2(whole, out=whole)             # 2^(-z), exact on integers
    flat *= whole                         # exp~(x - max)
    total = ws.take(key + "_sum", (flat.shape[0], 1))
    np.matmul(flat, ws.ones(key + "_ones", (t, 1)), out=total)
    np.reciprocal(total, out=total)
    flat *= total
    if delta2 != 1.0:
        flat *= dt(delta2)
    return scores
