"""Preallocated scratch buffers for the graph-free inference fast path.

The Tensor reference path allocates a fresh ndarray for every
intermediate of every op; at serving batch sizes that is dozens of
short-lived ``(B, T, D)`` / ``(B, h, T, T)`` arrays per block.  A
:class:`Workspace` keeps one buffer per ``(name, shape)`` pair and hands
it back on every request, so the bucketed executor reuses the same
scratch memory across blocks, selector stages, and bursts -- buckets of
a recurring shape (the common case under steady traffic) allocate
nothing at all after warm-up.

Buffers are handed out dirty (no zeroing): every fast-path kernel fully
overwrites its output, which is part of the kernel contract.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """A pool of named, shape-keyed scratch arrays of one dtype.

    ``hits`` / ``misses`` count buffer reuses vs fresh allocations --
    telemetry the reuse tests and the hot-path profiler read.

    ``max_buffers`` bounds the pool: under image-adaptive pruning a
    long-lived serving session sees an open-ended set of
    ``(batch, padded_length)`` shapes, so without eviction the pool
    would grow monotonically.  When full, the oldest buffer is dropped
    (FIFO); callers holding a reference to an evicted buffer are
    unaffected -- eviction only forgets it for future reuse.
    """

    def __init__(self, dtype=np.float32, max_buffers=512):
        if max_buffers < 1:
            raise ValueError("max_buffers must be >= 1")
        self.dtype = np.dtype(dtype)
        self.max_buffers = int(max_buffers)
        self._buffers = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _insert(self, key, buffer):
        self._buffers[key] = buffer
        self.misses += 1
        if len(self._buffers) > self.max_buffers:
            self._buffers.pop(next(iter(self._buffers)))
            self.evictions += 1
        return buffer

    def take(self, name, shape):
        """Return the scratch buffer registered under ``(name, shape)``.

        The same ``(name, shape)`` always returns the *same* array (up
        to eviction), so callers must be done with a named buffer
        before re-requesting it.  Contents are undefined (kernels
        overwrite fully).
        """
        key = (name, shape)
        buffer = self._buffers.get(key)
        if buffer is None:
            return self._insert(key, np.empty(shape, dtype=self.dtype))
        self.hits += 1
        return buffer

    def full(self, name, shape, value):
        """Return a buffer pre-filled with ``value`` (filled once, on
        allocation -- callers must treat it as read-only).  Used for
        the cached ones / ``1/n`` vectors behind the BLAS-backed row
        reductions."""
        key = (name, shape)
        buffer = self._buffers.get(key)
        if buffer is None:
            return self._insert(key,
                                np.full(shape, value, dtype=self.dtype))
        self.hits += 1
        return buffer

    def ones(self, name, shape):
        """Shorthand for :meth:`full` with value 1."""
        return self.full(name, shape, 1.0)

    def __len__(self):
        return len(self._buffers)

    # ------------------------------------------------------------------
    # Pickling: scratch is process-local by nature (a worker process
    # rebuilds its own buffers on first use), so only the configuration
    # crosses the pickle boundary -- this also keeps compiled sessions
    # cheap to ship to executor workers.
    def __getstate__(self):
        return {"dtype": self.dtype, "max_buffers": self.max_buffers}

    def __setstate__(self, state):
        self.__init__(dtype=state["dtype"],
                      max_buffers=state["max_buffers"])

    @property
    def nbytes(self):
        """Total bytes currently held by the pool."""
        return sum(b.nbytes for b in self._buffers.values())

    def clear(self):
        """Drop every buffer (counters are kept)."""
        self._buffers.clear()

    def __repr__(self):
        return (f"Workspace(dtype={self.dtype.name}, buffers={len(self)}, "
                f"hits={self.hits}, misses={self.misses})")
