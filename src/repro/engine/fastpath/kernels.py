"""Fused pure-ndarray kernels for the serving fast path.

Each routine here replaces a chain of 4-6 small autograd ``Tensor`` ops
with one or two in-place passes over caller-provided buffers: no tape
bookkeeping, no per-op allocations, and the caller's :class:`Workspace`
scratch is reused across calls.  The float64 variants track the Tensor
reference implementations (:mod:`repro.nn.functional`) to well under the
engine's 1e-8 parity bound; float32 trades ~1e-6-level rounding for
roughly half the memory traffic.

Activation kernels share the signature ``fn(x, ws, key)``: ``x`` is
transformed in place, scratch comes from the workspace under ``key``.

Conventions
-----------
* ``out`` buffers are fully overwritten; aliasing ``out`` with an input
  is only allowed where a kernel documents it.
* Reductions go through ``np.add.reduce`` / ``np.maximum.reduce``
  directly -- the ``ndarray.mean``/``max`` wrappers cost real time at
  serving batch shapes -- and divide exactly like ``np.mean`` so parity
  with the Tensor reference is preserved.
* The masked softmax folds the key-padding bias into the single
  max/exp/sum pass; a ``-1e9`` bias underflows to an exactly-zero
  attention weight in both dtypes, preserving the engine's padding
  invariant.
"""

from __future__ import annotations

import numpy as np
from scipy import special

__all__ = ["fused_layer_norm", "masked_softmax", "gelu_exact",
           "gelu_rational", "gelu_tanh", "mask_to_bias", "MASK_BIAS"]

_SQRT_2 = np.sqrt(2.0)
_SQRT_2_OVER_PI = np.sqrt(2.0 / np.pi)

#: Additive score penalty for masked attention keys.  Matches the
#: Tensor reference (`repro.vit.attention`): exp(-1e9 - max) underflows
#: to exactly 0.0 in float32 and float64 alike.
MASK_BIAS = -1e9


def mask_to_bias(key_mask, dtype, out=None):
    """Turn a ``(B, T)`` {0,1} key mask into an additive score bias row.

    Returns ``(1 - mask) * MASK_BIAS`` in ``dtype`` -- broadcast over
    the score tensor's query axes by :func:`masked_softmax`.
    """
    mask = np.asarray(key_mask)
    if out is None:
        out = np.empty(mask.shape, dtype=dtype)
    np.subtract(1.0, mask, out=out, casting="unsafe")
    out *= MASK_BIAS
    return out


def masked_softmax(scores, bias=None, ws=None, key="sm"):
    """Single-pass masked softmax over the last axis, in place.

    ``scores``: ``(B, h, T, T)`` (or any >=2-D) attention scores,
    overwritten with probabilities.  ``bias``: optional ``(B, T)``
    additive key bias (from :func:`mask_to_bias`) broadcast over the
    middle axes, folded in before the max/exp/sum pass so masked keys
    get exactly zero weight.  With a :class:`Workspace` the row sums
    run as one BLAS matvec (a ones-vector matmul, ~6x the speed of a
    last-axis ``add.reduce`` at serving shapes) and the normalization
    is a reciprocal-multiply; both deviate from the reference only in
    summation/rounding order.  Returns ``scores``.
    """
    if bias is not None:
        # (B, T) -> (B, 1, ..., 1, T) to match scores' rank.
        bias = bias.reshape(bias.shape[0],
                            *([1] * (scores.ndim - 2)), bias.shape[1])
    if ws is None:
        if bias is not None:
            scores += bias
        peak = np.maximum.reduce(scores, axis=-1, keepdims=True)
        np.subtract(scores, peak, out=scores)
        np.exp(scores, out=scores)
        total = np.add.reduce(scores, axis=-1, keepdims=True)
        scores /= total
        return scores
    t = scores.shape[-1]
    flat = scores.reshape(-1, t)
    # Softmax is shift-invariant, so the per-row max subtraction is
    # purely for numerical range.  When the raw scores provably cannot
    # overflow/underflow exp (|score| < 60: exp(+-60) is finite and
    # normal in float32), skip the shift entirely -- two cheap
    # contiguous whole-buffer reductions replace the slow last-axis
    # row max plus a full-size subtract.  Out-of-range scores take the
    # reference max-shifted path.
    whole = scores.reshape(-1)
    safe = (np.minimum.reduce(whole) > -60.0
            and np.maximum.reduce(whole) < 60.0)
    if bias is not None:
        scores += bias
    if safe:
        # Masked keys sit at ~-1e9 after the bias: exp underflows to
        # an exact 0.0, same as on the shifted path.
        np.exp(flat, out=flat)
    else:
        peak = ws.take(key + "_max", (flat.shape[0], 1))
        np.maximum.reduce(flat, axis=-1, keepdims=True, out=peak)
        np.subtract(flat, peak, out=flat)
        np.exp(flat, out=flat)
    total = ws.take(key + "_sum", (flat.shape[0], 1))
    np.matmul(flat, ws.ones(key + "_ones", (t, 1)), out=total)
    np.reciprocal(total, out=total)
    flat *= total
    return scores


def fused_layer_norm(x, weight, bias, eps, out, ws=None, key="ln"):
    """LayerNorm over the last axis into ``out`` (``out`` may not alias
    ``x``).

    One centering pass, one variance reduction, then the affine applied
    in place -- versus the reference's seven tape ops.  Matches
    :func:`repro.nn.functional.layer_norm` (biased variance, additive
    ``eps`` under the square root) up to summation/rounding order: with
    a :class:`Workspace` the mean and variance run as BLAS matvecs
    against a cached ``1/n`` vector.

    ``weight``/``bias`` may be ``None`` when the affine has been folded
    into the next GEMM's weights at compile time (see
    :class:`repro.engine.fastpath.CompiledBlock`) -- the kernel then
    stops at the normalized (zero-mean, unit-variance) activations.
    """
    n = x.shape[-1]
    if ws is None:
        mu = np.add.reduce(x, axis=-1, keepdims=True)
        mu /= n
        np.subtract(x, mu, out=out)
        scratch = np.square(out)
        var = np.add.reduce(scratch, axis=-1, keepdims=True)
        var /= n
    else:
        mean_vec = ws.full(key + "_mv", (n, 1), 1.0 / n)
        lead = x.shape[:-1]
        mu = ws.take(key + "_mu", lead + (1,))
        np.matmul(x, mean_vec, out=mu)
        np.subtract(x, mu, out=out)
        scratch = ws.take(key + "_sq", x.shape)
        np.square(out, out=scratch)
        var = ws.take(key + "_var", lead + (1,))
        np.matmul(scratch, mean_vec, out=var)
    var += eps
    np.sqrt(var, out=var)
    np.reciprocal(var, out=var)
    out *= var
    if weight is not None:
        out *= weight
        out += bias
    return out


def gelu_exact(x, ws, key):
    """Exact (erf) GELU in place on ``x``.  Matches the Tensor
    reference ``x/2 * (1 + erf(x/sqrt 2))`` -- the parity-grade float64
    choice."""
    scratch = ws.take(key + "0", x.shape)
    np.multiply(x, 1.0 / _SQRT_2, out=scratch)
    special.erf(scratch, out=scratch)
    scratch += 1.0
    scratch *= 0.5
    x *= scratch
    return x


def gelu_rational(x, ws, key):
    """GELU via the Abramowitz-Stegun 7.1.26 rational erf, in place.

    ``scipy.special.erf`` has no fast float32 path (its single-precision
    loop is as slow as the double one), so the float32 fast path uses
    the classic 5-term rational approximation: max absolute erf error
    1.5e-7 (float64), ~6e-7 in float32 arithmetic -- below the noise the
    float32 matmul chain already carries, and ~5x faster.  Not used for
    float64 compiles (parity-grade stays :func:`gelu_exact`).
    """
    t = ws.take(key + "0", x.shape)
    poly = ws.take(key + "1", x.shape)
    np.multiply(x, 1.0 / _SQRT_2, out=t)                  # u = x/sqrt(2)
    u = ws.take(key + "2", x.shape)
    u[...] = t
    np.abs(t, out=t)
    t *= 0.3275911
    t += 1.0
    np.reciprocal(t, out=t)                               # t = 1/(1+p|u|)
    np.multiply(t, 1.061405429, out=poly)
    poly += -1.453152027
    poly *= t
    poly += 1.421413741
    poly *= t
    poly += -0.284496736
    poly *= t
    poly += 0.254829592
    poly *= t                                             # a-poly(t)
    np.square(u, out=t)
    np.negative(t, out=t)
    np.exp(t, out=t)                                      # exp(-u^2)
    poly *= t
    np.subtract(1.0, poly, out=poly)                      # erf(|u|)
    np.copysign(poly, u, out=poly)                        # erf(u)
    poly += 1.0
    poly *= 0.5
    x *= poly
    return x


def gelu_tanh(x, ws, key):
    """Tanh-approximated GELU in place on ``x`` (the cheapest option):
    ``x/2 * (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))``.
    Max absolute deviation from exact GELU is ~1e-3, so it is opt-in
    (``compile_model(..., gelu="tanh")``) and excluded from the strict
    parity suites.
    """
    scratch = ws.take(key + "0", x.shape)
    np.square(x, out=scratch)
    scratch *= x
    scratch *= 0.044715
    scratch += x
    scratch *= _SQRT_2_OVER_PI
    np.tanh(scratch, out=scratch)
    scratch += 1.0
    scratch *= 0.5
    x *= scratch
    return x
