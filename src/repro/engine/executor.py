"""Bucketed batch executor for HeatViT's physically-pruned path.

The reference deployment path (:meth:`repro.core.HeatViT.forward_pruned`)
loops over images one at a time because adaptive pruning gives every
image its own sequence length.  This executor recovers numpy-level
vectorization while preserving those semantics exactly:

1. the **shared prefix** (patch embedding plus every block before the
   first selector) runs fully batched -- all images still have the same
   length there;
2. at each **selector boundary** images are regrouped by their exact
   ``(length, has_package)`` state and each group runs the selector as
   one batched forward (selector outputs are per-image, so this is
   bit-equivalent to the single-image calls); the kept tokens are then
   gathered per image with the same :func:`repro.core.gather` helper the
   reference path uses;
3. between boundaries, a :class:`repro.engine.bucketing.BucketingPolicy`
   merges nearby lengths into padded buckets.  Padded positions are
   masked out as attention keys, which leaves real-token activations
   unchanged (the ``-1e9`` score bias underflows to an exact ``0.0``
   attention weight), so padding buys batching without perturbing
   logits.

Two compute **backends** execute the plan:

* ``"tensor"`` (default) -- the reference float64 autograd modules under
  ``no_grad``; matches ``forward_pruned`` to within accumulated BLAS
  rounding (well under the 1e-8 parity bound enforced by
  ``tests/engine/test_engine_parity.py``).
* ``"fastpath"`` -- a :class:`repro.engine.fastpath.CompiledModel`
  running fused pure-ndarray kernels in float32 (or float64) with a
  :class:`repro.engine.fastpath.Workspace` of scratch buffers reused
  across blocks, selector stages, and bursts -- including the padded
  bucket stacks themselves, so steady traffic reallocates nothing.
  Parity: float64 within the same 1e-8 bound; float32 to ~1e-6 logits
  with identical keep decisions (``tests/engine/test_fastpath.py``).
* ``"int8"`` / ``"int16"`` -- a
  :class:`repro.engine.fastpath.QuantizedModel`: the paper's deployment
  numerics (integer GEMMs with per-channel weight scales, dynamic
  per-tensor activation quantization, polynomial GELU/softmax) as
  compiled kernels.  ``dtype=float64`` is bitwise-equal to the
  :func:`repro.quant.quantize_model` simulation; ``dtype=float32``
  (the int8 default) is the timed serving grade, gated on top-1/keep
  agreement (``tests/engine/test_quantized.py``).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor
from repro.core.gather import prune_group_sequences
from repro.engine.bucketing import BucketingPolicy, plan_buckets
from repro.engine.fastpath import (Workspace, compile_model,
                                   compile_quantized, mask_to_bias)
from repro.vit.attention import (key_padding_mask, pad_token_sequences,
                                 suppress_attention_recording)

__all__ = ["BucketedExecutor", "EngineResult", "StageStats", "BACKENDS"]

BACKENDS = ("tensor", "fastpath", "int8", "int16")


@dataclass
class StageStats:
    """Bucketing telemetry for the block run after one selector stage.

    ``wall_ms`` is the measured host wall time of the stage's block
    executions (summed over its buckets); zero unless the executor's
    cost model learns online (timing is only taken when something
    consumes it).
    """

    num_buckets: int
    bucket_sizes: list
    padded_tokens: int
    wall_ms: float = 0.0


@dataclass
class EngineResult:
    """Outcome of one bucketed batch execution.

    ``logits``: ``(B, num_classes)`` array in submission order.
    ``tokens_per_stage``: per selector stage, the ``(B,)`` array of
    per-image token counts (CLS and package included) -- identical to
    what :class:`repro.core.PruningRecord` records on the reference path.
    ``stage_stats``: one :class:`StageStats` per selector stage.
    """

    logits: np.ndarray
    tokens_per_stage: list = field(default_factory=list)
    stage_stats: list = field(default_factory=list)


class _Group:
    """A set of images executing together between selector boundaries."""

    __slots__ = ("x", "mask", "bias", "indices", "lengths", "has_package")

    def __init__(self, x, mask, bias, indices, lengths, has_package):
        self.x = x                      # (g, T, D) ndarray
        self.mask = mask                # (g, T) {0,1} ndarray or None
        self.bias = bias                # (g, T) fastpath score bias or None
        self.indices = indices          # (g,) original image indices
        self.lengths = lengths          # (g,) real sequence lengths
        self.has_package = has_package  # (g,) bool


class BucketedExecutor:
    """Runs a :class:`repro.core.HeatViT` batched with length bucketing.

    Parameters
    ----------
    model: the HeatViT model (callers should put it in ``eval()`` mode;
        :class:`repro.engine.InferenceSession` does so automatically).
    policy: a :class:`BucketingPolicy`; ``None`` uses the defaults.
    cost_model: optional :class:`repro.cost.CostModel`; when given the
        bucket planner merges on price (padding cost vs saved bucket
        launch overhead) on top of the heuristic limits.
    backend: ``"tensor"`` (reference autograd modules), ``"fastpath"``
        (compiled fused kernels; see :mod:`repro.engine.fastpath`), or
        ``"int8"``/``"int16"`` (quantized deployment kernels; see
        :func:`repro.engine.fastpath.compile_quantized`).
    dtype: fast-path compute dtype, ``float32`` (default) or
        ``float64``; the tensor backend is float64-only and the
        quantized backends default to ``float32`` for int8 (the serving
        grade) and ``float64`` for int16 (whose integer products exceed
        float32's exact window).  ``float64`` on a quantized backend is
        the bitwise simulation-parity grade.
    """

    def __init__(self, model, policy=None, cost_model=None,
                 backend="tensor", dtype=None):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"choose from {BACKENDS}")
        self.model = model
        self.policy = BucketingPolicy() if policy is None else policy
        self.cost_model = cost_model
        self.backend = backend
        if backend == "fastpath":
            self.compiled = compile_model(
                model, dtype=np.float32 if dtype is None else dtype)
            self.dtype = self.compiled.dtype
            self.workspace = Workspace(self.dtype)
        elif backend in ("int8", "int16"):
            self.compiled = compile_quantized(
                model, bits=8 if backend == "int8" else 16, dtype=dtype)
            self.dtype = self.compiled.dtype
            self.workspace = Workspace(self.dtype)
        else:
            if dtype is not None and np.dtype(dtype) != np.float64:
                raise ValueError(
                    "the tensor backend is float64-only; use "
                    "backend='fastpath' for float32 serving")
            self.compiled = None
            self.dtype = np.dtype(np.float64)
            self.workspace = None
        # Bucket plans are deterministic in (lengths, policy, cost
        # model); steady traffic repeats length distributions, so cache
        # the planner's output per distribution.  The key includes the
        # policy and the cost model's drift version: an online model
        # that has significantly refit bumps its version, invalidating
        # every cached plan at once -- stable coefficients keep stable
        # shapes cached across thousands of samples.
        self._plan_cache = {}
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        # Per-bucket wall timing is only taken when the cost model can
        # consume it (an online model refitting bucket pricing).
        self._observe_buckets = hasattr(cost_model, "observe_bucket")

    # ------------------------------------------------------------------
    def run(self, images, record=None):
        """Execute the pruned path for a batch; returns :class:`EngineResult`.

        Pass a :class:`repro.core.PruningRecord` to collect the same
        per-stage bookkeeping ``forward_pruned`` fills in.
        """
        model = self.model
        images = np.asarray(images.data if isinstance(images, Tensor)
                            else images)
        batch = images.shape[0]
        result = EngineResult(
            logits=np.zeros((batch, model.config.num_classes)))
        if batch == 0:
            return result
        selector_pos = {b: i for i, b in enumerate(model.selector_blocks)}
        # Attention recording only feeds the masked training path's
        # ranking signal; in the serving hot path it would copy a
        # (g, h, T, T) tensor per block per bucket for nothing.  The
        # fast path never touches the Tensor modules at all.
        recording_off = (suppress_attention_recording(
            block.attn for block in model.backbone.blocks)
            if self.backend == "tensor" else nullcontext())
        observe = self._observe_buckets
        with recording_off, nn.no_grad():
            x = self._embed(images)                       # (B, 1+N, D)
            groups = [_Group(x, None, None, np.arange(batch),
                             np.full(batch, x.shape[1]),
                             np.zeros(batch, dtype=bool))]
            segment = self._segment_start(groups) if observe else None
            for block_index, block in enumerate(model.backbone.blocks):
                if block_index in selector_pos:
                    if observe:
                        self._segment_flush(segment)
                    groups = self._apply_selector(
                        selector_pos[block_index], groups, batch, result)
                    if observe:
                        segment = self._segment_start(
                            groups, result.stage_stats[-1])
                if observe:
                    # Timed variant of the block sweep below: per-bucket
                    # wall time is the online cost model's bucket-pricing
                    # signal.  _run_block mutates the group in place.
                    for row, group in enumerate(groups):
                        tick = time.perf_counter()
                        self._run_block(block_index, group)
                        segment["walls"][row] += time.perf_counter() - tick
                    segment["blocks"] += 1
                else:
                    groups = [self._run_block(block_index, group)
                              for group in groups]
            if observe:
                self._segment_flush(segment)
            for group in groups:
                result.logits[group.indices] = self._classify(group.x)
        if record is not None:
            model.finalize_pruned_record(record, result.tokens_per_stage)
        return result

    # ------------------------------------------------------------------
    def run_grouped(self, image_groups, record=None):
        """Execute several pre-grouped image sets as ONE bucketed batch.

        The serving scheduler's continuous re-bucketing entry point:
        ``image_groups`` is a list of ``(n_i, C, H, W)`` arrays -- e.g.
        the remainder requests carried over from a previous partially
        filled batch plus the newly arrived ones -- and the whole set is
        re-bucketed and executed together.  Because every image's
        compute is independent of its batch neighbours (batched matmuls
        are per-slice and padded keys carry an exactly-zero attention
        weight), each group's logits are bitwise identical to submitting
        that group on its own.

        Returns ``(EngineResult, slices)`` where ``slices[i]`` selects
        group ``i``'s rows in the merged, submission-ordered result.
        """
        image_groups = [np.asarray(g.data if isinstance(g, Tensor) else g)
                        for g in image_groups]
        slices, offset = [], 0
        for group in image_groups:
            slices.append(slice(offset, offset + group.shape[0]))
            offset += group.shape[0]
        non_empty = [g for g in image_groups if g.shape[0]]
        if not non_empty:
            empty = np.zeros((0, self.model.config.num_classes))
            return EngineResult(logits=empty), slices
        images = (non_empty[0] if len(non_empty) == 1
                  else np.concatenate(non_empty, axis=0))
        return self.run(images, record=record), slices

    # ------------------------------------------------------------------
    # Per-bucket wall timing (the online cost model's bucket signal)
    # ------------------------------------------------------------------
    def _segment_start(self, groups, stats=None):
        """Open one timing segment: the stretch of blocks between two
        selector boundaries, over a fixed set of bucket groups.  Shapes
        are captured now because groups mutate in place as blocks run."""
        return {
            "shapes": [(int(group.x.shape[1]), int(group.indices.size))
                       for group in groups],
            "walls": [0.0] * len(groups),
            "blocks": 0,
            "stats": stats,
        }

    def _segment_flush(self, segment):
        """Close a segment: feed each bucket's measured wall time to
        the online cost model and stamp the stage's telemetry."""
        if segment is None or segment["blocks"] == 0:
            return
        total_ms = 0.0
        for (padded_length, num_images), wall_s in zip(segment["shapes"],
                                                       segment["walls"]):
            wall_ms = wall_s * 1e3
            total_ms += wall_ms
            self.cost_model.observe_bucket(
                padded_length, num_images, segment["blocks"], wall_ms)
        if segment["stats"] is not None:
            segment["stats"].wall_ms = total_ms

    # ------------------------------------------------------------------
    # Backend dispatch
    # ------------------------------------------------------------------
    def _embed(self, images):
        if self.compiled is not None:
            return self.compiled.embed(images, self.workspace)
        return self.model.backbone.embed(images).data

    def _run_block(self, block_index, group):
        if self.compiled is not None:
            self.compiled.run_block(block_index, group.x, group.bias,
                                    self.workspace)
            return group
        block = self.model.backbone.blocks[block_index]
        out = block(Tensor(group.x), key_mask=group.mask)
        group.x = out.data
        return group

    def _selector_eval(self, selector_index, patches):
        """Evaluate selector ``selector_index`` on dense ``(g, N, D)``
        patches; returns ``(keep_bool, packages)``."""
        if self.compiled is not None:
            return self.compiled.select(selector_index, patches,
                                        self.workspace)
        selector = self.model.selectors[selector_index]
        out = selector(Tensor(patches), hard=False)
        # The selector's internal guard ensures >= 1 keep.
        keep = out.decision.data > 0.5                    # (g, N)
        return keep, out.package.data[:, 0, :]            # (g, D)

    def _evaluate_selector(self, selector_index, exacts):
        """Score every exact group at one boundary; returns one
        ``(keep, packages)`` pair per group.

        On the fast path all groups run as ONE ragged kernel pipeline
        (per-token math identical to the dense per-group evaluation;
        see :meth:`CompiledSelector.select_ragged`) -- the boundary cost
        no longer scales with the number of distinct sequence lengths.
        This includes hybrid-fallback (non-stock classifier) selectors,
        whose classifier module is scored once per distinct length
        inside the pipeline.  The tensor backend -- and any compiled
        model that opts out via ``supports_ragged`` (the quantized
        parity grade scores through surgered selector modules) --
        evaluates per group.
        """
        if (self.compiled is not None
                and getattr(self.compiled, "supports_ragged", True)):
            dim = self.model.config.embed_dim
            patches, counts = [], []
            for x, indices, packaged in exacts:
                stop = x.shape[1] - (1 if packaged else 0)
                patches.append(np.ascontiguousarray(
                    x[:, 1:stop, :]).reshape(-1, dim))
                counts.extend([stop - 1] * x.shape[0])
            flat = np.concatenate(patches, axis=0)
            keep_flat, packages = self.compiled.select_ragged(
                selector_index, flat, counts, self.workspace)
            decisions, token_lo, image_lo = [], 0, 0
            for x, indices, packaged in exacts:
                g = x.shape[0]
                n = x.shape[1] - (2 if packaged else 1)
                token_hi = token_lo + g * n
                decisions.append(
                    (keep_flat[token_lo:token_hi].reshape(g, n),
                     packages[image_lo:image_lo + g]))
                token_lo, image_lo = token_hi, image_lo + g
            return decisions
        decisions = []
        for x, indices, packaged in exacts:
            stop = x.shape[1] - (1 if packaged else 0)
            decisions.append(self._selector_eval(selector_index,
                                                 x[:, 1:stop, :]))
        return decisions

    def _classify(self, x):
        if self.compiled is not None:
            return self.compiled.classify(x, self.workspace)
        return self.model.backbone.classify(Tensor(x)).data

    def _stack_bucket(self, members, plan):
        """Stack a planned bucket's sequences, padding if needed.

        Returns ``(stacked, mask, bias)``.  On the fast path the stack
        lives in the workspace pool, so recurring bucket shapes across
        stages and bursts reuse the same memory instead of reallocating
        per pad.
        """
        if self.compiled is not None:
            dim = members[0].shape[-1]
            stacked = self.workspace.take(
                "bucket", (len(members), plan.padded_length, dim))
            if plan.needs_padding:
                stacked.fill(0.0)
            for row, seq in enumerate(members):
                stacked[row, :seq.shape[0]] = seq
            if not plan.needs_padding:
                return stacked, None, None
            mask = key_padding_mask(plan.lengths, plan.padded_length,
                                    dtype=self.dtype)
            bias = mask_to_bias(
                mask, self.dtype,
                out=self.workspace.take("bucket_bias", mask.shape))
            return stacked, mask, bias
        if plan.needs_padding:
            stacked, mask = pad_token_sequences(members, plan.padded_length)
            return stacked, mask, None
        return np.stack(members, axis=0), None, None

    # ------------------------------------------------------------------
    def _apply_selector(self, selector_index, groups, batch, result):
        """Selector boundary: regather every image, then re-bucket."""
        sequences = [None] * batch
        has_package = np.zeros(batch, dtype=bool)
        stage_counts = np.zeros(batch, dtype=int)
        exacts = list(self._split_exact(groups))
        decisions = self._evaluate_selector(selector_index, exacts)
        for (x, indices, packaged), (keep, packages) in zip(exacts,
                                                            decisions):
            gathered, flags = prune_group_sequences(
                x, keep, use_packager=self.model.use_packager,
                has_package=packaged, packages=packages)
            for row, image in enumerate(indices):
                sequences[image] = gathered[row]
                has_package[image] = flags[row]
                stage_counts[image] = gathered[row].shape[0]
        result.tokens_per_stage.append(stage_counts)
        lengths = np.array([s.shape[0] for s in sequences])
        cache_key = (self.policy,
                     getattr(self.cost_model, "version", None),
                     lengths.tobytes())
        plans = self._plan_cache.get(cache_key)
        if plans is None:
            self.plan_cache_misses += 1
            plans = plan_buckets(lengths, self.policy,
                                 cost_model=self.cost_model)
            if len(self._plan_cache) >= 256:       # bound the cache
                self._plan_cache.pop(next(iter(self._plan_cache)))
            self._plan_cache[cache_key] = plans
        else:
            self.plan_cache_hits += 1
        result.stage_stats.append(StageStats(
            num_buckets=len(plans),
            bucket_sizes=[int(p.indices.size) for p in plans],
            padded_tokens=sum(p.padded_tokens for p in plans)))
        new_groups = []
        for plan in plans:
            members = [sequences[i] for i in plan.indices]
            stacked, mask, bias = self._stack_bucket(members, plan)
            new_groups.append(_Group(stacked, mask, bias, plan.indices,
                                     plan.lengths.copy(),
                                     has_package[plan.indices]))
        return new_groups

    @staticmethod
    def _split_exact(groups):
        """Break padded groups into exact ``(length, has_package)`` sets.

        Selector evaluations must see only real tokens (its global
        pooling averages over every token it is given), so padding is
        stripped before the boundary.  Yields ``(x, indices,
        has_package)`` with ``x`` dense ``(g, T, D)``.

        The shared-prefix boundary (one unpadded group, uniform length
        and package state -- every first selector hits this) is passed
        through without the per-row re-pooling copy.
        """
        if len(groups) == 1 and groups[0].mask is None:
            group = groups[0]
            uniform = (group.lengths[0] == group.lengths).all()
            if uniform and (group.has_package[0] == group.has_package).all():
                yield (group.x, group.indices,
                       bool(group.has_package[0]))
                return
        pools = {}
        for group in groups:
            for row in range(group.indices.size):
                length = int(group.lengths[row])
                key = (length, bool(group.has_package[row]))
                pools.setdefault(key, ([], []))
                pools[key][0].append(group.x[row, :length])
                pools[key][1].append(int(group.indices[row]))
        for (length, packaged), (seqs, indices) in sorted(pools.items()):
            yield (np.stack(seqs, axis=0), np.asarray(indices), packaged)
