"""Bucketed batch executor for HeatViT's physically-pruned path.

The reference deployment path (:meth:`repro.core.HeatViT.forward_pruned`)
loops over images one at a time because adaptive pruning gives every
image its own sequence length.  This executor recovers numpy-level
vectorization while preserving those semantics exactly:

1. the **shared prefix** (patch embedding plus every block before the
   first selector) runs fully batched -- all images still have the same
   length there;
2. at each **selector boundary** images are regrouped by their exact
   ``(length, has_package)`` state and each group runs the selector as
   one batched forward (selector outputs are per-image, so this is
   bit-equivalent to the single-image calls); the kept tokens are then
   gathered per image with the same :func:`repro.core.gather` helper the
   reference path uses;
3. between boundaries, a :class:`repro.engine.bucketing.BucketingPolicy`
   merges nearby lengths into padded buckets.  Padded positions are
   masked out as attention keys, which leaves real-token activations
   unchanged (the ``-1e9`` score bias underflows to an exact ``0.0``
   attention weight), so padding buys batching without perturbing
   logits.

The result matches ``forward_pruned`` to within accumulated BLAS
rounding (well under the 1e-8 parity bound enforced by
``tests/engine/test_engine_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor
from repro.core.gather import prune_image_sequence
from repro.engine.bucketing import BucketingPolicy, plan_buckets
from repro.vit.attention import pad_token_sequences

__all__ = ["BucketedExecutor", "EngineResult", "StageStats"]


@dataclass
class StageStats:
    """Bucketing telemetry for the block run after one selector stage."""

    num_buckets: int
    bucket_sizes: list
    padded_tokens: int


@dataclass
class EngineResult:
    """Outcome of one bucketed batch execution.

    ``logits``: ``(B, num_classes)`` array in submission order.
    ``tokens_per_stage``: per selector stage, the ``(B,)`` array of
    per-image token counts (CLS and package included) -- identical to
    what :class:`repro.core.PruningRecord` records on the reference path.
    ``stage_stats``: one :class:`StageStats` per selector stage.
    """

    logits: np.ndarray
    tokens_per_stage: list = field(default_factory=list)
    stage_stats: list = field(default_factory=list)


class _Group:
    """A set of images executing together between selector boundaries."""

    __slots__ = ("x", "mask", "indices", "lengths", "has_package")

    def __init__(self, x, mask, indices, lengths, has_package):
        self.x = x                      # (g, T, D) ndarray
        self.mask = mask                # (g, T) {0,1} ndarray or None
        self.indices = indices          # (g,) original image indices
        self.lengths = lengths          # (g,) real sequence lengths
        self.has_package = has_package  # (g,) bool


class BucketedExecutor:
    """Runs a :class:`repro.core.HeatViT` batched with length bucketing.

    Parameters
    ----------
    model: the HeatViT model (callers should put it in ``eval()`` mode;
        :class:`repro.engine.InferenceSession` does so automatically).
    policy: a :class:`BucketingPolicy`; ``None`` uses the defaults.
    cost_model: optional :class:`repro.cost.CostModel`; when given the
        bucket planner merges on price (padding cost vs saved bucket
        launch overhead) on top of the heuristic limits.
    """

    def __init__(self, model, policy=None, cost_model=None):
        self.model = model
        self.policy = BucketingPolicy() if policy is None else policy
        self.cost_model = cost_model

    # ------------------------------------------------------------------
    def run(self, images, record=None):
        """Execute the pruned path for a batch; returns :class:`EngineResult`.

        Pass a :class:`repro.core.PruningRecord` to collect the same
        per-stage bookkeeping ``forward_pruned`` fills in.
        """
        model = self.model
        images = np.asarray(images.data if isinstance(images, Tensor)
                            else images)
        batch = images.shape[0]
        result = EngineResult(
            logits=np.zeros((batch, model.config.num_classes)))
        if batch == 0:
            return result
        selector_pos = {b: i for i, b in enumerate(model.selector_blocks)}
        # Attention recording only feeds the masked training path's
        # ranking signal; in the serving hot path it would copy a
        # (g, h, T, T) tensor per block per bucket for nothing.
        attn_modules = [block.attn for block in model.backbone.blocks]
        recording = [m.record_attention for m in attn_modules]
        for module in attn_modules:
            module.record_attention = False
        try:
            with nn.no_grad():
                x = model.backbone.embed(images).data     # (B, 1+N, D)
                groups = [_Group(x, None, np.arange(batch),
                                 np.full(batch, x.shape[1]),
                                 np.zeros(batch, dtype=bool))]
                for block_index, block in enumerate(model.backbone.blocks):
                    if block_index in selector_pos:
                        selector = model.selectors[selector_pos[block_index]]
                        groups = self._apply_selector(selector, groups,
                                                      batch, result)
                    groups = [self._run_block(block, group)
                              for group in groups]
                for group in groups:
                    logits = model.backbone.classify(Tensor(group.x))
                    result.logits[group.indices] = logits.data
        finally:
            for module, was_recording in zip(attn_modules, recording):
                module.record_attention = was_recording
        if record is not None:
            model.finalize_pruned_record(record, result.tokens_per_stage)
        return result

    # ------------------------------------------------------------------
    def run_grouped(self, image_groups, record=None):
        """Execute several pre-grouped image sets as ONE bucketed batch.

        The serving scheduler's continuous re-bucketing entry point:
        ``image_groups`` is a list of ``(n_i, C, H, W)`` arrays -- e.g.
        the remainder requests carried over from a previous partially
        filled batch plus the newly arrived ones -- and the whole set is
        re-bucketed and executed together.  Because every image's
        compute is independent of its batch neighbours (batched matmuls
        are per-slice and padded keys carry an exactly-zero attention
        weight), each group's logits are bitwise identical to submitting
        that group on its own.

        Returns ``(EngineResult, slices)`` where ``slices[i]`` selects
        group ``i``'s rows in the merged, submission-ordered result.
        """
        image_groups = [np.asarray(g.data if isinstance(g, Tensor) else g)
                        for g in image_groups]
        slices, offset = [], 0
        for group in image_groups:
            slices.append(slice(offset, offset + group.shape[0]))
            offset += group.shape[0]
        non_empty = [g for g in image_groups if g.shape[0]]
        if not non_empty:
            empty = np.zeros((0, self.model.config.num_classes))
            return EngineResult(logits=empty), slices
        images = (non_empty[0] if len(non_empty) == 1
                  else np.concatenate(non_empty, axis=0))
        return self.run(images, record=record), slices

    # ------------------------------------------------------------------
    @staticmethod
    def _run_block(block, group):
        out = block(Tensor(group.x), key_mask=group.mask)
        group.x = out.data
        return group

    def _apply_selector(self, selector, groups, batch, result):
        """Selector boundary: regather every image, then re-bucket."""
        sequences = [None] * batch
        has_package = np.zeros(batch, dtype=bool)
        stage_counts = np.zeros(batch, dtype=int)
        for exact in self._split_exact(groups):
            self._select_and_gather(selector, exact, sequences,
                                    has_package, stage_counts)
        result.tokens_per_stage.append(stage_counts)
        lengths = np.array([s.shape[0] for s in sequences])
        plans = plan_buckets(lengths, self.policy,
                             cost_model=self.cost_model)
        result.stage_stats.append(StageStats(
            num_buckets=len(plans),
            bucket_sizes=[int(p.indices.size) for p in plans],
            padded_tokens=sum(p.padded_tokens for p in plans)))
        new_groups = []
        for plan in plans:
            members = [sequences[i] for i in plan.indices]
            if plan.needs_padding:
                stacked, mask = pad_token_sequences(members,
                                                    plan.padded_length)
            else:
                stacked, mask = np.stack(members, axis=0), None
            new_groups.append(_Group(stacked, mask, plan.indices,
                                     plan.lengths.copy(),
                                     has_package[plan.indices]))
        return new_groups

    @staticmethod
    def _split_exact(groups):
        """Break padded groups into exact ``(length, has_package)`` sets.

        Selector evaluations must see only real tokens (its global
        pooling averages over every token it is given), so padding is
        stripped before the boundary.  Yields ``(x, indices,
        has_package)`` with ``x`` dense ``(g, T, D)``.
        """
        pools = {}
        for group in groups:
            for row in range(group.indices.size):
                length = int(group.lengths[row])
                key = (length, bool(group.has_package[row]))
                pools.setdefault(key, ([], []))
                pools[key][0].append(group.x[row, :length])
                pools[key][1].append(int(group.indices[row]))
        for (length, packaged), (seqs, indices) in sorted(pools.items()):
            yield (np.stack(seqs, axis=0), np.asarray(indices), packaged)

    def _select_and_gather(self, selector, exact, sequences, has_package,
                           stage_counts):
        x, indices, packaged = exact
        stop = x.shape[1] - (1 if packaged else 0)
        out = selector(Tensor(x[:, 1:stop, :]), hard=False)
        keep = out.decision.data > 0.5                    # (g, N)
        packages = out.package.data[:, 0, :]              # (g, D)
        use_packager = self.model.use_packager
        for row, image in enumerate(indices):
            sequence, new_packaged = prune_image_sequence(
                x[row], keep[row], use_packager=use_packager,
                has_package=packaged, package=packages[row])
            sequences[image] = sequence
            has_package[image] = new_packaged
            stage_counts[image] = sequence.shape[0]
