"""Batched bucketed inference engine for the deployed (pruned) path.

Serves HeatViT's image-adaptive token pruning with numpy-level
vectorization: the shared prefix runs fully batched, then images are
length-bucketed at every selector boundary (see
:mod:`repro.engine.bucketing`) so each bucket executes as one vectorized
forward instead of B single-image forwards.  Logits match the reference
:meth:`repro.core.HeatViT.forward_pruned` loop to within 1e-8.

Per-batch compute runs on one of several backends selected via
``InferenceSession(model, backend=...)``: the float64 autograd
``"tensor"`` reference, the compiled graph-free ``"fastpath"``
(:mod:`repro.engine.fastpath`: fused float32/float64 kernels plus
workspace buffer reuse), or the quantized ``"int8"``/``"int16"``
deployment numerics (integer GEMMs with float rescale, polynomial
GELU/softmax; bitwise equal to the :func:`repro.quant.quantize_model`
simulation on the float64 grade).
"""

from repro.engine.bucketing import (BucketingPolicy, BucketPlan,
                                    group_exact, pack_groups, plan_buckets,
                                    plan_cost_ms)
from repro.engine.executor import (BACKENDS, BucketedExecutor, EngineResult,
                                   StageStats)
from repro.engine.fastpath import (CompiledModel, CompileError,
                                   QuantizedModel, Workspace, compile_model,
                                   compile_quantized)
from repro.engine.session import InferenceSession, SessionResult
from repro.engine.spec import SessionSpec, SpecError

__all__ = [
    "BucketingPolicy", "BucketPlan", "plan_buckets", "plan_cost_ms",
    "group_exact", "pack_groups",
    "BACKENDS", "BucketedExecutor", "EngineResult", "StageStats",
    "InferenceSession", "SessionResult",
    "SessionSpec", "SpecError",
    "compile_model", "CompiledModel", "CompileError", "Workspace",
    "compile_quantized", "QuantizedModel",
]
