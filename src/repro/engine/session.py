"""High-level serving API over the bucketed executor.

An :class:`InferenceSession` owns a model in eval mode plus a bucketing
policy, chops submitted image sets into ``batch_size`` chunks, runs each
chunk through :class:`repro.engine.BucketedExecutor`, and reports
logits, per-stage token counts, a per-image latency estimate from the
paper's latency-sparsity table (Eq. 18), and measured throughput.

Typical use::

    session = InferenceSession(model, batch_size=32)
    result = session.submit(images)
    result.logits            # (B, num_classes)
    result.latency_ms        # (B,) estimated accelerator latency
    result.images_per_second # measured host throughput
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.latency import (LatencySparsityTable,
                                latency_from_stage_counts,
                                paper_latency_table)
from repro.engine.bucketing import BucketingPolicy
from repro.engine.executor import BucketedExecutor

__all__ = ["InferenceSession", "SessionResult"]


@dataclass
class SessionResult:
    """Everything one ``submit`` call produced.

    ``tokens_per_stage`` holds one ``(B,)`` array of per-image token
    counts per selector stage (CLS and package included), concatenated
    across chunks in submission order.  ``latency_ms`` is the Eq. 18
    table estimate of per-image accelerator latency; ``wall_time_s`` and
    ``images_per_second`` measure the host-side batched execution.
    """

    logits: np.ndarray
    tokens_per_stage: list = field(default_factory=list)
    latency_ms: np.ndarray = None
    wall_time_s: float = 0.0
    images_per_second: float = 0.0
    stage_stats: list = field(default_factory=list)

    @property
    def predictions(self):
        return self.logits.argmax(axis=-1)


class InferenceSession:
    """Batched serving front-end for a HeatViT model.

    Parameters
    ----------
    model: a :class:`repro.core.HeatViT`.  Each ``submit`` runs it in
        ``eval()`` mode (deterministic decisions, no dropout) and
        restores the previous mode afterwards, so a session can safely
        share a model with a training loop.
    batch_size: maximum images per executor invocation.
    policy: bucketing policy (see :class:`BucketingPolicy`); ``None``
        uses the defaults, ``BucketingPolicy(allow_padding=False)``
        disables padding merges.
    latency_table: a :class:`LatencySparsityTable` for the per-image
        latency estimate; defaults to the paper's measured DeiT-T
        Table IV.  Pass ``None``-able custom tables built from the FPGA
        simulator via :func:`repro.hardware.latency_table.build_latency_table`.
    """

    def __init__(self, model, batch_size=32, policy=None,
                 latency_table=None):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.model = model
        self.batch_size = int(batch_size)
        self.policy = BucketingPolicy() if policy is None else policy
        self.executor = BucketedExecutor(model, self.policy)
        if latency_table is None:
            latency_table = paper_latency_table("DeiT-T")
        if not isinstance(latency_table, LatencySparsityTable):
            raise TypeError("latency_table must be a LatencySparsityTable")
        self.latency_table = latency_table

    # ------------------------------------------------------------------
    def submit(self, images, record=None):
        """Run a set of images; returns a :class:`SessionResult`.

        ``images`` is ``(B, C, H, W)``; the call blocks until all
        ``ceil(B / batch_size)`` executor chunks complete.  Pass a
        :class:`repro.core.PruningRecord` to additionally collect the
        reference-path bookkeeping (counts across the *whole* submission).
        """
        images = np.asarray(images)
        batch = images.shape[0]
        was_training = self.model.training
        if was_training:
            self.model.eval()
        start = time.perf_counter()
        try:
            chunk_results = [
                self.executor.run(images[lo:lo + self.batch_size])
                for lo in range(0, batch, self.batch_size)]
            if not chunk_results:        # empty submission: typed result
                chunk_results = [self.executor.run(images)]
        finally:
            if was_training:
                self.model.train()
        elapsed = time.perf_counter() - start
        result = self._merge(chunk_results, batch, elapsed)
        if record is not None and result.tokens_per_stage:
            self.model.finalize_pruned_record(record,
                                              result.tokens_per_stage)
        return result

    def _merge(self, chunk_results, batch, elapsed):
        logits = np.concatenate([r.logits for r in chunk_results], axis=0)
        num_stages = (len(chunk_results[0].tokens_per_stage)
                      if chunk_results else 0)
        tokens_per_stage = [
            np.concatenate([r.tokens_per_stage[stage]
                            for r in chunk_results])
            for stage in range(num_stages)]
        stage_stats = [stats for r in chunk_results for stats in
                       r.stage_stats]
        config = self.model.config
        latency = latency_from_stage_counts(
            self.latency_table, config.depth, self.model.selector_blocks,
            tokens_per_stage, config.num_patches,
            extra=self.model.non_patch_slots) if num_stages else (
                np.full(batch, self.latency_table.model_latency(
                    [1.0] * config.depth)))
        return SessionResult(
            logits=logits, tokens_per_stage=tokens_per_stage,
            latency_ms=latency, wall_time_s=elapsed,
            images_per_second=(batch / elapsed if elapsed > 0 else
                               float("inf")),
            stage_stats=stage_stats)
