"""High-level serving API over the bucketed executor.

An :class:`InferenceSession` owns a model in eval mode plus a bucketing
policy, chops submitted image sets into ``batch_size`` chunks, runs each
chunk through :class:`repro.engine.BucketedExecutor`, and reports
logits, per-stage token counts, a per-image latency estimate from the
paper's latency-sparsity table (Eq. 18), and measured throughput.

Typical use::

    session = InferenceSession(model, batch_size=32)
    result = session.submit(images)
    result.logits            # (B, num_classes)
    result.latency_ms        # (B,) estimated accelerator latency
    result.images_per_second # measured host throughput

Batch pricing flows through the session's
:class:`repro.cost.CostModel`: :meth:`estimated_batch_cost` /
:meth:`estimated_batch_latency_ms` price an n-image submission
including the per-batch overhead (the scheduler's flush and routing
decisions consume these), and the same model drives the executor's
cost-aware bucket merging.  By default a calibrated model is built from
the FPGA simulator for the served config.

``submit_many`` is the grouped variant the request scheduler
(:mod:`repro.serving`) uses: it takes a list of per-request image
arrays -- including remainders carried over from a previous partially
filled batch -- and returns one merged result plus per-request slices.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.latency import LatencySparsityTable
from repro.cost import (BatchPlan, CostModel, OnlineCostModel,
                        keep_ratio_bucket)
from repro.engine.bucketing import BucketingPolicy, pack_groups
from repro.engine.executor import BucketedExecutor
from repro.hardware.latency_table import build_cost_model
from repro.nn.tensor import Tensor

__all__ = ["InferenceSession", "SessionResult"]


def _empty_latency():
    return np.zeros(0, dtype=np.float64)


@dataclass
class SessionResult:
    """Everything one ``submit`` call produced.

    ``tokens_per_stage`` holds one ``(B,)`` array of per-image token
    counts per selector stage (CLS and package included), concatenated
    across chunks in submission order.  ``latency_ms`` is always a
    well-formed ``(B,)`` float array -- the Eq. 18 table estimate of
    per-image accelerator latency (empty for an empty submission, never
    ``None``); ``wall_time_s`` and ``images_per_second`` measure the
    host-side batched execution.
    """

    logits: np.ndarray
    tokens_per_stage: list = field(default_factory=list)
    latency_ms: np.ndarray = field(default_factory=_empty_latency)
    wall_time_s: float = 0.0
    images_per_second: float = 0.0
    stage_stats: list = field(default_factory=list)

    @property
    def predictions(self):
        return self.logits.argmax(axis=-1)


class InferenceSession:
    """Batched serving front-end for a HeatViT model.

    Parameters
    ----------
    model: a :class:`repro.core.HeatViT`.  Each ``submit`` runs it in
        ``eval()`` mode (deterministic decisions, no dropout) and
        restores the previous mode afterwards, so a session can safely
        share a model with a training loop.
    batch_size: maximum images per executor invocation.
    policy: bucketing policy (see :class:`BucketingPolicy`); ``None``
        uses the defaults, ``BucketingPolicy(allow_padding=False)``
        disables padding merges.
    cost_model: a :class:`repro.cost.CostModel` pricing this session's
        batches.  ``None`` calibrates one from the FPGA simulator for
        *this model's config* via
        :func:`repro.hardware.latency_table.build_cost_model`; pass
        :func:`repro.cost.paper_cost_model` output for the paper's
        measured Table IV as a zero-overhead instance.
    latency_table: legacy alternative to ``cost_model`` -- a bare
        :class:`LatencySparsityTable`, wrapped as a zero-overhead cost
        model (exactly the old ``n * per_image`` pricing).  Mutually
        exclusive with ``cost_model``.
    backend: ``"tensor"`` (default; the float64 autograd reference
        modules under ``no_grad``) or ``"fastpath"`` (compiled fused
        ndarray kernels with workspace buffer reuse -- see
        :mod:`repro.engine.fastpath`).  Fast-path float64 matches the
        tensor backend within the engine's 1e-8 parity bound; float32
        (the fast-path default) trades ~1e-6-level logits for speed
        while keeping identical token-keep decisions.
    dtype: fast-path compute dtype (``float32`` default / ``float64``);
        only valid with ``backend="fastpath"``.
    learn_cost: wrap the resolved cost model in a
        :class:`repro.cost.OnlineCostModel` so the session refits batch
        pricing from its own measured wall times.  Passing an
        ``OnlineCostModel`` as ``cost_model`` enables learning the same
        way (and preserves any state it already carries -- the worker
        rebuild path); ``learn_cost=True`` is then a no-op.
    """

    def __init__(self, model, batch_size=32, policy=None,
                 cost_model=None, latency_table=None,
                 backend="tensor", dtype=None, learn_cost=False):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if cost_model is not None and latency_table is not None:
            raise ValueError(
                "pass at most one of cost_model= or latency_table=")
        self.model = model
        self.batch_size = int(batch_size)
        self.policy = BucketingPolicy() if policy is None else policy
        if cost_model is None:
            if latency_table is None:
                cost_model = build_cost_model(
                    model.config, extra_tokens=model.non_patch_slots)
            else:
                if not isinstance(latency_table, LatencySparsityTable):
                    raise TypeError(
                        "latency_table must be a LatencySparsityTable")
                cost_model = CostModel.zero_overhead(
                    latency_table, num_patches=model.config.num_patches,
                    extra_tokens=model.non_patch_slots,
                    name=f"table-{model.config.name}")
        if not isinstance(cost_model, CostModel):
            raise TypeError("cost_model must be a repro.cost.CostModel")
        if learn_cost and not isinstance(cost_model, OnlineCostModel):
            cost_model = OnlineCostModel(cost_model)
        self.cost_model = cost_model
        self.learns_cost = isinstance(cost_model, OnlineCostModel)
        self.executor = BucketedExecutor(model, self.policy,
                                         cost_model=cost_model,
                                         backend=backend, dtype=dtype)
        self.backend = self.executor.backend
        self.dtype = self.executor.dtype
        self._estimated_latency = None
        self._estimate_version = None
        if self.learns_cost:
            self._bind_cost_key()

    def _bind_cost_key(self):
        """Point the online cost model at this session's operating
        point: one (backend, dtype, keep-ratio bucket) key learns one
        batch law.  Re-bound whenever the keep ratios retune."""
        self.cost_model.bind((self.backend, self.dtype.name,
                              keep_ratio_bucket(self.model.keep_ratios)))

    @property
    def latency_table(self):
        """The cost model's marginal Eq. 18 table (legacy accessor)."""
        return self.cost_model.table

    # ------------------------------------------------------------------
    @property
    def marginal_image_ms(self):
        """Marginal (per-image) whole-model cost at the configured
        operating point (the model's target keep ratios) -- the
        ``per_image_ms`` term of every batch priced for this session.
        Cached against the model's ``keep_ratios_version``, so retuning
        through ``set_keep_ratios`` invalidates automatically; only
        direct ``selector.keep_ratio`` assignment needs an explicit
        :meth:`invalidate_estimate`.
        """
        version = getattr(self.model, "keep_ratios_version", None)
        if (self._estimated_latency is None
                or self._estimate_version != version):
            config = self.model.config
            self._estimated_latency = self.cost_model.image_ms(
                config.depth, self.model.selector_blocks,
                self.model.keep_ratios)
            self._estimate_version = version
            if self.learns_cost:
                self._bind_cost_key()
        return self._estimated_latency

    def estimated_batch_cost(self, num_images):
        """Price an ``num_images``-image submission on this session.

        Returns the :class:`repro.cost.BatchCost` for executing the
        images at the configured operating point, including one
        per-batch overhead for every ``batch_size`` executor chunk the
        submission is chopped into.  This is what the scheduler's
        budget/deadline flushes and the routers' feasibility math
        consume.
        """
        if num_images < 0:
            raise ValueError("num_images must be >= 0")
        num_batches = math.ceil(num_images / self.batch_size)
        return self.cost_model.estimate(BatchPlan(
            num_images=int(num_images),
            per_image_ms=self.marginal_image_ms,
            num_batches=num_batches))

    def estimated_batch_latency_ms(self, sizes):
        """Total estimated latency (ms) of one submission.

        ``sizes`` is either an image count or a sequence of per-request
        group sizes (as passed to :meth:`submit_many`); the groups share
        the batch overheads of the chunks they pack into.
        """
        num_images = (int(sizes) if np.isscalar(sizes)
                      else int(sum(int(s) for s in sizes)))
        return self.estimated_batch_cost(num_images).total_ms

    def invalidate_estimate(self):
        self._estimated_latency = None

    def spec(self, metadata=None):
        """Describe this session as a spawn-safe
        :class:`repro.engine.SessionSpec` (config + weights + knobs) a
        worker process can rebuild bit-for-bit.  Raises
        :class:`repro.engine.SpecError` for models a config + weights
        rebuild cannot reproduce (custom selector classifiers)."""
        from repro.engine.spec import SessionSpec
        return SessionSpec.from_session(self, metadata=metadata)

    # ------------------------------------------------------------------
    def submit(self, images, record=None):
        """Run a set of images; returns a :class:`SessionResult`.

        ``images`` is ``(B, C, H, W)``; the call blocks until all
        ``ceil(B / batch_size)`` executor chunks complete.  Pass a
        :class:`repro.core.PruningRecord` to additionally collect the
        reference-path bookkeeping (counts across the *whole* submission).
        """
        result, _ = self.submit_many([images], record=record)
        return result

    def submit_many(self, image_groups, record=None):
        """Run several pre-grouped image sets as one submission.

        ``image_groups`` is a list of ``(n_i, C, H, W)`` arrays -- one
        per request, in submission order; groups are packed into
        ``batch_size`` executor chunks with :func:`pack_groups` (chunk
        boundaries fall exactly where :meth:`submit` would slice the
        concatenation, so grouped and flat submission are
        bitwise-equivalent).  Returns ``(SessionResult, slices)`` where
        ``slices[i]`` selects group ``i``'s rows in the merged result.
        """
        groups = [np.asarray(g.data if isinstance(g, Tensor) else g)
                  for g in image_groups]
        sizes = [g.shape[0] for g in groups]
        slices, offset = [], 0
        for size in sizes:
            slices.append(slice(offset, offset + size))
            offset += size
        batch = offset
        was_training = self.model.training
        if was_training:
            self.model.eval()
        start = time.perf_counter()
        try:
            chunk_results = []
            for chunk in pack_groups(sizes, self.batch_size):
                pieces = [groups[index][lo:hi] for index, lo, hi in chunk]
                chunk_result, _ = self.executor.run_grouped(pieces)
                chunk_results.append(chunk_result)
            if not chunk_results:        # empty submission: typed result
                chunk_result, _ = self.executor.run_grouped(groups)
                chunk_results = [chunk_result]
        finally:
            if was_training:
                self.model.train()
        elapsed = time.perf_counter() - start
        if self.learns_cost and batch:
            # The whole-submission measurement the online model refits
            # batch pricing from: `batch` images through
            # len(chunk_results) executor launches in `elapsed` wall.
            self._bind_cost_key()             # track keep-ratio retunes
            self.cost_model.observe_batch(
                batch, elapsed * 1e3, num_batches=len(chunk_results))
        result = self._merge(chunk_results, batch, elapsed)
        if record is not None and result.tokens_per_stage:
            self.model.finalize_pruned_record(record,
                                              result.tokens_per_stage)
        return result, slices

    def _merge(self, chunk_results, batch, elapsed):
        logits = np.concatenate([r.logits for r in chunk_results], axis=0)
        num_stages = (len(chunk_results[0].tokens_per_stage)
                      if chunk_results else 0)
        tokens_per_stage = [
            np.concatenate([r.tokens_per_stage[stage]
                            for r in chunk_results])
            for stage in range(num_stages)]
        stage_stats = [stats for r in chunk_results for stats in
                       r.stage_stats]
        config = self.model.config
        latency = self.cost_model.image_ms_from_counts(
            config.depth, self.model.selector_blocks, tokens_per_stage,
            extra=self.model.non_patch_slots) if num_stages else (
                np.full(batch, self.latency_table.model_latency(
                    [1.0] * config.depth)))
        return SessionResult(
            logits=logits, tokens_per_stage=tokens_per_stage,
            latency_ms=np.asarray(latency, dtype=np.float64),
            wall_time_s=elapsed,
            images_per_second=(batch / elapsed if elapsed > 0 else
                               float("inf")),
            stage_stats=stage_stats)
