"""Spawn-safe serving-session specification: config + weights.

A :class:`SessionSpec` is everything a fresh process needs to rebuild
an :class:`repro.engine.InferenceSession` bit-for-bit: the backbone
:class:`repro.vit.ViTConfig`, the selector layout (block -> keep
ratio), the flat ``state_dict`` weights, and the session knobs (batch
size, bucketing policy, cost model, backend, dtype).  The multi-worker
serving backend (:mod:`repro.serving.worker`) ships one spec to each
executor process at startup -- far cheaper and more robust than
pickling a live session with its autograd module graph, and immune to
anything process-local (workspace scratch, plan caches).

Rebuild is exact: the child constructs the same float64 modules,
overwrites every parameter with the spec's weights, and compiles the
same backend, so child logits are bitwise identical to the parent's
(asserted by ``tests/engine/test_spec.py``).

Models the spec cannot describe -- non-stock selector classifiers
(``classifier_factory``) or non-GELU selector activations, whose
behavior is not captured by config + weights -- raise
:class:`SpecError` from :meth:`SessionSpec.from_session`; callers fall
back to pickling the session object itself (sessions and compiled
models pickle cleanly; scratch workspaces serialize empty).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SessionSpec", "SpecError"]


class SpecError(TypeError):
    """The session cannot be described by config + weights alone."""


def _check_stock_selectors(model):
    """Raise :class:`SpecError` unless every selector would be rebuilt
    identically by ``HeatViT(backbone, selector_blocks)``.

    ``load_state_dict`` only restores parameters; a custom classifier
    module or a non-GELU activation changes *functions*, which a
    rebuilt stock selector would silently not reproduce.
    """
    from repro import nn
    from repro.core.selector import MultiHeadTokenClassifier

    for index, selector in enumerate(model.selectors):
        classifier = selector.classifier
        if type(classifier) is not MultiHeadTokenClassifier:
            raise SpecError(
                f"selector {index} uses a non-stock classifier "
                f"({type(classifier).__name__}); ship the session by "
                f"pickle instead of a SessionSpec")
        for mlp in (classifier.feature_mlp, classifier.classifier_mlp):
            for module in mlp:
                is_plain = isinstance(module, (nn.Linear, nn.GELU))
                if not is_plain:
                    raise SpecError(
                        f"selector {index} uses a non-stock activation "
                        f"({type(module).__name__}); ship the session "
                        f"by pickle instead of a SessionSpec")


@dataclass
class SessionSpec:
    """A rebuildable description of one serving session.

    Attributes
    ----------
    config: the backbone :class:`repro.vit.ViTConfig`.
    selector_blocks: ``{block_index: keep_ratio}`` selector layout.
    tau: shared Gumbel-Softmax temperature (eval paths ignore it, but
        the rebuilt model should match the original exactly).
    use_packager: whether pruned tokens consolidate into a package.
    state: the model's flat ``state_dict`` (name -> ndarray).
    batch_size / policy / cost_model / backend / dtype: session knobs,
        passed through to :class:`repro.engine.InferenceSession`.
    """

    config: object
    selector_blocks: dict
    tau: float
    use_packager: bool
    state: dict
    batch_size: int = 32
    policy: object = None
    cost_model: object = None
    backend: str = "tensor"
    dtype: str = None
    metadata: dict = field(default_factory=dict)

    @classmethod
    def from_session(cls, session, metadata=None):
        """Describe a live :class:`InferenceSession` as a spec.

        Raises :class:`SpecError` when the session's model carries
        behavior a config + weights rebuild cannot reproduce (custom
        classifier modules, non-GELU selector activations).
        """
        model = session.model
        if not hasattr(model, "selectors"):
            raise SpecError(
                f"{type(model).__name__} is not a HeatViT; SessionSpec "
                f"rebuilds HeatViT-backed sessions only")
        _check_stock_selectors(model)
        tau = (model.selectors[0].tau if len(model.selectors) else 1.0)
        dtype = (None if session.dtype is None
                 else np.dtype(session.dtype).name)
        return cls(
            config=model.config,
            selector_blocks={int(b): float(r) for b, r in
                             zip(model.selector_blocks,
                                 model.keep_ratios)},
            tau=float(tau),
            use_packager=bool(model.use_packager),
            state=model.state_dict(),
            batch_size=session.batch_size,
            policy=session.policy,
            cost_model=session.cost_model,
            backend=session.backend,
            dtype=dtype,
            metadata=dict(metadata or {}))

    def with_cost_model(self, cost_model):
        """A copy of the spec carrying ``cost_model`` instead.

        The worker pool uses this to (re)spawn workers with a
        *snapshot clone* of a learned :class:`repro.cost.OnlineCostModel`
        -- pickling the live model while the scheduler thread is still
        folding measurements into it would race; a respawned worker
        still inherits everything learned up to the snapshot.  The
        weight ``state`` dict is shared, not copied: specs treat it as
        immutable, and duplicating hundreds of MB per respawn would
        make supervision needlessly expensive.
        """
        from dataclasses import replace

        return replace(self, cost_model=cost_model)

    def build_model(self):
        """Rebuild the HeatViT in eval mode with the spec's weights."""
        from repro.core import HeatViT
        from repro.vit import VisionTransformer

        rng = np.random.default_rng(0)   # weights are overwritten below
        backbone = VisionTransformer(self.config, rng=rng)
        model = HeatViT(backbone, dict(self.selector_blocks),
                        tau=self.tau, use_packager=self.use_packager,
                        rng=rng)
        model.load_state_dict(self.state)
        model.eval()
        return model

    def build(self):
        """Rebuild the full :class:`InferenceSession`.

        The rebuilt session executes bit-for-bit like the one the spec
        was taken from: same weights, same bucketing policy and cost
        model, same compiled backend and dtype.
        """
        from repro.engine.session import InferenceSession

        return InferenceSession(
            self.build_model(), batch_size=self.batch_size,
            policy=self.policy, cost_model=self.cost_model,
            backend=self.backend, dtype=self.dtype)
