"""Online cost-model learning: refit batch pricing from measured reality.

The static :class:`repro.cost.CostModel` is calibrated once, from the
FPGA *simulator* -- it prices accelerator cycles, not the host that
actually executes batches.  PR 5's per-worker calibration already
showed the gap matters (an EWMA of measured-over-predicted per worker),
but a single scalar cannot separate the two quantities every batching
decision trades off: the fixed per-batch overhead (python dispatch,
workspace setup, queue transport) and the per-image marginal.  A batch
of 1 and a batch of 64 scale those terms completely differently.

:class:`OnlineCostModel` closes the loop.  It wraps a prior
:class:`CostModel` and refits, per ``(backend, dtype, keep-ratio
bucket)`` key, the affine batch law

``wall_ms  =  overhead_ms * num_batches  +  marginal_ms * num_images``

by exponentially-decaying recursive least squares over the measured
``(batch_shape, wall_ms)`` samples the serving stack already produces
(:meth:`repro.engine.InferenceSession.submit_many` wall time, the
executor's per-bucket timings, worker-reply timings).  Until a key has
seen ``min_samples`` observations the prior answers -- confidence
gating means an unwarmed model is *exactly* the static model -- and
once confident every consumer of :meth:`CostModel.estimate` (scheduler
budget/deadline flushes, EDF ``pop_batch`` pricing, admission
control's priced backlog, both routers) prices from learned host
reality instead of simulated accelerator time.

Bucket-level pricing (:meth:`block_ms` / :meth:`bucket_ms`, what the
cost-aware :func:`repro.engine.bucketing.plan_buckets` compares) is
refit by a second estimator per key against the executor's measured
per-bucket wall times: ``bucket_wall = overhead * num_blocks + scale *
prior_marginal`` -- the prior keeps its token-length *shape* (the
simulator knows how cost scales with sequence length), the measurements
set its magnitude and its true launch overhead.

Coefficient drift is tracked through a monotoni cally increasing
:attr:`version`: the model publishes its coefficients and only bumps
the version when a canonical prediction moves more than
``drift_threshold`` relative to the published one, so the engine's
bucket-plan cache (keyed by cost-model version) is invalidated on
*significant* drift instead of on every sample.

Everything is plain float64 state: the model pickles (it rides to
worker processes inside a :class:`repro.engine.SessionSpec`) and
:meth:`snapshot` / :meth:`restore` round-trip the learned state
bitwise.
"""

from __future__ import annotations

import numpy as np

from repro.cost.model import BatchCost, CostModel

__all__ = ["OnlineEstimator", "OnlineCostModel", "keep_ratio_bucket"]

#: Canonical batch shape (images, batches) at which coefficient drift
#: is judged for version bumps: one full default batch.
_DRIFT_SHAPE = (32.0, 1.0)


def keep_ratio_bucket(keep_ratios, grid=0.05):
    """Discretize an operating point's keep ratios into a hashable key.

    Nearby operating points (retunes within ``grid`` of each other)
    pool their samples; distinct points learn separately -- the knob
    space is kept per operating point, not global (cf. AdaViT's
    per-knob operating points).
    """
    if grid <= 0:
        raise ValueError("grid must be > 0")
    return tuple(int(round(float(r) / grid)) for r in keep_ratios)


class OnlineEstimator:
    """Decaying recursive-least-squares fit of an affine cost law.

    Fits ``y = theta[0] * x0 + theta[1] * x1`` (for batch pricing:
    ``x0 = num_batches``, ``x1 = num_images``) with forgetting factor
    ``forgetting`` so stale measurements decay, plus:

    * **confidence gating** -- :attr:`confident` only after
      ``min_samples`` observations; callers fall back to their prior
      below it;
    * **variance tracking** -- an EWMA of squared residuals
      (:attr:`variance_ms2`), the noise floor of this key's
      measurements;
    * **non-negativity** -- :meth:`predict` clips both coefficients at
      zero, so predictions are always >= 0 and monotone non-decreasing
      in both batch counts and image counts;
    * **bounded gain** -- the RLS covariance trace is capped so
      thousands of identical batch shapes cannot wind the gain up and
      make the fit jumpy against noise ("covariance windup").

    State is pure float64; :meth:`snapshot` / :meth:`restore`
    round-trip it bitwise.
    """

    def __init__(self, forgetting=0.98, ridge=1e4, min_samples=8,
                 variance_smoothing=0.1, max_gain=1e6):
        if not 0.0 < forgetting <= 1.0:
            raise ValueError("forgetting must be in (0, 1]")
        if ridge <= 0:
            raise ValueError("ridge must be > 0")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if not 0.0 < variance_smoothing <= 1.0:
            raise ValueError("variance_smoothing must be in (0, 1]")
        self.forgetting = float(forgetting)
        self.ridge = float(ridge)
        self.min_samples = int(min_samples)
        self.variance_smoothing = float(variance_smoothing)
        self.max_gain = float(max_gain)
        self.theta = np.zeros(2, dtype=np.float64)
        self.cov = np.eye(2, dtype=np.float64) * self.ridge
        self.count = 0
        self.residual_var = 0.0

    # ------------------------------------------------------------------
    @property
    def confident(self):
        """Enough samples folded in to trust the fit over a prior."""
        return self.count >= self.min_samples

    @property
    def overhead_ms(self):
        """Learned fixed cost per batch/bucket launch (clipped >= 0)."""
        return float(max(self.theta[0], 0.0))

    @property
    def marginal_ms(self):
        """Learned marginal cost per unit (clipped >= 0)."""
        return float(max(self.theta[1], 0.0))

    @property
    def variance_ms2(self):
        """EWMA of squared prediction residuals (measurement noise)."""
        return float(self.residual_var)

    # ------------------------------------------------------------------
    def observe(self, units, wall_ms, launches=1.0):
        """Fold one measurement in: ``units`` marginal units (images,
        or prior-priced marginal ms for the bucket estimator) executed
        in ``launches`` launches took ``wall_ms``."""
        if units < 0 or launches < 0:
            raise ValueError("units and launches must be >= 0")
        if wall_ms < 0:
            raise ValueError("wall_ms must be >= 0")
        x = np.array([float(launches), float(units)], dtype=np.float64)
        y = float(wall_ms)
        residual = y - float(x @ self.theta)
        lam = self.forgetting
        px = self.cov @ x
        gain = px / (lam + float(x @ px))
        self.theta = self.theta + gain * residual
        self.cov = (self.cov - np.outer(gain, px)) / lam
        # Symmetrize (floating-point drift) and cap the gain: with a
        # forgetting factor < 1 an unexcited direction (every sample
        # the same shape) otherwise grows without bound.
        self.cov = 0.5 * (self.cov + self.cov.T)
        trace = float(np.trace(self.cov))
        if trace > self.max_gain:
            self.cov *= self.max_gain / trace
        a = self.variance_smoothing
        if self.count == 0:
            self.residual_var = residual * residual
        else:
            self.residual_var = ((1.0 - a) * self.residual_var
                                 + a * residual * residual)
        self.count += 1
        return residual

    def predict(self, units, launches=1.0):
        """Predicted wall ms for a batch shape (always >= 0, monotone
        non-decreasing in both arguments)."""
        if units < 0 or launches < 0:
            raise ValueError("units and launches must be >= 0")
        return (self.overhead_ms * float(launches)
                + self.marginal_ms * float(units))

    # ------------------------------------------------------------------
    def snapshot(self):
        """Serializable state; restoring reproduces the fit bitwise."""
        return {
            "theta": self.theta.copy(),
            "cov": self.cov.copy(),
            "count": self.count,
            "residual_var": self.residual_var,
            "forgetting": self.forgetting,
            "ridge": self.ridge,
            "min_samples": self.min_samples,
            "variance_smoothing": self.variance_smoothing,
            "max_gain": self.max_gain,
        }

    @classmethod
    def from_snapshot(cls, snapshot):
        estimator = cls(forgetting=snapshot["forgetting"],
                        ridge=snapshot["ridge"],
                        min_samples=snapshot["min_samples"],
                        variance_smoothing=snapshot["variance_smoothing"],
                        max_gain=snapshot["max_gain"])
        estimator.theta = np.asarray(snapshot["theta"],
                                     dtype=np.float64).copy()
        estimator.cov = np.asarray(snapshot["cov"],
                                   dtype=np.float64).copy()
        estimator.count = int(snapshot["count"])
        estimator.residual_var = float(snapshot["residual_var"])
        return estimator

    def __repr__(self):
        return (f"OnlineEstimator(overhead={self.overhead_ms:.4f}, "
                f"marginal={self.marginal_ms:.4f}, n={self.count}, "
                f"confident={self.confident})")


class _KeyState:
    """Both estimators (whole-batch and bucket-level) for one key,
    plus the coefficients published at the key's last version bump."""

    __slots__ = ("batch", "bucket", "published_batch", "published_bucket")

    def __init__(self, batch, bucket):
        self.batch = batch
        self.bucket = bucket
        self.published_batch = None      # canonical prediction at bump
        self.published_bucket = None

    def snapshot(self):
        return {
            "batch": self.batch.snapshot(),
            "bucket": self.bucket.snapshot(),
            "published_batch": self.published_batch,
            "published_bucket": self.published_bucket,
        }


class OnlineCostModel(CostModel):
    """A :class:`CostModel` that refits itself from measured wall time.

    Drop-in everywhere a ``CostModel`` goes (it *is* one): sessions,
    executors, schedulers, routers, and specs all price through the
    same interface.  Behavior:

    * below ``min_samples`` observations for the current key, every
      estimate delegates to ``prior`` -- byte-for-byte the static
      answer;
    * at or above it, :meth:`estimate` prices from the learned
      ``(overhead, marginal)`` of the bound key, and :meth:`block_ms` /
      :meth:`bucket_ms` price from the learned bucket law (prior
      length-shape, learned magnitude and launch overhead), so
      cost-aware bucket planning re-plans from measured reality;
    * :attr:`version` bumps only on significant coefficient drift
      (``drift_threshold`` relative change of a canonical prediction),
      which consumers use to invalidate shape caches without
      re-planning on every sample.

    One instance serves one session: the session binds its context key
    (backend, dtype, keep-ratio bucket) via :meth:`bind` and feeds
    measurements via :meth:`observe_batch` / :meth:`observe_bucket`.

    Parameters
    ----------
    prior: the static calibrated :class:`CostModel` to fall back on
        (and whose Eq. 18 table keeps pricing token lengths).
    min_samples: observations per key before the learned fit answers.
    forgetting: RLS decay factor per sample (1.0 = plain least squares).
    drift_threshold: relative change of the canonical prediction that
        bumps :attr:`version` (plan-cache invalidation granularity).
    """

    def __init__(self, prior, min_samples=8, forgetting=0.98,
                 drift_threshold=0.1, name=None):
        if not isinstance(prior, CostModel):
            raise TypeError("prior must be a repro.cost.CostModel")
        if isinstance(prior, OnlineCostModel):
            raise TypeError("prior is already an OnlineCostModel; "
                            "wrap the static model, not the wrapper")
        if drift_threshold <= 0:
            raise ValueError("drift_threshold must be > 0")
        super().__init__(prior.table, prior.num_patches,
                         extra_tokens=prior.extra_tokens,
                         batch_overhead_ms=prior.batch_overhead_ms,
                         bucket_overhead_ms=prior.bucket_overhead_ms,
                         name=name or f"online({prior.name})")
        self.prior = prior
        self.min_samples = int(min_samples)
        self.forgetting = float(forgetting)
        self.drift_threshold = float(drift_threshold)
        self._keys = {}
        self._bound = None
        self._version = 0

    def __repr__(self):
        return (f"OnlineCostModel({self.prior.name!r}, "
                f"keys={len(self._keys)}, version={self._version}, "
                f"bound={self._bound!r})")

    # ------------------------------------------------------------------
    # Context binding and key management
    # ------------------------------------------------------------------
    def bind(self, key):
        """Set the context key subsequent pricing and observations use.

        ``key`` is any hashable -- sessions use ``(backend, dtype,
        keep-ratio bucket)`` via :func:`keep_ratio_bucket`.  Binding a
        new key never forgets other keys' fits (retuning back to a
        previous operating point resumes its estimator)."""
        self._bound = key
        return self

    @property
    def bound_key(self):
        return self._bound

    @property
    def keys(self):
        """Keys with at least one observation, in first-seen order."""
        return list(self._keys)

    def _state(self, key):
        state = self._keys.get(key)
        if state is None:
            state = _KeyState(
                OnlineEstimator(forgetting=self.forgetting,
                                min_samples=self.min_samples),
                OnlineEstimator(forgetting=self.forgetting,
                                min_samples=self.min_samples))
            self._keys[key] = state
        return state

    def _resolve(self, key):
        return self._bound if key is None else key

    # ------------------------------------------------------------------
    # Measurement intake
    # ------------------------------------------------------------------
    def observe_batch(self, num_images, wall_ms, num_batches=1, key=None):
        """Fold one whole-submission measurement into the key's batch
        estimator: ``num_images`` images ran as ``num_batches``
        executor launches in ``wall_ms`` of host wall time."""
        if num_images < 1:
            return
        state = self._state(self._resolve(key))
        state.batch.observe(num_images, wall_ms,
                            launches=max(int(num_batches), 1))
        self._maybe_bump(state)

    def observe_bucket(self, padded_length, num_images, num_blocks,
                       wall_ms, key=None):
        """Fold one measured bucket launch (``num_images`` sequences
        padded to ``padded_length`` through ``num_blocks`` encoder
        blocks) into the key's bucket estimator.

        The regressor is the *prior-priced* marginal of the launch, so
        the fit learns a magnitude correction on top of the simulator's
        token-length shape plus the true per-block launch overhead."""
        if num_images < 1 or num_blocks < 1:
            return
        prior_marginal = (num_images * num_blocks
                          * self.prior.block_ms(padded_length))
        state = self._state(self._resolve(key))
        state.bucket.observe(prior_marginal, wall_ms,
                             launches=float(num_blocks))
        self._maybe_bump(state)

    def _canonical(self, state):
        """Canonical predictions both drift checks compare against."""
        images, batches = _DRIFT_SHAPE
        batch = (state.batch.predict(images, launches=batches)
                 if state.batch.confident else None)
        bucket = (state.bucket.predict(1.0, launches=1.0)
                  if state.bucket.confident else None)
        return batch, bucket

    @staticmethod
    def _drifted(current, published, threshold):
        if current is None:
            return False
        if published is None:
            return True                      # first confident fit
        scale = max(abs(published), 1e-9)
        return abs(current - published) / scale > threshold

    def _maybe_bump(self, state):
        batch, bucket = self._canonical(state)
        if (self._drifted(batch, state.published_batch,
                          self.drift_threshold)
                or self._drifted(bucket, state.published_bucket,
                                 self.drift_threshold)):
            state.published_batch = batch
            state.published_bucket = bucket
            self._version += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def version(self):
        """Monotonic counter, bumped on significant coefficient drift
        (what the engine's bucket-plan cache keys on)."""
        return self._version

    def confident(self, key=None):
        """Is the key's *batch* estimator past its sample threshold?"""
        state = self._keys.get(self._resolve(key))
        return state is not None and state.batch.confident

    def samples(self, key=None):
        """(batch, bucket) observation counts for a key."""
        state = self._keys.get(self._resolve(key))
        if state is None:
            return (0, 0)
        return (state.batch.count, state.bucket.count)

    def coefficients(self, key=None):
        """Learned terms for a key (how to inspect what was learned).

        Returns a dict with the batch law's ``overhead_ms`` /
        ``marginal_ms`` (per launch / per image), the bucket law's
        ``bucket_overhead_ms`` / ``bucket_scale`` (per block launch /
        vs the prior's marginal), sample counts, residual variances,
        and the confidence flags gating their use."""
        state = self._keys.get(self._resolve(key))
        if state is None:
            return None
        return {
            "overhead_ms": state.batch.overhead_ms,
            "marginal_ms": state.batch.marginal_ms,
            "batch_samples": state.batch.count,
            "batch_confident": state.batch.confident,
            "batch_variance_ms2": state.batch.variance_ms2,
            "bucket_overhead_ms": state.bucket.overhead_ms,
            "bucket_scale": state.bucket.marginal_ms,
            "bucket_samples": state.bucket.count,
            "bucket_confident": state.bucket.confident,
            "bucket_variance_ms2": state.bucket.variance_ms2,
        }

    # ------------------------------------------------------------------
    # Whole-model batch pricing (learned when confident)
    # ------------------------------------------------------------------
    def estimate(self, plan, key=None):
        """Price a :class:`repro.cost.BatchPlan`: learned coefficients
        for the bound key once confident, the prior until then."""
        state = self._keys.get(self._resolve(key))
        if state is None or not state.batch.confident:
            return self.prior.estimate(plan)
        if plan.num_images == 0:
            return BatchCost(overhead_ms=0.0, marginal_ms=0.0,
                             num_images=0)
        return BatchCost(
            overhead_ms=state.batch.overhead_ms * plan.num_batches,
            marginal_ms=state.batch.marginal_ms * plan.num_images,
            num_images=plan.num_images)

    # ------------------------------------------------------------------
    # Bucket-level pricing (learned when confident; plan_buckets path)
    # ------------------------------------------------------------------
    def _bucket_state(self, key=None):
        state = self._keys.get(self._resolve(key))
        if state is not None and state.bucket.confident:
            return state.bucket
        return None

    def block_ms(self, num_tokens):
        learned = self._bucket_state()
        if learned is None:
            return self.prior.block_ms(num_tokens)
        return learned.marginal_ms * self.prior.block_ms(num_tokens)

    def bucket_ms(self, padded_length, num_images):
        learned = self._bucket_state()
        if learned is None:
            return self.prior.bucket_ms(padded_length, num_images)
        if num_images < 0:
            raise ValueError("num_images must be >= 0")
        if num_images == 0:
            return 0.0
        return learned.predict(
            num_images * self.prior.block_ms(padded_length))

    @property
    def is_zero_overhead(self):
        """Zero-overhead only while the prior answers AND the prior is
        degenerate; a confident bucket fit prices overheads itself."""
        learned = self._bucket_state()
        if learned is None:
            return self.prior.is_zero_overhead
        return learned.overhead_ms == 0.0 and learned.marginal_ms == 0.0

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def snapshot(self):
        """Full learned state, serializable and bitwise-restorable --
        what worker rebuilds carry inside a
        :class:`repro.engine.SessionSpec` (the model itself pickles;
        the snapshot is the inspectable/portable form)."""
        return {
            "version": self._version,
            "bound": self._bound,
            "min_samples": self.min_samples,
            "forgetting": self.forgetting,
            "drift_threshold": self.drift_threshold,
            "keys": {key: state.snapshot()
                     for key, state in self._keys.items()},
        }

    def restore(self, snapshot):
        """Load a :meth:`snapshot`; the restored fit is bitwise equal
        (same predictions, same future updates)."""
        self._version = int(snapshot["version"])
        self._bound = snapshot["bound"]
        self.min_samples = int(snapshot["min_samples"])
        self.forgetting = float(snapshot["forgetting"])
        self.drift_threshold = float(snapshot["drift_threshold"])
        self._keys = {}
        for key, entry in snapshot["keys"].items():
            state = _KeyState(
                OnlineEstimator.from_snapshot(entry["batch"]),
                OnlineEstimator.from_snapshot(entry["bucket"]))
            state.published_batch = entry["published_batch"]
            state.published_bucket = entry["published_bucket"]
            self._keys[key] = state
        return self

    @classmethod
    def from_snapshot(cls, prior, snapshot):
        model = cls(prior,
                    min_samples=int(snapshot["min_samples"]),
                    forgetting=float(snapshot["forgetting"]),
                    drift_threshold=float(snapshot["drift_threshold"]))
        return model.restore(snapshot)
