"""Unified batch-aware cost model (the single batch-pricing oracle).

All batch pricing in the repo flows through :class:`CostModel`: the
engine's cost-aware bucket planner, ``InferenceSession`` batch
estimates, the scheduler's budget/deadline flushes, and both request
routers.  Calibrated instances come from
:func:`repro.hardware.latency_table.build_cost_model`;
:func:`paper_cost_model` is the degenerate zero-overhead instance built
from the paper's measured Table IV.  :class:`OnlineCostModel` wraps any
of them and refits per-batch overhead + per-image marginal online from
measured host wall time (see :mod:`repro.cost.online`).
"""

from repro.cost.model import (BatchCost, BatchPlan, CostModel,
                              paper_cost_model)
from repro.cost.online import (OnlineCostModel, OnlineEstimator,
                               keep_ratio_bucket)

__all__ = ["BatchPlan", "BatchCost", "CostModel", "paper_cost_model",
           "OnlineCostModel", "OnlineEstimator", "keep_ratio_bucket"]
