"""Unified batch-aware cost model: THE batch pricing implementation.

The paper's latency-sparsity table (Eq. 18, Table IV) prices a *single
image* per block.  Serving decisions, however, price *batches*: a flush
pays a fixed per-batch overhead (weight loading, pipeline fill -- the
terms the FPGA simulator amortizes across a batch), each padded bucket
pays a launch overhead, and every image pays its marginal Eq. 18 cost.
Before this module those terms were re-derived inline as
``n * per_image`` in the engine, scheduler, and routers; now every
consumer prices through one :class:`CostModel`:

* :meth:`CostModel.estimate` prices a whole-model batch
  (:class:`BatchPlan` in, :class:`BatchCost` out) -- used by
  ``InferenceSession.estimated_batch_cost`` and through it by the
  scheduler's budget/deadline flushes and both routers;
* :meth:`CostModel.bucket_ms` prices one padded bucket launch at block
  granularity -- used by the cost-aware
  :func:`repro.engine.bucketing.plan_buckets` to merge buckets whenever
  the padding cost is smaller than the saved bucket overhead.

Calibrated instances come from
:func:`repro.hardware.latency_table.build_cost_model`, which sweeps the
simulator over batch sizes and fits ``latency(B) = overhead + B *
marginal`` per keep ratio.  :func:`paper_cost_model` wraps the paper's
measured Table IV values as a degenerate zero-overhead instance, under
which every consumer provably reproduces the legacy ``n * per_image``
numbers exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.latency import (LatencySparsityTable,
                                latency_for_keep_ratios,
                                latency_from_stage_counts,
                                paper_latency_table)

__all__ = ["BatchPlan", "BatchCost", "CostModel", "paper_cost_model"]


@dataclass(frozen=True)
class BatchPlan:
    """A priceable description of one whole-model batch execution.

    ``num_images`` images, each with marginal whole-model cost
    ``per_image_ms`` (the Eq. 19 sum of per-block table lookups at the
    session's operating point), executed in ``num_batches`` separate
    accelerator launches (a submission larger than the engine's
    ``batch_size`` is chopped into several chunks, each paying the
    per-batch overhead once).
    """

    num_images: int
    per_image_ms: float
    num_batches: int = 1

    def __post_init__(self):
        if self.num_images < 0:
            raise ValueError("num_images must be >= 0")
        if self.per_image_ms < 0:
            raise ValueError("per_image_ms must be >= 0")
        if self.num_batches < 0:
            raise ValueError("num_batches must be >= 0")
        if self.num_images > 0 and self.num_batches < 1:
            raise ValueError("a non-empty plan needs >= 1 batch")


@dataclass(frozen=True)
class BatchCost:
    """An estimated batch execution cost, broken into its terms.

    ``overhead_ms`` is the fixed per-batch share (weight loading /
    pipeline fill, paid once per accelerator launch), ``marginal_ms``
    the summed per-image marginal cost.  ``total_ms`` is what flush and
    feasibility decisions compare against budgets and deadlines;
    ``amortized_image_ms`` shows how batching dilutes the overhead.
    """

    overhead_ms: float
    marginal_ms: float
    num_images: int

    @property
    def total_ms(self):
        return self.overhead_ms + self.marginal_ms

    @property
    def amortized_image_ms(self):
        if self.num_images == 0:
            return 0.0
        return self.total_ms / self.num_images


class CostModel:
    """Batch-aware latency oracle for one accelerator + model config.

    Parameters
    ----------
    table: :class:`repro.core.latency.LatencySparsityTable` mapping
        patch keep ratio to per-image ONE-BLOCK marginal latency (ms) --
        the slope of the calibrated ``latency(B)`` line, or the paper's
        measured Table IV for the degenerate instance.
    num_patches: patch count of the served config (token lengths seen by
        the bucket planner convert to table keep ratios through it).
    extra_tokens: non-patch slots (CLS, plus the package token when the
        model packages) included in engine sequence lengths.
    batch_overhead_ms: fixed whole-model cost per accelerator launch.
    bucket_overhead_ms: fixed PER-BLOCK cost of launching one more
        bucket inside a batch -- the savings a bucket merge captures.
    """

    def __init__(self, table, num_patches, extra_tokens=1,
                 batch_overhead_ms=0.0, bucket_overhead_ms=0.0,
                 name="cost-model"):
        if not isinstance(table, LatencySparsityTable):
            raise TypeError("table must be a LatencySparsityTable")
        if num_patches < 1:
            raise ValueError("num_patches must be >= 1")
        if extra_tokens < 0:
            raise ValueError("extra_tokens must be >= 0")
        if batch_overhead_ms < 0 or bucket_overhead_ms < 0:
            raise ValueError("overheads must be >= 0")
        self.table = table
        self.num_patches = int(num_patches)
        self.extra_tokens = int(extra_tokens)
        self.batch_overhead_ms = float(batch_overhead_ms)
        self.bucket_overhead_ms = float(bucket_overhead_ms)
        self.name = name

    def __repr__(self):
        return (f"CostModel({self.name!r}, "
                f"batch_overhead_ms={self.batch_overhead_ms:.4f}, "
                f"bucket_overhead_ms={self.bucket_overhead_ms:.4f})")

    @classmethod
    def zero_overhead(cls, table, num_patches, extra_tokens=1,
                      name="zero-overhead"):
        """Degenerate instance: pricing reduces exactly to the legacy
        ``num_images * per_image_ms`` convention (no batch economies)."""
        return cls(table, num_patches, extra_tokens=extra_tokens,
                   batch_overhead_ms=0.0, bucket_overhead_ms=0.0,
                   name=name)

    @property
    def is_zero_overhead(self):
        return self.batch_overhead_ms == 0.0 and self.bucket_overhead_ms == 0.0

    # ------------------------------------------------------------------
    # Per-image marginal costs (Eq. 18/19 delegation)
    # ------------------------------------------------------------------
    def image_ms(self, depth, selector_blocks, keep_ratios):
        """Marginal whole-model cost of ONE image at a configured
        operating point (Eq. 19 LHS) -- the ``per_image_ms`` a
        :class:`BatchPlan` carries."""
        return latency_for_keep_ratios(self.table, depth, selector_blocks,
                                       keep_ratios)

    def image_ms_from_counts(self, depth, selector_blocks,
                             tokens_per_stage, extra=None):
        """Per-image marginal cost from *realized* post-selector token
        counts; returns a ``(B,)`` array (deployment-side Eq. 18)."""
        extra = self.extra_tokens if extra is None else extra
        return latency_from_stage_counts(self.table, depth, selector_blocks,
                                         tokens_per_stage, self.num_patches,
                                         extra=extra)

    # ------------------------------------------------------------------
    # Whole-model batch pricing
    # ------------------------------------------------------------------
    def estimate(self, plan):
        """Price a :class:`BatchPlan`; returns a :class:`BatchCost`.

        This is the single place batch latency is assembled from its
        terms: ``num_batches`` per-batch overheads plus ``num_images``
        marginal per-image costs.
        """
        if not isinstance(plan, BatchPlan):
            raise TypeError("plan must be a BatchPlan")
        if plan.num_images == 0:
            return BatchCost(overhead_ms=0.0, marginal_ms=0.0, num_images=0)
        return BatchCost(
            overhead_ms=self.batch_overhead_ms * plan.num_batches,
            marginal_ms=plan.per_image_ms * plan.num_images,
            num_images=plan.num_images)

    def batch_ms(self, num_images, per_image_ms, num_batches=1):
        """Shorthand: ``estimate(...).total_ms`` for a uniform batch."""
        return self.estimate(BatchPlan(
            num_images=num_images, per_image_ms=per_image_ms,
            num_batches=num_batches if num_images else 0)).total_ms

    # ------------------------------------------------------------------
    # Completion-time estimates over in-flight work (placement)
    # ------------------------------------------------------------------
    def completion_ms(self, batch_cost, backlog_ms=0.0, calibration=1.0):
        """Predicted completion time of a batch behind queued work.

        ``batch_cost`` is a :class:`BatchCost` (or a raw scalar ms
        estimate), ``backlog_ms`` the estimated in-flight work already
        queued on the executor, and ``calibration`` a measured-over-
        predicted scale factor (>= 0) from online per-worker timing
        (see :class:`repro.serving.PlacementPolicy`) -- the model's
        static FPGA-simulator fit corrected by what this executor
        actually measured.  Returns ``backlog + calibration * cost``:
        the quantity multi-worker placement minimizes.
        """
        if backlog_ms < 0:
            raise ValueError("backlog_ms must be >= 0")
        if calibration < 0:
            raise ValueError("calibration must be >= 0")
        cost_ms = (batch_cost.total_ms if isinstance(batch_cost, BatchCost)
                   else float(batch_cost))
        if cost_ms < 0:
            raise ValueError("batch cost must be >= 0")
        return backlog_ms + calibration * cost_ms

    # ------------------------------------------------------------------
    # Bucket-level pricing (block granularity, for the bucket planner)
    # ------------------------------------------------------------------
    def block_ms(self, num_tokens):
        """Per-image ONE-BLOCK marginal cost at a real sequence length
        (CLS/package slots included, as the engine counts tokens)."""
        ratio = (num_tokens - self.extra_tokens) / self.num_patches
        return self.table.latency(ratio)

    def bucket_ms(self, padded_length, num_images):
        """Per-block cost of one bucket launch: every member is priced
        at the *padded* length (bucketed execution pays for padding),
        plus one bucket-launch overhead."""
        if num_images < 0:
            raise ValueError("num_images must be >= 0")
        if num_images == 0:
            return 0.0
        return (self.bucket_overhead_ms
                + num_images * self.block_ms(padded_length))

    def stage_cost_ms(self, buckets):
        """Per-block cost of a whole bucket partition: ``buckets`` is an
        iterable of ``(padded_length, num_images)`` pairs.  The bucket
        planner compares candidate partitions with this."""
        return sum(self.bucket_ms(length, count)
                   for length, count in buckets)


def paper_cost_model(model_name="DeiT-T"):
    """The paper's measured Table IV as a zero-overhead CostModel.

    Both Table IV backbones patch 224x224 images at stride 16, i.e.
    196 patches plus the CLS slot.  The paper prices single images, so
    the instance is degenerate: no batch or bucket overhead, and every
    consumer reproduces the legacy ``n * per_image`` numbers exactly.
    """
    return CostModel.zero_overhead(paper_latency_table(model_name),
                                   num_patches=196, extra_tokens=1,
                                   name=f"paper-{model_name}")
