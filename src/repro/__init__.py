"""HeatViT reproduction: hardware-efficient adaptive token pruning for ViTs.

Subpackages
-----------
``repro.nn``        autodiff tensors, layers, optimizers (PyTorch substitute)
``repro.vit``       ViT backbones, analytical complexity (Table II), CKA
``repro.core``      the HeatViT token selector and training strategy
``repro.cost``      unified batch-aware cost model (all batch pricing)
``repro.approx``    polynomial approximations of nonlinear functions
``repro.quant``     8-bit fixed-point quantization
``repro.hardware``  ZCU102 FPGA accelerator simulator + TX2 comparisons
``repro.baselines`` competing pruning methods (static, EViT-style, ...)
``repro.data``      synthetic cluttered-object dataset
"""

__version__ = "1.0.0"
