"""Fan one scheduler out to a pool of executor worker processes.

A walkthrough of multi-worker serving (`repro.serving.worker` +
`repro.serving.placement`): one HeatViT operating point registers with
``workers=N`` executor *processes*, each of which rebuilds the serving
session in its own interpreter from a spawn-safe
:class:`repro.engine.SessionSpec` (config + weights).  A burst of
single-image requests is flushed, split into balanced shards, and
placed on the worker with the lowest cost-model-predicted completion
time; each worker's measured execution time feeds the placement
policy's online calibration (the measured-cost layer over the static
FPGA-simulator fit).  The demo then serves the same burst in-process
and verifies the pooled logits are **bitwise identical** -- fan-out
changes where batches run, never what they compute.

On a multi-core host the pooled run finishes close to ``1/N`` of the
in-process time (near-linear for 2-4 workers); on a single-CPU host it
only demonstrates correctness and the transport overhead.

Usage::

    PYTHONPATH=src python examples/serve_multiworker.py
    PYTHONPATH=src python examples/serve_multiworker.py --workers 4
"""

import argparse
import time

import numpy as np

from repro.core import HeatViT
from repro.data import SyntheticConfig, generate_dataset
from repro.engine import InferenceSession
from repro.hardware.latency_table import (FINE_KEEP_RATIO_GRID,
                                          build_cost_model)
from repro.serving import Scheduler, VirtualClock
from repro.vit import VisionTransformer, ViTConfig


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2,
                        help="executor processes in the pool")
    parser.add_argument("--requests", type=int, default=64,
                        help="single-image requests in the burst")
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    config = ViTConfig(name="serve-multiworker", image_size=32,
                       patch_size=8, embed_dim=48, depth=12, num_heads=4,
                       num_classes=8)
    backbone = VisionTransformer(config, rng=rng)
    model = HeatViT(backbone, {3: 0.7, 6: 0.5, 9: 0.35}, rng=rng)
    model.eval()
    cost_model = build_cost_model(config,
                                  keep_ratios=FINE_KEEP_RATIO_GRID,
                                  extra_tokens=model.non_patch_slots)
    images = generate_dataset(
        SyntheticConfig(image_size=32, num_classes=8),
        args.requests, rng).images

    # 1. In-process reference: one session, one burst, one big flush.
    session = InferenceSession(model, batch_size=args.requests,
                               cost_model=cost_model)
    session.submit(images[:4])                     # warm up
    start = time.perf_counter()
    reference = session.submit(images)
    in_process_s = time.perf_counter() - start
    print(f"in-process: {args.requests} requests in "
          f"{in_process_s * 1e3:.1f} ms")

    # 2. The same burst through a pool of executor processes.  The
    #    scheduler ships the session to each worker as a SessionSpec
    #    (config + weights, rebuilt in the child); flushes are split
    #    into balanced shards and placed by predicted completion time.
    scheduler = Scheduler(clock=VirtualClock(), batch_window_ms=10.0)
    scheduler.register("pruned", session=InferenceSession(
        model, batch_size=args.requests, cost_model=cost_model),
        max_batch=args.requests, workers=args.workers)
    served = scheduler.sessions[0]

    def serve_burst():
        ids = [scheduler.submit(images[i]) for i in range(args.requests)]
        results = {r.request_id: r for r in scheduler.flush()}
        return np.concatenate([results[i].logits for i in ids], axis=0)

    serve_burst()                                  # warm up + calibrate
    start = time.perf_counter()
    logits = serve_burst()
    pooled_s = time.perf_counter() - start
    print(f"{args.workers} workers: {args.requests} requests in "
          f"{pooled_s * 1e3:.1f} ms "
          f"({in_process_s / pooled_s:.2f}x vs in-process)")

    # 3. Placement telemetry: which worker ran what, and how far the
    #    online calibration has pulled each worker away from the raw
    #    FPGA-simulator estimate (host ms per simulated ms).
    for event in scheduler.events[-args.workers:]:
        print(f"  flush -> worker {event.worker}: "
              f"{event.num_images} images, predicted "
              f"{event.estimated_ms:.2f} ms")
    calibration = ", ".join(f"{c:.1f}" for c in
                            served.placement.calibration)
    print(f"  calibration (measured/predicted EWMA): [{calibration}]")

    # 4. The point: fan-out never changes the numbers.
    identical = bool((logits == reference.logits).all())
    print(f"pooled logits bitwise identical to in-process: {identical}")

    # 5. Deterministic shutdown: drains queues, joins workers.
    scheduler.shutdown()
    print(f"shutdown complete; worker processes alive: "
          f"{served.pool.alive_workers()}")
    if not identical:
        raise SystemExit("FAIL: pooled logits diverged")


if __name__ == "__main__":
    main()
