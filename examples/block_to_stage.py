"""Algorithm 1 end to end: latency-aware block-to-stage training.

Builds the latency-sparsity table from the FPGA simulator, trains a
backbone, then runs the paper's Algorithm 1: insert token selectors
back-to-front, lower keep ratios under the accuracy budget until the
latency target is met, and consolidate similar selectors into stages.

Takes a couple of minutes.  Usage::

    python examples/block_to_stage.py
"""

import numpy as np

from repro.core import (BlockToStageTrainer, TrainConfig, train_backbone)
from repro.data import SyntheticConfig, generate_dataset
from repro.hardware import build_latency_table
from repro.vit import VisionTransformer, ViTConfig


def main():
    config = ViTConfig(name="b2s-demo", image_size=24, patch_size=4,
                       embed_dim=36, depth=6, num_heads=3, num_classes=4)
    data_config = SyntheticConfig(image_size=24, num_classes=4,
                                  noise_std=0.08,
                                  object_scale_range=(0.25, 0.7),
                                  center_jitter=0.3)
    data = generate_dataset(data_config, 440, np.random.default_rng(2023))
    train, val = data.split(train_fraction=0.85,
                            rng=np.random.default_rng(0))

    backbone = VisionTransformer(config, rng=np.random.default_rng(7))
    print("training backbone ...")
    train_backbone(backbone, train.images, train.labels,
                   TrainConfig(epochs=25, batch_size=32, lr=2.5e-3,
                               weight_decay=0.01, seed=0))
    backbone.eval()

    # The latency-sparsity table comes straight from the FPGA simulator
    # (at paper scale this is measured on the board -- Table IV).
    table = build_latency_table(config)
    print("latency-sparsity table (ms per block):")
    for ratio, latency in table.items():
        print(f"  keep {ratio:.1f} -> {latency:.4f} ms")
    dense_latency = table.model_latency([1.0] * config.depth)
    target = 0.8 * dense_latency
    print(f"dense model: {dense_latency:.3f} ms; target: {target:.3f} ms")

    trainer = BlockToStageTrainer(
        backbone,
        (train.images, train.labels),
        (val.images, val.labels),
        table,
        TrainConfig(epochs=1, batch_size=32, lr=5e-4,
                    lambda_distill=0.0),
        min_block=2, ratio_grid=(0.8, 0.6, 0.4),
        rng=np.random.default_rng(1))
    print("\nrunning Algorithm 1 ...")
    model, report = trainer.run(latency_limit=target, accuracy_drop=0.05)

    print(f"\nbaseline accuracy : {report.baseline_accuracy:.3f}")
    for trace in report.traces:
        print(f"insert before block {trace.block}: keep "
              f"{trace.keep_ratio:.2f} -> accuracy {trace.accuracy:.3f}, "
              f"latency {trace.latency_ms:.3f} ms")
    print(f"consolidated stages: boundaries {report.stage_boundaries}, "
          f"keep ratios "
          f"{tuple(round(r, 2) for r in report.stage_keep_ratios)}")
    print(f"final accuracy    : {report.final_accuracy:.3f} at "
          f"{report.final_latency_ms:.3f} ms "
          f"({report.epochs_spent} fine-tuning epochs spent)")


if __name__ == "__main__":
    main()
