"""Serve a HeatViT model with the batched bucketed inference engine.

Simulates a small serving scenario: requests arrive in bursts of varying
size, and an :class:`repro.engine.InferenceSession` batches each burst
through the bucketed executor, reporting predictions, measured host
throughput, the per-stage bucketing decisions, and the estimated
accelerator latency per image (paper Table IV lookup, Eq. 18).

Pass ``--backend fastpath`` to serve through the compiled graph-free
fast path (fused float32 kernels + workspace reuse; identical
predictions, several times the throughput) instead of the float64
Tensor reference modules.

Usage::

    PYTHONPATH=src python examples/serve_engine.py
    PYTHONPATH=src python examples/serve_engine.py --backend fastpath
"""

import argparse

import numpy as np

from repro.core import HeatViT
from repro.data import SyntheticConfig, generate_dataset
from repro.engine import BucketingPolicy, InferenceSession
from repro.vit import VisionTransformer, ViTConfig


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=["tensor", "fastpath"],
                        default="tensor",
                        help="engine compute backend (fastpath = compiled "
                             "float32 kernels)")
    args = parser.parse_args()
    rng = np.random.default_rng(0)

    # 1. A deployment-shaped model: selectors prune progressively.
    config = ViTConfig(name="serve-demo", image_size=32, patch_size=8,
                       embed_dim=48, depth=12, num_heads=4, num_classes=8)
    backbone = VisionTransformer(config, rng=rng)
    model = HeatViT(backbone, {3: 0.7, 6: 0.5, 9: 0.35}, rng=rng)
    print(f"model: {config.depth} blocks, {config.num_tokens} tokens, "
          f"selectors at {dict(zip(model.selector_blocks, model.keep_ratios))}")

    # 2. One session serves many requests; buckets pad up to 4 tokens.
    session = InferenceSession(model, batch_size=32,
                               policy=BucketingPolicy(pad_limit=4),
                               backend=args.backend)
    print(f"backend: {session.backend} "
          f"(compute dtype {np.dtype(session.dtype).name})")

    # 3. Bursts of varying size, as a request queue would hand us.
    data_config = SyntheticConfig(image_size=32, num_classes=8)
    for burst, count in enumerate([5, 17, 32]):
        batch = generate_dataset(data_config, count, rng)
        result = session.submit(batch.images)
        accuracy = float((result.predictions == batch.labels).mean())
        kept = [int(c.mean()) for c in result.tokens_per_stage]
        print(f"\nburst {burst}: {count} images in "
              f"{result.wall_time_s * 1e3:.1f} ms "
              f"({result.images_per_second:.0f} img/s)")
        print(f"  mean tokens per stage: {kept} (from {config.num_tokens})")
        print(f"  buckets per stage: "
              f"{[s.num_buckets for s in result.stage_stats]}, "
              f"padded tokens: "
              f"{sum(s.padded_tokens for s in result.stage_stats)}")
        print(f"  estimated accelerator latency: "
              f"{result.latency_ms.mean():.2f} ms/image "
              f"(min {result.latency_ms.min():.2f}, "
              f"max {result.latency_ms.max():.2f})")
        print(f"  accuracy vs synthetic labels: {accuracy:.2f} "
              f"(untrained weights -- wire in train_heatvit for real ones)")


if __name__ == "__main__":
    main()
