"""Serve HeatViT over HTTP: SLO tiers, admission control, preemption.

The full serving process in one script: two keep-ratio operating
points of the same backbone register with a :class:`Scheduler`
configured for production shape -- priority classes mapped to deadline
tiers, priced-backlog admission control, flush preemption for the
premium class -- and a :class:`FrontDoor` exposes it as an asyncio
HTTP/JSON server on a loopback port.  A two-tier trace (steady premium
stream + bursty bulk) is replayed against it over real sockets with
the stdlib :class:`FrontDoorClient`; bulk bursts overflow the priced
capacity, so some bulk traffic is degraded to the cheaper operating
point and some is shed with HTTP 429 while the premium class keeps its
deadline tier.

The same endpoints speak to anything that does HTTP, e.g.::

    curl -X POST http://127.0.0.1:PORT/v1/submit \
         -d '{"num_images": 1, "seed": 7, "priority": 0}'
    curl http://127.0.0.1:PORT/v1/result/0?wait=1
    curl http://127.0.0.1:PORT/stats

Usage::

    PYTHONPATH=src python examples/serve_http.py
"""

import numpy as np

from repro.core import HeatViT
from repro.hardware.latency_table import (FINE_KEEP_RATIO_GRID,
                                          build_cost_model)
from repro.serving import (FrontDoor, FrontDoorClient,
                           HighestFidelityRouter, Scheduler, replay,
                           two_tier_trace)
from repro.vit import VisionTransformer, ViTConfig


def main():
    rng = np.random.default_rng(0)

    # 1. Two operating points of one backbone: the accurate model is
    #    the router's first choice, the deeply pruned one is the
    #    degradation target under overload.
    config = ViTConfig(name="http-demo", image_size=32, patch_size=8,
                       embed_dim=48, depth=12, num_heads=4, num_classes=8)
    backbone = VisionTransformer(config, rng=rng)
    accurate = HeatViT(backbone, {6: 0.8}, rng=rng)
    pruned = HeatViT(backbone, {3: 0.5, 6: 0.35, 9: 0.25}, rng=rng)
    for model in (accurate, pruned):
        model.eval()
    cost_model = build_cost_model(config,
                                  keep_ratios=FINE_KEEP_RATIO_GRID,
                                  extra_tokens=accurate.non_patch_slots)

    # 2. Production-shaped scheduler: class 0 (premium) gets a 300 ms
    #    deadline tier, preempts the batch window, and is never shed;
    #    class 1 (bulk) gets 5 s and is degraded/shed when the priced
    #    backlog exceeds ~12 images' worth of batch cost.
    scheduler = Scheduler(batch_window_ms=40.0,
                          router=HighestFidelityRouter(),
                          priority_tiers={0: 300.0, 1: 5_000.0},
                          preempt_priority=0)
    accurate_target = scheduler.register("accurate", accurate,
                                         cost_model=cost_model)
    scheduler.register("pruned", pruned, cost_model=cost_model)
    scheduler.admission_capacity_ms = accurate_target.batch_cost_ms(12)

    # 3. The front door owns the event-loop thread AND the scheduler's
    #    stepping thread: one context manager is the whole server.
    with FrontDoor(scheduler) as door:
        print(f"serving on http://127.0.0.1:{door.port}  "
              f"(admission capacity "
              f"{scheduler.admission_capacity_ms:.2f} priced ms)")
        trace = two_tier_trace(duration_ms=1_000.0, premium_period_ms=50.0,
                               bulk_burst_size=32,
                               bulk_burst_period_ms=250.0, seed=7)
        with FrontDoorClient("127.0.0.1", door.port) as client:
            # 4. Replay the trace at wall-clock pacing.  Shed requests
            #    come back as HTTP 429 -- outcomes, not errors.
            outcomes = replay(trace, client.submit_trace_request)
            queued, shed = [], 0
            for request, (status, payload) in outcomes:
                if status == 200:
                    queued.append((request, payload["request_id"]))
                else:
                    shed += 1
            waits = {0: [], 1: []}
            hit = {0: 0, 1: 0}
            done = {0: 0, 1: 0}
            for request, request_id in queued:
                _, result = client.result(request_id, wait=True,
                                          timeout_ms=60_000)
                done[request.priority] += 1
                hit[request.priority] += result["deadline_met"]
                waits[request.priority].append(result["wait_ms"])
            _, stats = client.stats()

    print(f"\n{len(trace)} requests offered, {shed} shed (HTTP 429)")
    for cls in (0, 1):
        degraded = stats["classes"][str(cls)]["degraded"]
        print(f"class {cls}: {done[cls]} completed, "
              f"{hit[cls]}/{done[cls]} deadlines hit, "
              f"{degraded} degraded, median wait "
              f"{np.median(waits[cls]):.1f} ms")
    print(f"flush reasons: {stats['flush_reasons']}")
    assert hit[0] == done[0], "premium tier missed a deadline"


if __name__ == "__main__":
    main()
