"""Serve two HeatViT operating points behind the deadline-aware scheduler.

A deterministic walk through the serving layer (`repro.serving`): two
keep-ratio operating points of the same backbone register with one
:class:`Scheduler`, requests arrive with mixed deadlines on a virtual
clock, and the fidelity-first router sends loose-deadline traffic to
the accurate model while tight deadlines degrade to the pruned one.
Batch formation is priced by a batch-aware cost model calibrated from
the FPGA simulator (Eq. 18 marginals plus the per-batch weight-loading
/ pipeline-fill overhead): a request near its deadline forces a flush,
bursts beyond the batch cap leave a carried remainder that merges with
the next wave.  Each flush prints the cost model's predicted batch
latency next to the simulator's direct measurement of the same batch.

Usage::

    PYTHONPATH=src python examples/serve_scheduler.py
"""

import numpy as np

from repro.core import HeatViT
from repro.data import SyntheticConfig, generate_dataset
from repro.hardware.latency_table import (FINE_KEEP_RATIO_GRID,
                                          build_cost_model,
                                          simulated_model_batch_ms)
from repro.serving import HighestFidelityRouter, Scheduler, VirtualClock
from repro.vit import VisionTransformer, ViTConfig


def main():
    rng = np.random.default_rng(0)

    # 1. One backbone, two serving operating points (paper Fig. 4 idea:
    #    the keep-ratio schedule is a latency dial).
    config = ViTConfig(name="serve-demo", image_size=32, patch_size=8,
                       embed_dim=48, depth=12, num_heads=4, num_classes=8)
    backbone = VisionTransformer(config, rng=rng)
    accurate = HeatViT(backbone, {6: 0.8}, rng=rng)
    pruned = HeatViT(backbone, {3: 0.7, 6: 0.5, 9: 0.35}, rng=rng)
    for model in (accurate, pruned):
        model.eval()

    # 2. Register both under a fidelity-first router: requests get the
    #    least-pruned session whose estimated batch cost meets their
    #    deadline.  The cost model is calibrated from the FPGA
    #    simulator for the served config (batch-size sweep -> per-batch
    #    overhead + Eq. 18 marginals); the fine keep-ratio grid keeps
    #    the deeply-pruned stages out of the Table IV clip region.
    cost_model = build_cost_model(config,
                                  keep_ratios=FINE_KEEP_RATIO_GRID,
                                  extra_tokens=accurate.non_patch_slots)
    clock = VirtualClock()
    scheduler = Scheduler(clock=clock, router=HighestFidelityRouter(),
                          batch_window_ms=5.0)
    scheduler.register("accurate", accurate, max_batch=16,
                       cost_model=cost_model)
    scheduler.register("pruned", pruned, max_batch=16,
                       cost_model=cost_model)
    print(f"cost model {cost_model.name!r}: batch overhead "
          f"{cost_model.batch_overhead_ms:.3f} ms/launch")
    for served in scheduler.sessions:
        print(f"session {served.name!r}: "
              f"{served.marginal_image_ms:.3f} ms/image marginal, "
              f"batch of 16 -> {served.batch_cost_ms(16):.3f} ms "
              f"(keep ratios {served.session.model.keep_ratios})")

    # 3. A scripted workload: a loose-deadline burst of small requests
    #    at t=0, then a stream of 12-image requests whose deadlines sit
    #    BETWEEN the two operating points' estimated costs -- they must
    #    degrade to the pruned session to be served in time.
    data = generate_dataset(SyntheticConfig(image_size=32, num_classes=8),
                            160, rng)
    cost = {s.name: s.batch_cost_ms for s in scheduler.sessions}
    loose = cost["accurate"](16) + 10.0
    tight = (cost["pruned"](12) + cost["accurate"](12)) / 2.0
    arrivals = [(0.0, data.images[i:i + 2], loose) for i in range(0, 16, 2)]
    arrivals += [(2.0 + 3.0 * i, data.images[16 + 12 * i:28 + 12 * i],
                  tight) for i in range(12)]

    print(f"\nworkload: {len(arrivals)} requests "
          f"(deadlines {loose:.2f} ms loose / {tight:.2f} ms tight)")
    pending = sorted(arrivals, key=lambda a: a[0])
    results = {}
    while pending or scheduler.pending_requests():
        now = clock.now()
        while pending and pending[0][0] <= now:
            _, images, deadline = pending.pop(0)
            scheduler.submit(images, deadline_ms=deadline)
        for result in scheduler.step():
            results[result.request_id] = result
        if pending or scheduler.pending_requests():
            clock.advance(1.0)

    # 4. What happened: flush events (with the cost model's predicted
    #    batch latency vs the simulator measuring the same batch
    #    directly) and per-session outcomes.
    models = {s.name: s.session.model for s in scheduler.sessions}
    print(f"\n{len(scheduler.events)} flushes on a "
          f"{scheduler.batch_window_ms:.0f} ms window "
          f"(predicted vs simulator-measured batch latency):")
    for event in scheduler.events:
        model = models[event.session]
        measured = simulated_model_batch_ms(
            config, event.num_images,
            selector_blocks=model.selector_blocks,
            keep_ratios=model.keep_ratios)
        error = 100.0 * abs(event.estimated_ms - measured) / measured
        print(f"  t={event.time_ms:5.1f} ms  {event.session:>8}  "
              f"{event.reason:>8}  {event.num_images:2d} images  "
              f"carried {event.carried_requests}  "
              f"predicted {event.estimated_ms:6.3f} ms / measured "
              f"{measured:6.3f} ms ({error:4.1f}% off)")
    for name in ("accurate", "pruned"):
        routed = [r for r in results.values() if r.session == name]
        met = sum(r.deadline_met for r in routed)
        waits = [r.wait_ms for r in routed] or [0.0]
        print(f"\n{name}: {len(routed)} requests, deadlines met "
              f"{met}/{len(routed)}, mean queue wait "
              f"{np.mean(waits):.2f} ms")
        if routed:
            latency = np.concatenate([r.latency_ms for r in routed])
            print(f"  estimated accelerator latency "
                  f"{latency.mean():.2f} ms/image "
                  f"(min {latency.min():.2f}, max {latency.max():.2f})")


if __name__ == "__main__":
    main()
