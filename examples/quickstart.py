"""Quickstart: build a HeatViT model, prune tokens, measure the savings.

Runs in well under a minute on a laptop: generates a small synthetic
dataset, wraps a (randomly initialized) ViT backbone with token
selectors, and shows the two execution paths -- masked training forward
and physically-pruned deployment forward -- together with the measured
per-image GMACs.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import nn
from repro.core import HeatViT, PruningRecord
from repro.data import SyntheticConfig, generate_dataset
from repro.vit import VisionTransformer, ViTConfig, model_gmacs


def main():
    rng = np.random.default_rng(0)

    # 1. A small ViT backbone (DeiT-style, laptop scale).
    config = ViTConfig(name="quickstart", image_size=32, patch_size=4,
                       embed_dim=48, depth=6, num_heads=3, num_classes=8)
    backbone = VisionTransformer(config, rng=rng)
    print(f"backbone: {config.name}, {config.depth} blocks, "
          f"{config.num_tokens} tokens, "
          f"{backbone.num_parameters():,} parameters, "
          f"{model_gmacs(config):.4f} GMACs dense")

    # 2. Insert token selectors before blocks 2 and 4 with target
    #    (average) keep ratios 0.7 and 0.4.
    model = HeatViT(backbone, {2: 0.7, 4: 0.4}, rng=rng)
    print(f"selectors at blocks {model.selector_blocks} with target "
          f"keep ratios {model.keep_ratios}")

    # 3. Some synthetic images (objects of varying size on clutter).
    data = generate_dataset(SyntheticConfig(image_size=32, num_classes=8),
                            count=8, rng=rng)

    # 4. Masked (training) forward: static shapes, differentiable.
    model.train()
    record = PruningRecord()
    logits = model(data.images, record=record)
    print(f"\nmasked forward logits: {logits.shape}")
    print(f"cumulative keep ratio per stage: "
          f"{[round(k, 3) for k in record.cumulative_keep]}")

    # 5. Gathered (deployment) forward: tokens physically removed,
    #    per-image adaptive token counts.
    model.eval()
    record = PruningRecord()
    model.forward_pruned(data.images, record=record)
    for stage, counts in enumerate(record.tokens_per_stage):
        print(f"stage {stage + 1} token counts per image: "
              f"{counts.tolist()}")

    # 6. Measured compute per image (Table II cost at actual counts).
    gmacs = model.measured_gmacs(data.images)
    print(f"\nper-image GMACs: {[round(float(g), 4) for g in gmacs]}")
    print(f"mean saving vs dense: "
          f"{100 * (1 - gmacs.mean() / model_gmacs(config)):.1f}%")


if __name__ == "__main__":
    main()
