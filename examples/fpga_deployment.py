"""FPGA deployment study: quantize a model and size the accelerator.

Walks the hardware side of the paper without any hardware:

1. 8-bit quantization + polynomial nonlinear approximations on a model;
2. tiling design-space search for the ZCU102 GEMM engine;
3. full accelerator reports (latency, FPS, resources, power, FPS/W) for
   the 16-bit dense baseline vs the 8-bit token-pruned HeatViT design;
4. the FPGA-vs-Jetson-TX2 comparison of Fig. 13.

Usage::

    python examples/fpga_deployment.py
"""

import numpy as np

from repro import nn
from repro.hardware import (ViTAcceleratorSim, baseline_design,
                            compare_platforms, heatvit_design,
                            search_tiling, speedup_breakdown)
from repro.quant import count_quantized_modules, quantize_model
from repro.vit import DEIT_TINY, StagePlan, VisionTransformer, ViTConfig


def quantization_demo():
    print("=== 8-bit quantization + approximations (functional) ===")
    config = ViTConfig(name="demo", image_size=16, patch_size=4,
                       embed_dim=24, depth=2, num_heads=3, num_classes=4)
    model = VisionTransformer(config, rng=np.random.default_rng(0))
    model.eval()
    images = np.random.default_rng(1).normal(size=(4, 3, 16, 16))
    with nn.no_grad():
        reference = model(images).data
    swapped = quantize_model(model, bits=8, approx_nonlinear=True)
    with nn.no_grad():
        quantized = model(images).data
    drift = np.abs(quantized - reference).max() / np.abs(reference).max()
    print(f"swapped {swapped} modules "
          f"({count_quantized_modules(model)} quantized GEMMs); "
          f"max relative logit drift {drift:.3f}\n")


def accelerator_demo():
    config = DEIT_TINY
    plan = StagePlan.canonical(config.depth, (0.70, 0.39, 0.21))

    print(f"=== Tiling design-space search ({config.name}, 8-bit) ===")
    for choice in search_tiling(config, bitwidth=8, top_k=3):
        print(f"Ti={choice.ti:3d} To={choice.to:3d} Th={choice.th:2d} "
              f"-> {choice.latency_ms:7.2f} ms  "
              f"(DSP {choice.utilization['dsp']:.0%}, "
              f"BRAM {choice.utilization['bram36']:.0%})")

    print(f"\n=== Accelerator reports ({config.name}) ===")
    base = ViTAcceleratorSim(config, baseline_design(config)).simulate()
    heat = ViTAcceleratorSim(config,
                             heatvit_design(config)).simulate(plan)
    for label, report in (("16-bit dense baseline", base),
                          ("8-bit HeatViT (0.70/0.39/0.21)", heat)):
        res = report.resources
        print(f"{label}:")
        print(f"  {report.fps:6.1f} FPS @ {report.power_w:.2f} W "
              f"-> {report.energy_efficiency:.2f} FPS/W")
        print(f"  DSP {res['dsp']} ({report.utilization['dsp']:.0%}), "
              f"LUT {res['lut'] / 1000:.1f}k "
              f"({report.utilization['lut']:.0%}), "
              f"BRAM36 {res['bram36']} "
              f"({report.utilization['bram36']:.0%})")
    print(f"total speedup: {heat.speedup_over(base):.2f}x "
          f"(paper: 3.46x for DeiT-T)")
    breakdown = speedup_breakdown(config, plan)
    print(f"breakdown: pruning {breakdown['pruning']:.2f}x x "
          f"quantization {breakdown['quantization']:.2f}x\n")

    print(f"=== Fig. 13: vs Jetson TX2 ({config.name}) ===")
    for result in compare_platforms(config, plan):
        mode = "pruned" if result.pruned else "dense "
        print(f"{result.platform:14s} {mode} "
              f"{result.fps:10.2f} FPS  "
              f"{result.speedup_vs_cpu_dense:8.1f}x vs CPU  "
              f"{result.energy_efficiency:8.3f} FPS/W")


def main():
    quantization_demo()
    accelerator_demo()


if __name__ == "__main__":
    main()
