"""End-to-end HeatViT training on the synthetic dataset.

Reproduces the paper's pipeline at laptop scale:

1. train a ViT backbone from scratch;
2. insert token selectors and fine-tune with the Eq. 21 objective
   (cross-entropy + distillation from the dense backbone +
   latency-sparsity loss toward the target keep ratios);
3. compare dense vs pruned accuracy and compute.

Takes a couple of minutes.  Usage::

    python examples/train_heatvit.py
"""

import numpy as np

from repro.core import (HeatViT, PruningRecord, TrainConfig,
                        train_backbone, train_heatvit)
from repro.data import SyntheticConfig, generate_dataset
from repro.vit import StagePlan, VisionTransformer, ViTConfig, model_gmacs


def main():
    # ------------------------------------------------------------------
    # Data and backbone
    # ------------------------------------------------------------------
    config = ViTConfig(name="heatvit-demo", image_size=24, patch_size=4,
                       embed_dim=36, depth=6, num_heads=3, num_classes=4)
    data_config = SyntheticConfig(image_size=24, num_classes=4,
                                  noise_std=0.08,
                                  object_scale_range=(0.25, 0.7),
                                  center_jitter=0.3)
    data = generate_dataset(data_config, 440, np.random.default_rng(2023))
    train, val = data.split(train_fraction=0.85,
                            rng=np.random.default_rng(0))

    backbone = VisionTransformer(config, rng=np.random.default_rng(7))
    print("training backbone from scratch ...")
    train_backbone(backbone, train.images, train.labels,
                   TrainConfig(epochs=25, batch_size=32, lr=2.5e-3,
                               weight_decay=0.01, seed=0),
                   val_images=val.images, val_labels=val.labels,
                   verbose=True)
    backbone.eval()
    dense_acc = backbone.accuracy(val.images, val.labels)

    # ------------------------------------------------------------------
    # Token-selector fine-tuning (Eq. 21 objective)
    # ------------------------------------------------------------------
    plan = StagePlan.canonical(config.depth, (0.7, 0.5, 0.35))
    model = HeatViT(backbone, dict(zip(plan.boundaries, plan.keep_ratios)),
                    rng=np.random.default_rng(1))
    print("\nfine-tuning token selectors ...")
    train_heatvit(model, train.images, train.labels,
                  TrainConfig(epochs=10, batch_size=32, lr=2e-3,
                              lambda_distill=0.5, lambda_ratio=2.0,
                              lambda_confidence=4.0, seed=1),
                  teacher=None, val_images=val.images,
                  val_labels=val.labels, verbose=True)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    model.eval()
    pruned_acc = model.accuracy(val.images, val.labels, pruned=True)
    record = PruningRecord()
    model.forward_pruned(val.images[:32], record=record)
    gmacs = model.measured_gmacs(val.images[:32])

    print(f"\ndense backbone accuracy : {dense_acc:.3f} "
          f"({model_gmacs(config):.4f} GMACs)")
    print(f"HeatViT pruned accuracy : {pruned_acc:.3f} "
          f"({gmacs.mean():.4f} GMACs avg per image)")
    print(f"compute reduction       : "
          f"{100 * (1 - gmacs.mean() / model_gmacs(config)):.1f}%")
    print(f"keep ratio per stage    : "
          f"{[round(k, 3) for k in record.cumulative_keep]} "
          f"(targets {plan.keep_ratios})")


if __name__ == "__main__":
    main()
