"""Tests for the quantization-error regularization claims (Sec. V-E)."""

import numpy as np
import pytest

from repro.approx import (gelu_approx, gelu_approx_derivative,
                          gelu_error_propagation, gelu_exact_derivative,
                          derivative_profile, softmax_approx,
                          softmax_error_bound, softmax_error_empirical)


class TestGeluDerivative:
    def test_exact_derivative_matches_numeric(self):
        x = np.linspace(-4, 4, 101)
        eps = 1e-6
        from repro.approx import gelu_exact
        numeric = (gelu_exact(x + eps) - gelu_exact(x - eps)) / (2 * eps)
        assert np.allclose(gelu_exact_derivative(x), numeric, atol=1e-6)

    def test_approx_derivative_matches_numeric(self):
        x = np.linspace(-4, 4, 101)
        eps = 1e-6
        numeric = (gelu_approx(x + eps) - gelu_approx(x - eps)) / (2 * eps)
        assert np.allclose(gelu_approx_derivative(x), numeric, atol=1e-5)

    def test_regularized_derivative_below_one(self):
        """The paper's central claim (Fig. 10): |dA_aprx/dx| < 1 with
        delta1 = 0.5, so quantization error shrinks through GELU."""
        x = np.linspace(-20, 20, 2001)
        assert np.abs(gelu_approx_derivative(x, delta1=0.5)).max() < 1.0

    def test_exact_derivative_exceeds_one(self):
        """...whereas the exact GELU amplifies error for some inputs."""
        x = np.linspace(-6, 6, 1001)
        assert np.abs(gelu_exact_derivative(x)).max() > 1.0

    def test_error_propagation_shrinks(self):
        x = np.linspace(-5, 5, 100)
        out_err = gelu_error_propagation(x, input_error=0.01)
        assert np.all(out_err < 0.01)

    def test_profile_shapes(self):
        x, exact, approx = derivative_profile()
        assert x.shape == exact.shape == approx.shape


class TestSoftmaxErrorBound:
    def test_bound_below_input_error(self, rng):
        """Eq. 17: 2*delta2*A0*(1-A0)*|de| < |de| for delta2 < 1."""
        probs = rng.uniform(0.01, 0.99, size=50)
        bound = softmax_error_bound(probs, input_error=0.1)
        assert np.all(bound < 0.1)

    def test_bound_maximal_at_half(self):
        assert (softmax_error_bound(0.5, 1.0)
                > softmax_error_bound(0.1, 1.0))

    def test_empirical_error_within_analytic_bound(self, rng):
        """The measured total output perturbation must respect Eq. 17
        (first-order bound, so allow slack for curvature)."""
        x = rng.normal(size=(10,))
        de = 1e-4
        probs = softmax_approx(x, delta2=0.5)
        a0 = probs[3] / 0.5          # normalized probability of index 3
        bound = 2 * 0.5 * de * a0 * (1 - a0)
        measured = softmax_error_empirical(x, index=3, input_error=de,
                                           delta2=0.5)
        assert measured <= bound * 1.5 + 1e-9

    def test_empirical_error_smaller_than_exact_softmax(self, rng):
        """Approximated softmax propagates less error than the exact
        one -- the regularization effect end to end."""
        x = rng.normal(size=(12,)) * 2
        de = 1e-3
        approx_err = softmax_error_empirical(x, 0, de, approx=True)
        exact_err = softmax_error_empirical(x, 0, de, approx=False)
        assert approx_err < exact_err
