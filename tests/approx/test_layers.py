"""Tests for the differentiable (Tensor) approximation layers."""

import numpy as np
import pytest

from repro import nn
from repro.approx import (ApproxGELU, ApproxSigmoid, ApproxSoftmax,
                          gelu_approx, gelu_approx_t, sigmoid_plan,
                          sigmoid_plan_t, softmax_approx, softmax_approx_t)
from repro.nn.tensor import Tensor

from tests.conftest import finite_difference


class TestNumpyConsistency:
    def test_gelu_matches(self, rng):
        x = rng.normal(size=(4, 7)) * 3
        assert np.allclose(gelu_approx_t(Tensor(x)).data, gelu_approx(x))

    def test_softmax_matches(self, rng):
        x = rng.normal(size=(3, 9)) * 2
        assert np.allclose(softmax_approx_t(Tensor(x)).data,
                           softmax_approx(x), atol=1e-12)

    def test_sigmoid_matches(self, rng):
        x = rng.normal(size=(50,)) * 4
        assert np.allclose(sigmoid_plan_t(Tensor(x)).data, sigmoid_plan(x))


class TestGradients:
    def test_gelu_grad_matches_fd(self, rng):
        x0 = rng.normal(size=(6,))
        x = Tensor(x0.copy(), requires_grad=True)
        gelu_approx_t(x).sum().backward()
        numeric = finite_difference(
            lambda v: float(gelu_approx_t(Tensor(v)).sum().data), x0)
        assert np.allclose(x.grad, numeric, atol=1e-5)

    def test_softmax_grad_exists(self, rng):
        x = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        (softmax_approx_t(x) ** 2).sum().backward()
        assert x.grad is not None
        assert np.all(np.isfinite(x.grad))

    def test_sigmoid_grad_piecewise_slopes(self):
        x = Tensor(np.array([0.5, 1.5, 3.0, 6.0]), requires_grad=True)
        sigmoid_plan_t(x).sum().backward()
        assert np.allclose(x.grad, [0.25, 0.125, 0.03125, 0.0])


class TestModules:
    def test_drop_in_replacements(self, rng):
        x = Tensor(rng.normal(size=(2, 6)))
        assert ApproxGELU()(x).shape == (2, 6)
        assert ApproxSigmoid()(x).shape == (2, 6)
        out = ApproxSoftmax()(x)
        assert np.allclose(out.data.sum(-1), 0.5)

    def test_finetune_through_approx_gelu(self, rng):
        """A model can be fine-tuned with the approximation in the loop."""
        model = nn.Sequential(nn.Linear(4, 8, rng=rng), ApproxGELU(),
                              nn.Linear(8, 1, rng=rng))
        opt = nn.SGD(model.parameters(), lr=0.05)
        x = Tensor(rng.normal(size=(16, 4)))
        target = Tensor(rng.normal(size=(16, 1)))
        losses = []
        for _ in range(30):
            from repro.nn import functional as F
            loss = F.mse_loss(model(x), target)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]
