"""Tests for the polynomial approximations (Sec. V-D)."""

import numpy as np
import pytest

from repro.approx import (DEFAULT_DELTA2, erf_approx, exp_approx,
                          gelu_approx, gelu_exact, sigmoid_exact,
                          sigmoid_plan, softmax_approx, softmax_exact)
from scipy import special


class TestErfApprox:
    def test_close_to_exact_without_regularization(self):
        # The I-BERT second-order fit has ~0.1 worst-case error near 0;
        # it is harmless because GELU multiplies by x/2 (see the GELU
        # test below, which is 5x tighter).
        x = np.linspace(-4, 4, 400)
        err = np.abs(erf_approx(x, delta1=1.0) - special.erf(x))
        assert err.max() < 0.1

    def test_odd_symmetry(self, rng):
        x = rng.normal(size=100) * 3
        assert np.allclose(erf_approx(x), -erf_approx(-x))

    def test_saturation(self):
        assert erf_approx(10.0, delta1=1.0) == pytest.approx(1.0, abs=1e-3)
        assert erf_approx(3.0, delta1=1.0) == erf_approx(100.0, delta1=1.0)

    def test_delta_scales_output(self):
        x = np.linspace(-3, 3, 50)
        assert np.allclose(erf_approx(x, delta1=0.5),
                           0.5 * erf_approx(x, delta1=1.0))


class TestGeluApprox:
    def test_close_to_exact_without_regularization(self):
        x = np.linspace(-6, 6, 500)
        err = np.abs(gelu_approx(x, delta1=1.0) - gelu_exact(x))
        assert err.max() < 0.05

    def test_regularized_is_shrunk_for_positive(self):
        x = np.linspace(0.5, 6, 100)
        assert np.all(gelu_approx(x, delta1=0.5) < gelu_exact(x))

    def test_zero_fixed_point(self):
        assert gelu_approx(0.0) == 0.0

    def test_negative_tail_vanishes(self):
        assert abs(gelu_approx(-10.0, delta1=1.0)) < 1e-6


class TestExpApprox:
    def test_accuracy_on_negative_range(self):
        x = np.linspace(-20, 0, 1000)
        rel = np.abs(exp_approx(x) - np.exp(x)) / np.exp(x)
        assert rel.max() < 0.04

    def test_rejects_positive_inputs(self):
        with pytest.raises(ValueError):
            exp_approx(np.array([0.5]))

    def test_monotone_nondecreasing(self):
        x = np.linspace(-10, 0, 500)
        out = exp_approx(x)
        assert np.all(np.diff(out) >= -1e-12)

    def test_exact_at_zero(self):
        # p = 0, z = 0: 0.3585 * 1.353^2 + 0.344 ~= 1.0003
        assert exp_approx(0.0) == pytest.approx(1.0, abs=2e-3)


class TestSoftmaxApprox:
    def test_sums_to_delta2(self, rng):
        x = rng.normal(size=(6, 12)) * 4
        out = softmax_approx(x)
        assert np.allclose(out.sum(axis=-1), DEFAULT_DELTA2)

    def test_nonnegative(self, rng):
        assert np.all(softmax_approx(rng.normal(size=(5, 9))) >= 0)

    def test_preserves_ranking(self, rng):
        x = rng.normal(size=(20,)) * 3
        approx_order = np.argsort(softmax_approx(x))
        exact_order = np.argsort(softmax_exact(x))
        assert np.array_equal(approx_order, exact_order)

    def test_matches_exact_shape_at_delta_one(self, rng):
        x = rng.normal(size=(4, 8))
        approx = softmax_approx(x, delta2=1.0)
        exact = softmax_exact(x)
        assert np.abs(approx - exact).max() < 0.02

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(8,))
        assert np.allclose(softmax_approx(x), softmax_approx(x + 123.0))


class TestSigmoidPlan:
    def test_close_to_exact(self):
        x = np.linspace(-8, 8, 1000)
        assert np.abs(sigmoid_plan(x) - sigmoid_exact(x)).max() < 0.02

    def test_symmetry(self, rng):
        x = rng.normal(size=100) * 4
        assert np.allclose(sigmoid_plan(x) + sigmoid_plan(-x), 1.0)

    def test_saturation(self):
        assert sigmoid_plan(6.0) == 1.0
        assert sigmoid_plan(-6.0) == 0.0

    def test_midpoint(self):
        assert sigmoid_plan(0.0) == pytest.approx(0.5)

    def test_monotone_up_to_breakpoint_step(self):
        # The published PLAN uses the hardware-friendly breakpoint 2.375
        # (not the continuity point 7/3), leaving an authentic ~0.004
        # downward step there; elsewhere the function is non-decreasing.
        x = np.linspace(-8, 8, 500)
        assert np.all(np.diff(sigmoid_plan(x)) >= -0.004)
