"""Tests for model-level quantization (deployment surgery)."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor
from repro.quant import (QuantizedLinear, count_quantized_modules,
                         fake_quantize_tensor, quantize_model)
from repro.vit import VisionTransformer, ViTConfig


class TestQuantizedLinear:
    def test_close_to_float(self, rng):
        linear = nn.Linear(16, 8, rng=rng)
        qlinear = QuantizedLinear.from_linear(linear)
        x = rng.normal(size=(4, 16))
        ref = linear(Tensor(x)).data
        out = qlinear(Tensor(x)).data
        scale = np.abs(ref).max()
        assert np.abs(out - ref).max() / scale < 0.05

    def test_batched_inputs(self, rng):
        qlinear = QuantizedLinear.from_linear(nn.Linear(6, 3, rng=rng))
        out = qlinear(Tensor(rng.normal(size=(2, 5, 6))))
        assert out.shape == (2, 5, 3)

    def test_no_bias(self, rng):
        linear = nn.Linear(4, 2, bias=False, rng=rng)
        qlinear = QuantizedLinear.from_linear(linear)
        assert qlinear.bias_data is None
        out = qlinear(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 2)

    def test_weights_are_integers(self, rng):
        qlinear = QuantizedLinear.from_linear(nn.Linear(4, 2, rng=rng))
        assert qlinear.weight_q.dtype == np.int64
        assert np.abs(qlinear.weight_q).max() <= 127


class TestFakeQuantizeTensor:
    def test_straight_through_gradient(self, rng):
        x = Tensor(rng.normal(size=(5,)), requires_grad=True)
        fake_quantize_tensor(x).sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_forward_is_quantized(self, rng):
        x = Tensor(rng.normal(size=(100,)))
        out = fake_quantize_tensor(x, bits=4).data
        assert len(np.unique(out)) <= 15


class TestQuantizeModel:
    @pytest.fixture()
    def model_and_images(self, rng):
        config = ViTConfig(name="q", image_size=16, patch_size=4,
                           embed_dim=24, depth=2, num_heads=3,
                           num_classes=4)
        model = VisionTransformer(config, rng=rng)
        model.eval()
        return model, rng.normal(size=(4, 3, 16, 16))

    def test_all_linears_swapped(self, model_and_images):
        model, _ = model_and_images
        linears = sum(1 for m in model.modules()
                      if isinstance(m, nn.Linear))
        quantize_model(model)
        assert count_quantized_modules(model) == linears
        assert not any(type(m) is nn.Linear for m in model.modules())

    def test_logits_close_to_float(self, model_and_images):
        model, images = model_and_images
        with nn.no_grad():
            ref = model(images).data
        quantize_model(model)
        with nn.no_grad():
            out = model(images).data
        rel = np.abs(out - ref).max() / np.abs(ref).max()
        assert rel < 0.25

    def test_predictions_mostly_preserved(self, model_and_images):
        model, images = model_and_images
        with nn.no_grad():
            ref = model(images).data.argmax(-1)
        quantize_model(model)
        with nn.no_grad():
            out = model(images).data.argmax(-1)
        assert (ref == out).mean() >= 0.75

    def test_gelu_swapped_when_requested(self, model_and_images):
        from repro.approx import ApproxGELU
        model, _ = model_and_images
        quantize_model(model, approx_nonlinear=True)
        assert any(isinstance(m, ApproxGELU) for m in model.modules())
        assert not any(type(m) is nn.GELU for m in model.modules())

    def test_no_approx_when_disabled(self, model_and_images):
        model, _ = model_and_images
        quantize_model(model, approx_nonlinear=False)
        assert any(type(m) is nn.GELU for m in model.modules())

    def test_softmax_swapped_when_requested(self, model_and_images):
        """Regression: the attention Softmax modules used to survive
        the surgery even though the docstring promised the polynomial
        swap -- the simulation then mixed exact softmax with quantized
        GEMMs."""
        from repro.approx import ApproxSoftmax
        model, _ = model_and_images
        quantize_model(model, approx_nonlinear=True)
        swapped = [m for m in model.modules()
                   if isinstance(m, ApproxSoftmax)]
        assert len(swapped) == model.config.depth
        assert not any(type(m) is nn.Softmax for m in model.modules())

    def test_linear_subclasses_swapped(self, rng):
        """Regression: the surgery matched ``type(child) is Linear``, so
        Linear subclasses slipped through unquantized."""
        class GatedLinear(nn.Linear):
            pass

        class Holder(nn.Module):
            def __init__(self):
                super().__init__()
                self.proj = GatedLinear(4, 2, rng=rng)

        holder = Holder()
        assert quantize_model(holder) == 1
        assert isinstance(holder.proj, QuantizedLinear)

    def test_skip_opt_out(self, rng):
        class Calibrated(nn.Linear):
            pass

        class Holder(nn.Module):
            def __init__(self):
                super().__init__()
                self.proj = nn.Linear(4, 2, rng=rng)
                self.head = Calibrated(4, 2, rng=rng)

        holder = Holder()
        assert quantize_model(holder, skip=(Calibrated,)) == 1
        assert isinstance(holder.proj, QuantizedLinear)
        assert isinstance(holder.head, Calibrated)

    def test_per_channel_child_selection(self, model_and_images):
        from repro.quant import PER_CHANNEL_CHILDREN
        model, _ = model_and_images
        quantize_model(model, per_channel=PER_CHANNEL_CHILDREN)
        for module in model.modules():
            for name, child in module._modules.items():
                if isinstance(child, QuantizedLinear):
                    assert child.per_channel == (
                        name in PER_CHANNEL_CHILDREN), name
