"""Tests for quantization sweeps and per-channel quantization."""

import numpy as np
import pytest

from repro.quant import (bitwidth_sweep, per_channel_error,
                         per_channel_quantize)
from repro.vit import VisionTransformer, ViTConfig


class TestPerChannel:
    def test_quantized_range(self, rng):
        weight = rng.normal(size=(16, 8))
        q, scales = per_channel_quantize(weight)
        assert q.shape == weight.shape
        assert scales.shape == (8,)
        assert np.abs(q).max() <= 127

    def test_reconstruction(self, rng):
        weight = rng.normal(size=(16, 8))
        q, scales = per_channel_quantize(weight)
        err = np.abs(q * scales - weight)
        assert err.max() <= scales.max() / 2 + 1e-12

    def test_beats_per_tensor_on_skewed_weights(self, rng):
        """When channel magnitudes differ wildly, per-channel scaling
        must reduce the mean error."""
        weight = rng.normal(size=(32, 4))
        weight[:, 0] *= 100.0      # one dominant channel
        per_tensor, per_channel = per_channel_error(weight)
        assert per_channel < per_tensor

    def test_zero_channel_handled(self):
        weight = np.zeros((4, 2))
        weight[:, 1] = 1.0
        q, scales = per_channel_quantize(weight)
        assert np.all(np.isfinite(scales))
        assert np.allclose(q[:, 0], 0)

    def test_rejects_non_2d(self, rng):
        with pytest.raises(ValueError):
            per_channel_quantize(rng.normal(size=(2, 3, 4)))


class TestBitWidthSweep:
    @pytest.fixture()
    def setup(self, rng):
        config = ViTConfig(name="sweep", image_size=16, patch_size=4,
                           embed_dim=24, depth=2, num_heads=3,
                           num_classes=4)

        def make_model():
            return VisionTransformer(config,
                                     rng=np.random.default_rng(0))

        images = rng.normal(size=(8, 3, 16, 16))
        model = make_model()
        model.eval()
        from repro import nn
        with nn.no_grad():
            labels = model(images).data.argmax(-1)
        return make_model, images, labels

    def test_drift_grows_as_bits_shrink(self, setup):
        make_model, images, labels = setup
        results = bitwidth_sweep(make_model, images, labels,
                                 bit_widths=(16, 8, 4),
                                 approx_nonlinear=False)
        drifts = [r.logit_drift for r in results]
        assert drifts[0] < drifts[-1]
        assert results[0].bits == 16

    def test_8bit_preserves_most_predictions(self, setup):
        make_model, images, labels = setup
        results = bitwidth_sweep(make_model, images, labels,
                                 bit_widths=(8,),
                                 approx_nonlinear=False)
        assert results[0].accuracy >= 0.75

    def test_4bit_degrades(self, setup):
        """The paper picks 8-bit for a reason: far lower precisions
        visibly corrupt logits on an uncalibrated model."""
        make_model, images, labels = setup
        results = bitwidth_sweep(make_model, images, labels,
                                 bit_widths=(8, 4),
                                 approx_nonlinear=False)
        assert results[1].logit_drift > results[0].logit_drift * 2
