"""Tests for fixed-point quantization primitives."""

import numpy as np
import pytest

from repro.quant import (QuantParams, calibrate_minmax, dequantize,
                         fake_quantize, integer_matmul, quantization_error,
                         quantize)


class TestQuantParams:
    def test_qrange_8bit(self):
        params = QuantParams(scale=0.1, bits=8)
        assert params.qmax == 127
        assert params.qmin == -127

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantParams(scale=0.0)
        with pytest.raises(ValueError):
            QuantParams(scale=1.0, bits=1)


class TestRoundTrip:
    def test_error_bounded_by_half_scale(self, rng):
        x = rng.normal(size=(100,)) * 3
        params = calibrate_minmax(x)
        err = quantization_error(x, params=params)
        assert err.max() <= params.scale / 2 + 1e-12

    def test_integers_in_range(self, rng):
        x = rng.normal(size=(50,)) * 10
        params = calibrate_minmax(x)
        q = quantize(x, params)
        assert q.max() <= 127 and q.min() >= -127

    def test_clipping_out_of_range_values(self):
        params = QuantParams(scale=1.0, bits=8)
        q = quantize(np.array([1000.0, -1000.0]), params)
        assert q.tolist() == [127, -127]

    def test_extreme_value_exact(self, rng):
        x = rng.normal(size=(20,))
        x[7] = np.abs(x).max() * 2       # make index 7 the abs max
        params = calibrate_minmax(x)
        round_trip = fake_quantize(x, params=params)
        assert round_trip[7] == pytest.approx(x[7], rel=1e-12)

    def test_more_bits_less_error(self, rng):
        x = rng.normal(size=(200,))
        err8 = quantization_error(x, bits=8).mean()
        err4 = quantization_error(x, bits=4).mean()
        assert err8 < err4

    def test_zero_tensor(self):
        params = calibrate_minmax(np.zeros(5))
        assert params.scale > 0
        assert np.allclose(fake_quantize(np.zeros(5), params=params), 0.0)


class TestIntegerMatmul:
    def test_matches_float(self, rng):
        a = rng.integers(-127, 128, size=(4, 6))
        b = rng.integers(-127, 128, size=(6, 3))
        assert np.array_equal(integer_matmul(a, b), a @ b)

    def test_overflow_detection(self):
        a = np.full((1, 200_000), 127, dtype=np.int64)
        b = np.full((200_000, 1), 127, dtype=np.int64)
        with pytest.raises(OverflowError):
            integer_matmul(a, b, accumulator_bits=32)

    def test_32bit_safe_for_vit_dimensions(self, rng):
        """8-bit x 8-bit products over the largest ViT reduction dim
        (DeiT-B FFN: 3072) fit comfortably in 32-bit accumulators."""
        a = rng.integers(-127, 128, size=(2, 3072))
        b = rng.integers(-127, 128, size=(3072, 2))
        integer_matmul(a, b, accumulator_bits=32)   # should not raise
