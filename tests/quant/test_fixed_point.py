"""Tests for fixed-point quantization primitives."""

import numpy as np
import pytest

from repro.quant import (ACCUMULATOR_WIDTHS, QuantParams, calibrate_minmax,
                         dequantize, fake_quantize, integer_matmul,
                         quantization_error, quantize,
                         safe_accumulator_bits)


class TestQuantParams:
    def test_qrange_8bit(self):
        params = QuantParams(scale=0.1, bits=8)
        assert params.qmax == 127
        assert params.qmin == -127

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantParams(scale=0.0)
        with pytest.raises(ValueError):
            QuantParams(scale=1.0, bits=1)


class TestRoundTrip:
    def test_error_bounded_by_half_scale(self, rng):
        x = rng.normal(size=(100,)) * 3
        params = calibrate_minmax(x)
        err = quantization_error(x, params=params)
        assert err.max() <= params.scale / 2 + 1e-12

    def test_integers_in_range(self, rng):
        x = rng.normal(size=(50,)) * 10
        params = calibrate_minmax(x)
        q = quantize(x, params)
        assert q.max() <= 127 and q.min() >= -127

    def test_clipping_out_of_range_values(self):
        params = QuantParams(scale=1.0, bits=8)
        q = quantize(np.array([1000.0, -1000.0]), params)
        assert q.tolist() == [127, -127]

    def test_extreme_value_exact(self, rng):
        x = rng.normal(size=(20,))
        x[7] = np.abs(x).max() * 2       # make index 7 the abs max
        params = calibrate_minmax(x)
        round_trip = fake_quantize(x, params=params)
        assert round_trip[7] == pytest.approx(x[7], rel=1e-12)

    def test_more_bits_less_error(self, rng):
        x = rng.normal(size=(200,))
        err8 = quantization_error(x, bits=8).mean()
        err4 = quantization_error(x, bits=4).mean()
        assert err8 < err4

    def test_zero_tensor(self):
        params = calibrate_minmax(np.zeros(5))
        assert params.scale > 0
        assert np.allclose(fake_quantize(np.zeros(5), params=params), 0.0)


class TestCalibrationGuards:
    """Regression: a single NaN used to slip past the ``scale <= 0``
    guard (NaN comparisons are all False) and return parameters that
    quantized every element to NaN."""

    def test_nan_input_raises(self):
        with pytest.raises(ValueError, match="non-finite"):
            calibrate_minmax(np.array([1.0, np.nan, 2.0]))

    def test_inf_input_raises(self):
        with pytest.raises(ValueError, match="non-finite"):
            calibrate_minmax(np.array([1.0, -np.inf]))

    def test_denormal_input_keeps_scale_positive(self):
        params = calibrate_minmax(np.array([5e-324]))
        assert params.scale > 0
        assert np.isfinite(fake_quantize(np.array([5e-324]),
                                         params=params)).all()


class TestSafeAccumulatorBits:
    def test_8bit_vit_reductions_fit_32(self):
        # The paper's configuration: every DeiT reduction length
        # (up to the 3072-wide FFN) fits the 32-bit DSP accumulator.
        assert safe_accumulator_bits(8, 3072) == 32

    def test_8bit_long_reduction_escalates_to_48(self):
        # 127^2 * K exceeds the signed 32-bit range just past
        # K = (2^31 - 1) // 127^2 = 133_144.
        assert safe_accumulator_bits(8, 133_144) == 32
        assert safe_accumulator_bits(8, 133_145) == 48

    def test_16bit_long_reduction_needs_64(self):
        assert safe_accumulator_bits(16, 2 ** 20) == 64

    def test_beyond_widest_raises(self):
        with pytest.raises(OverflowError, match="widest supported"):
            safe_accumulator_bits(32, 10 ** 9)

    def test_invalid_reduction_length(self):
        with pytest.raises(ValueError):
            safe_accumulator_bits(8, 0)

    def test_consistent_with_integer_matmul(self):
        """The width it picks really does hold the worst-case product."""
        for bits, k in [(4, 64), (8, 1024), (8, 200_000), (12, 4096)]:
            width = safe_accumulator_bits(bits, k)
            assert width in ACCUMULATOR_WIDTHS
            qmax = 2 ** (bits - 1) - 1
            a = np.full((1, k), qmax, dtype=np.int64)
            integer_matmul(a, -a.T, accumulator_bits=width)  # no raise


class TestIntegerMatmul:
    def test_matches_float(self, rng):
        a = rng.integers(-127, 128, size=(4, 6))
        b = rng.integers(-127, 128, size=(6, 3))
        assert np.array_equal(integer_matmul(a, b), a @ b)

    def test_overflow_detection(self):
        a = np.full((1, 200_000), 127, dtype=np.int64)
        b = np.full((200_000, 1), 127, dtype=np.int64)
        with pytest.raises(OverflowError):
            integer_matmul(a, b, accumulator_bits=32)

    def test_overflow_reports_offending_magnitude(self):
        a = np.full((1, 300), 127, dtype=np.int64)
        b = np.full((300, 1), 127, dtype=np.int64)
        with pytest.raises(OverflowError,
                           match=str(127 * 127 * 300)):
            integer_matmul(a, b, accumulator_bits=16)

    def test_32bit_safe_for_vit_dimensions(self, rng):
        """8-bit x 8-bit products over the largest ViT reduction dim
        (DeiT-B FFN: 3072) fit comfortably in 32-bit accumulators."""
        a = rng.integers(-127, 128, size=(2, 3072))
        b = rng.integers(-127, 128, size=(3072, 2))
        integer_matmul(a, b, accumulator_bits=32)   # should not raise
