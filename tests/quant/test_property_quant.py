"""Property-based tests (hypothesis) for the quantization substrate.

Three contracts the int8 serving backend leans on, checked over random
tensors instead of hand-picked examples:

* the quantize/dequantize round trip is within half a scale step of
  the input, elementwise (symmetric rounding never loses more);
* per-channel weight scaling never reconstructs worse than per-tensor
  (it has strictly more freedom, channel by channel);
* the integer GEMM equals the float GEMM of the dequantized operands
  after rescale, exactly -- the identity the fast path's
  BLAS-on-integer-valued-floats trick and the bitwise simulation
  parity gate both rest on.

Plus a tiny end-to-end ``bitwidth_sweep`` smoke so the sweep driver
(the paper's Fig. 9 ablation) stays runnable in CI.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (bitwidth_sweep, calibrate_minmax, dequantize,
                         integer_matmul, per_channel_quantize,
                         quantization_error, quantize)
from repro.vit import VisionTransformer, ViTConfig

finite_floats = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False,
                          width=64)

tensor_strategy = st.lists(finite_floats, min_size=1, max_size=64).map(
    lambda vals: np.asarray(vals, dtype=np.float64))


def matrix_strategy(max_rows=8, max_cols=8):
    return st.tuples(
        st.integers(1, max_rows), st.integers(1, max_cols),
        st.integers(0, 2 ** 31 - 1),
    ).map(lambda spec: np.random.default_rng(spec[2])
          .normal(scale=3.0, size=(spec[0], spec[1])))


class TestRoundTripProperty:
    @given(x=tensor_strategy, bits=st.integers(2, 16))
    @settings(max_examples=200, deadline=None)
    def test_error_at_most_half_scale(self, x, bits):
        params = calibrate_minmax(x, bits=bits)
        err = quantization_error(x, params=params)
        # Half a step from rounding; the tiny slack covers the float
        # division in ``x / scale`` (one ulp, not half a step).
        assert np.all(err <= params.scale / 2 * (1 + 1e-9) + 1e-300)

    @given(x=tensor_strategy, bits=st.integers(2, 16))
    @settings(max_examples=100, deadline=None)
    def test_quantized_values_in_range(self, x, bits):
        params = calibrate_minmax(x, bits=bits)
        q = quantize(x, params)
        assert q.max() <= params.qmax and q.min() >= params.qmin


class TestPerChannelProperty:
    @given(weight=matrix_strategy(), bits=st.integers(2, 12))
    @settings(max_examples=100, deadline=None)
    def test_bound_never_worse_than_per_tensor(self, weight, bits):
        """Per-channel tightens the worst-case *bound*, not every
        realized draw: a lucky per-tensor rounding can beat an unlucky
        per-channel one, so the contract is that no channel scale
        exceeds the tensor scale and every element honors its own
        channel's half-step bound."""
        q, scales = per_channel_quantize(weight, bits=bits)
        params = calibrate_minmax(weight, bits=bits)
        assert scales.max() <= params.scale * (1 + 1e-9)
        err = np.abs(weight - q * scales)
        assert np.all(err <= scales / 2 * (1 + 1e-9) + 1e-300)


class TestIntegerMatmulProperty:
    @given(spec=st.tuples(st.integers(1, 6), st.integers(1, 16),
                          st.integers(1, 6), st.integers(0, 2 ** 31 - 1)))
    @settings(max_examples=100, deadline=None)
    def test_matches_float_gemm_after_rescale(self, spec):
        m, k, n, seed = spec
        rng = np.random.default_rng(seed)
        a, b = rng.normal(size=(m, k)), rng.normal(size=(k, n))
        pa, pb = calibrate_minmax(a), calibrate_minmax(b)
        qa, qb = quantize(a, pa), quantize(b, pb)
        out = integer_matmul(qa, qb, accumulator_bits=64)
        # int64 accumulation rescaled == float GEMM of the dequantized
        # operands: both are exact integer arithmetic below 2^53.
        ref = dequantize(qa, pa) @ dequantize(qb, pb)
        np.testing.assert_allclose(out * (pa.scale * pb.scale), ref,
                                   rtol=1e-12, atol=1e-12)

    @given(spec=st.tuples(st.integers(1, 5), st.integers(1, 12),
                          st.integers(1, 5), st.integers(0, 2 ** 31 - 1)))
    @settings(max_examples=50, deadline=None)
    def test_gemm_of_fake_quantized_is_exact(self, spec):
        """The serving fast path's core identity: a float64 GEMM on
        integer-valued operands is bitwise the integer GEMM."""
        m, k, n, seed = spec
        rng = np.random.default_rng(seed)
        a, b = rng.normal(size=(m, k)), rng.normal(size=(k, n))
        qa = quantize(a, calibrate_minmax(a)).astype(np.float64)
        qb = quantize(b, calibrate_minmax(b)).astype(np.float64)
        float_gemm = qa @ qb
        int_gemm = integer_matmul(qa.astype(np.int64), qb.astype(np.int64),
                                  accumulator_bits=64)
        assert np.array_equal(float_gemm, int_gemm.astype(np.float64))


class TestBitwidthSweepSmoke:
    def test_tiny_sweep_runs_and_orders_drift(self, rng):
        config = ViTConfig(name="sweep-smoke", image_size=16, patch_size=8,
                           embed_dim=16, depth=1, num_heads=2,
                           num_classes=4)

        def make_model():
            return VisionTransformer(config, rng=np.random.default_rng(7))

        images = rng.normal(size=(4, 3, 16, 16))
        labels = rng.integers(0, 4, size=4)
        results = bitwidth_sweep(make_model, images, labels,
                                 bit_widths=(8, 4))
        by_bits = {r.bits: r for r in results}
        assert set(by_bits) == {4, 8}
        assert by_bits[8].logit_drift <= by_bits[4].logit_drift
