"""Tests for data augmentations."""

import numpy as np
import pytest

from repro.data import (Compose, add_gaussian_noise, color_jitter,
                        random_crop_pad, random_horizontal_flip,
                        random_vertical_flip, standard_augmentation)


@pytest.fixture()
def batch(rng):
    return rng.normal(size=(8, 3, 16, 16))


class TestFlips:
    def test_horizontal_flip_is_involution(self, batch):
        rng = np.random.default_rng(0)
        flipped = random_horizontal_flip(batch, rng, probability=1.0)
        rng = np.random.default_rng(0)
        double = random_horizontal_flip(flipped, rng, probability=1.0)
        assert np.allclose(double, batch)

    def test_probability_zero_is_identity(self, batch, rng):
        out = random_horizontal_flip(batch, rng, probability=0.0)
        assert np.allclose(out, batch)

    def test_vertical_flip_moves_rows(self, batch, rng):
        out = random_vertical_flip(batch, rng, probability=1.0)
        assert np.allclose(out[:, :, 0, :], batch[:, :, -1, :])

    def test_original_not_mutated(self, batch, rng):
        copy = batch.copy()
        random_horizontal_flip(batch, rng, probability=1.0)
        assert np.allclose(batch, copy)


class TestCropPad:
    def test_shape_preserved(self, batch, rng):
        out = random_crop_pad(batch, rng, padding=2)
        assert out.shape == batch.shape

    def test_center_content_survives(self, batch, rng):
        """With padding p, the central region shifted by at most p must
        come from the original image."""
        out = random_crop_pad(batch, rng, padding=1)
        # Every output pixel row must exist somewhere in the padded
        # original; check global statistics are close.
        assert abs(out.mean() - batch.mean()) < 0.2


class TestJitterAndNoise:
    def test_color_jitter_preserves_shape(self, batch, rng):
        assert color_jitter(batch, rng).shape == batch.shape

    def test_zero_jitter_is_identity(self, batch, rng):
        out = color_jitter(batch, rng, brightness=0.0, contrast=0.0)
        assert np.allclose(out, batch)

    def test_noise_changes_values(self, batch, rng):
        out = add_gaussian_noise(batch, rng, std=0.1)
        delta = out - batch
        assert 0.05 < delta.std() < 0.2

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            add_gaussian_noise(np.zeros((3, 16, 16)), rng)


class TestCompose:
    def test_pipeline_runs(self, batch):
        pipeline = standard_augmentation()
        out = pipeline(batch, np.random.default_rng(0))
        assert out.shape == batch.shape
        assert not np.allclose(out, batch)

    def test_deterministic_given_rng(self, batch):
        pipeline = standard_augmentation()
        a = pipeline(batch, np.random.default_rng(5))
        b = pipeline(batch, np.random.default_rng(5))
        assert np.allclose(a, b)

    def test_compose_order(self, batch):
        trace = []
        pipeline = Compose([
            lambda imgs, rng: (trace.append("first"), imgs)[1],
            lambda imgs, rng: (trace.append("second"), imgs)[1],
        ])
        pipeline(batch, np.random.default_rng(0))
        assert trace == ["first", "second"]
