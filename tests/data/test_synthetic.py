"""Tests for the synthetic cluttered-object dataset."""

import numpy as np
import pytest

from repro.data import (NUM_COLORS, NUM_SHAPES, SyntheticConfig,
                        SyntheticDataset, generate_dataset,
                        patch_object_fraction)


class TestGeneration:
    def test_shapes(self, rng):
        data = generate_dataset(SyntheticConfig(image_size=32), 10, rng)
        assert data.images.shape == (10, 3, 32, 32)
        assert data.labels.shape == (10,)
        assert data.masks.shape == (10, 32, 32)
        assert len(data) == 10

    def test_deterministic_with_seed(self):
        a = generate_dataset(SyntheticConfig(), 5,
                             np.random.default_rng(42))
        b = generate_dataset(SyntheticConfig(), 5,
                             np.random.default_rng(42))
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_labels_in_range(self, rng):
        config = SyntheticConfig(num_classes=6)
        data = generate_dataset(config, 50, rng)
        assert data.labels.min() >= 0
        assert data.labels.max() < 6

    def test_object_sizes_vary(self, rng):
        """Image-adaptive pruning depends on variable object size."""
        config = SyntheticConfig(object_scale_range=(0.2, 0.7))
        data = generate_dataset(config, 40, rng)
        fractions = data.object_fractions
        assert fractions.std() > 0.03
        assert fractions.min() > 0.0

    def test_object_pixels_brighter_than_background(self, rng):
        config = SyntheticConfig(noise_std=0.01)
        data = generate_dataset(config, 10, rng)
        for i in range(10):
            mask = data.masks[i].astype(bool)
            obj = np.abs(data.images[i][:, mask]).mean()
            bg = np.abs(data.images[i][:, ~mask]).mean()
            assert obj > bg

    def test_class_capacity_limit(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_classes=NUM_SHAPES * NUM_COLORS + 1)

    def test_scale_range_validation(self):
        with pytest.raises(ValueError):
            SyntheticConfig(object_scale_range=(0.8, 0.2))


class TestSplit:
    def test_partition_sizes(self, rng):
        data = generate_dataset(SyntheticConfig(), 20, rng)
        train, val = data.split(train_fraction=0.75)
        assert len(train) == 15
        assert len(val) == 5

    def test_no_overlap(self, rng):
        data = generate_dataset(SyntheticConfig(), 20, rng)
        data_ids = {img.tobytes() for img in data.images}
        train, val = data.split()
        split_ids = ({img.tobytes() for img in train.images}
                     | {img.tobytes() for img in val.images})
        assert split_ids == data_ids


class TestPatchFraction:
    def test_full_coverage(self):
        masks = np.ones((2, 8, 8))
        fractions = patch_object_fraction(masks, patch_size=4)
        assert fractions.shape == (2, 4)
        assert np.allclose(fractions, 1.0)

    def test_partial_patch(self):
        mask = np.zeros((8, 8))
        mask[:2, :2] = 1.0    # quarter of patch (0, 0)
        fractions = patch_object_fraction(mask, patch_size=4)
        assert fractions[0] == pytest.approx(0.25)
        assert np.allclose(fractions[1:], 0.0)

    def test_single_mask_returns_1d(self):
        fractions = patch_object_fraction(np.zeros((8, 8)), 4)
        assert fractions.shape == (4,)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            patch_object_fraction(np.zeros((10, 10)), 4)

    def test_fractions_sum_matches_total(self, rng):
        config = SyntheticConfig(image_size=32)
        data = generate_dataset(config, 5, rng)
        fractions = patch_object_fraction(data.masks, 8)
        per_image = fractions.mean(axis=1)
        assert np.allclose(per_image, data.object_fractions)
