"""Unit tests for differentiable functional ops."""

import numpy as np
import pytest
from scipy import special

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor

from tests.conftest import finite_difference


def gradcheck(build, x0, atol=1e-5):
    x = Tensor(x0.copy(), requires_grad=True)
    build(x).backward()
    numeric = finite_difference(lambda v: float(build(Tensor(v)).data), x0)
    assert np.allclose(x.grad, numeric, atol=atol)


class TestActivations:
    def test_erf_matches_scipy(self, rng):
        x = rng.normal(size=(10,))
        assert np.allclose(F.erf(Tensor(x)).data, special.erf(x))

    def test_gelu_values(self):
        x = np.array([-3.0, -1.0, 0.0, 1.0, 3.0])
        expected = 0.5 * x * (1 + special.erf(x / np.sqrt(2)))
        assert np.allclose(F.gelu(Tensor(x)).data, expected)

    def test_relu(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        assert np.allclose(out.data, [0.0, 0.0, 2.0])

    def test_hardswish_known_points(self):
        x = np.array([-4.0, -3.0, 0.0, 3.0, 5.0])
        out = F.hardswish(Tensor(x)).data
        assert np.allclose(out, [0.0, 0.0, 0.0, 3.0, 5.0])

    def test_sigmoid_range(self, rng):
        out = F.sigmoid(Tensor(rng.normal(size=(50,)) * 10)).data
        assert np.all((out > 0) & (out < 1))

    @pytest.mark.parametrize("fn", [F.gelu, F.relu, F.sigmoid,
                                    F.hardswish, F.erf])
    def test_gradients(self, fn, rng):
        x0 = rng.normal(size=(8,))
        x0 = x0[np.abs(x0) > 1e-2]      # stay away from relu kink
        x0 = x0[np.abs(np.abs(x0) - 3.0) > 1e-2]  # hardswish kinks
        gradcheck(lambda x: fn(x).sum(), x0)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(4, 7))), axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_stability_large_inputs(self):
        out = F.softmax(Tensor([[1000.0, 1000.0]]))
        assert np.allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_consistency(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        assert np.allclose(F.log_softmax(x).data,
                           np.log(F.softmax(x).data))

    def test_gradient(self, rng):
        gradcheck(lambda x: (F.softmax(x) ** 2).sum(),
                  rng.normal(size=(2, 4)))


class TestLayerNorm:
    def test_normalizes(self, rng):
        x = Tensor(rng.normal(size=(4, 10)) * 5 + 3)
        w = Tensor(np.ones(10))
        b = Tensor(np.zeros(10))
        out = F.layer_norm(x, w, b).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradient(self, rng):
        w = Tensor(rng.normal(size=(4,)))
        b = Tensor(rng.normal(size=(4,)))
        gradcheck(lambda x: (F.layer_norm(x, w, b) ** 2).sum(),
                  rng.normal(size=(3, 4)))


class TestGumbelSoftmax:
    def test_hard_returns_one_hot(self, rng):
        logits = Tensor(rng.normal(size=(6, 3)))
        out = F.gumbel_softmax(logits, hard=True, rng=rng)
        assert np.allclose(out.data.sum(axis=-1), 1.0)
        assert set(np.unique(out.data)).issubset({0.0, 1.0})

    def test_soft_is_distribution(self, rng):
        out = F.gumbel_softmax(Tensor(rng.normal(size=(5, 4))),
                               hard=False, rng=rng)
        assert np.allclose(out.data.sum(axis=-1), 1.0)
        assert np.all(out.data >= 0)

    def test_straight_through_gradient_flows(self, rng):
        logits = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        out = F.gumbel_softmax(logits, hard=True, rng=rng)
        out[..., 0].sum().backward()
        assert logits.grad is not None
        assert np.abs(logits.grad).sum() > 0

    def test_low_temperature_sharpens(self, rng):
        logits = Tensor(np.array([[5.0, -5.0]]))
        out = F.gumbel_softmax(logits, tau=0.1, hard=False,
                               rng=np.random.default_rng(0))
        assert out.data[0, 0] > 0.99


class TestLosses:
    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = F.cross_entropy(logits, np.zeros(4, dtype=int))
        assert np.isclose(loss.item(), np.log(10))

    def test_cross_entropy_perfect(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-6

    def test_cross_entropy_one_hot_targets(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)))
        labels = np.array([0, 2, 3])
        one_hot = F.one_hot(labels, 4)
        a = F.cross_entropy(logits, labels).item()
        b = F.cross_entropy(logits, one_hot).item()
        assert np.isclose(a, b)

    def test_cross_entropy_gradient(self, rng):
        labels = np.array([1, 0])
        gradcheck(lambda x: F.cross_entropy(x, labels),
                  rng.normal(size=(2, 3)))

    def test_kl_zero_when_equal(self, rng):
        logits = rng.normal(size=(4, 5))
        loss = F.kl_divergence(Tensor(logits), logits)
        assert abs(loss.item()) < 1e-10

    def test_kl_positive(self, rng):
        a = Tensor(rng.normal(size=(4, 5)))
        b = rng.normal(size=(4, 5))
        assert F.kl_divergence(a, b).item() > 0

    def test_kl_gradient(self, rng):
        teacher = rng.normal(size=(2, 3))
        gradcheck(lambda x: F.kl_divergence(x, teacher),
                  rng.normal(size=(2, 3)))

    def test_mse(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), Tensor([0.0, 0.0]))
        assert np.isclose(loss.item(), 2.5)

    def test_one_hot_shape(self):
        out = F.one_hot(np.array([[0, 2]]), 3)
        assert out.shape == (1, 2, 3)
        assert out[0, 1, 2] == 1.0
