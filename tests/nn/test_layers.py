"""Unit tests for layers: Linear, LayerNorm, Dropout, Conv2d."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestLinear:
    def test_forward_matches_manual(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        out = layer(Tensor(x))
        expected = x @ layer.weight.data + layer.bias.data
        assert np.allclose(out.data, expected)

    def test_no_bias(self, rng):
        layer = nn.Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_batched_input(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 7, 4))))
        assert out.shape == (2, 7, 3)

    def test_gradients_flow_to_params(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        layer(Tensor(rng.normal(size=(5, 4)))).sum().backward()
        assert layer.weight.grad is not None
        assert np.allclose(layer.bias.grad, 5.0 * np.ones(3))


class TestLayerNorm:
    def test_output_statistics(self, rng):
        layer = nn.LayerNorm(16)
        out = layer(Tensor(rng.normal(size=(4, 16)) * 3 + 1)).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)

    def test_affine_params_trainable(self, rng):
        layer = nn.LayerNorm(8)
        layer(Tensor(rng.normal(size=(2, 8)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestDropout:
    def test_eval_is_identity(self, rng):
        layer = nn.Dropout(0.5, rng=rng)
        layer.eval()
        x = rng.normal(size=(10,))
        assert np.allclose(layer(Tensor(x)).data, x)

    def test_train_scales_kept_units(self, rng):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        layer.train()
        x = np.ones((10000,))
        out = layer(Tensor(x)).data
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)
        assert abs(out.mean() - 1.0) < 0.05

    def test_p_zero_noop(self, rng):
        layer = nn.Dropout(0.0)
        x = rng.normal(size=(5,))
        assert np.allclose(layer(Tensor(x)).data, x)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestActivationsModules:
    @pytest.mark.parametrize("cls", [nn.GELU, nn.ReLU, nn.Hardswish,
                                     nn.Sigmoid, nn.Identity])
    def test_shape_preserved(self, cls, rng):
        x = rng.normal(size=(3, 4))
        assert cls()(Tensor(x)).shape == (3, 4)

    def test_softmax_module(self, rng):
        out = nn.Softmax(axis=-1)(Tensor(rng.normal(size=(2, 5))))
        assert np.allclose(out.data.sum(axis=-1), 1.0)


def _naive_conv2d(x, weight, kh, kw, stride, padding, out_ch):
    """Direct convolution loop for cross-checking im2col."""
    batch, channels, height, width = x.shape
    ph, pw = padding
    sh, sw = stride
    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    out_h = (height + 2 * ph - kh) // sh + 1
    out_w = (width + 2 * pw - kw) // sw + 1
    out = np.zeros((batch, out_ch, out_h, out_w))
    w = weight.reshape(channels, kh, kw, out_ch)
    for b in range(batch):
        for oc in range(out_ch):
            for i in range(out_h):
                for j in range(out_w):
                    patch = padded[b, :, i * sh:i * sh + kh,
                                   j * sw:j * sw + kw]
                    out[b, oc, i, j] = (patch * w[..., oc]).sum()
    return out


class TestConv2d:
    def test_matches_naive(self, rng):
        conv = nn.Conv2d(2, 3, kernel_size=3, stride=1, padding=1,
                         bias=False, rng=rng)
        x = rng.normal(size=(2, 2, 6, 6))
        out = conv(Tensor(x)).data
        expected = _naive_conv2d(x, conv.weight.data, 3, 3, (1, 1),
                                 (1, 1), 3)
        assert np.allclose(out, expected)

    def test_stride_and_shape(self, rng):
        conv = nn.Conv2d(3, 4, kernel_size=2, stride=2, rng=rng)
        out = conv(Tensor(rng.normal(size=(1, 3, 8, 8))))
        assert out.shape == (1, 4, 4, 4)

    def test_gradient_flows(self, rng):
        conv = nn.Conv2d(1, 2, kernel_size=3, rng=rng)
        conv(Tensor(rng.normal(size=(1, 1, 5, 5)))).sum().backward()
        assert conv.weight.grad is not None
        assert conv.bias.grad is not None
