"""Tests for checkpoint save/load."""

import numpy as np
import pytest

from repro import nn


class SmallNet(nn.Module):
    def __init__(self, seed=0):
        super().__init__()
        self.fc = nn.Linear(3, 2, rng=np.random.default_rng(seed))

    def forward(self, x):
        return self.fc(x)


class TestCheckpoints:
    def test_roundtrip(self, tmp_path):
        a = SmallNet(seed=1)
        b = SmallNet(seed=2)
        path = str(tmp_path / "model.npz")
        nn.save_checkpoint(path, a, metadata={"epoch": 3})
        metadata = nn.load_into(path, b)
        assert metadata == {"epoch": 3}
        assert np.allclose(a.fc.weight.data, b.fc.weight.data)
        assert np.allclose(a.fc.bias.data, b.fc.bias.data)

    def test_metadata_optional(self, tmp_path):
        path = str(tmp_path / "m.npz")
        nn.save_checkpoint(path, SmallNet())
        state, metadata = nn.load_checkpoint(path)
        assert metadata == {}
        assert set(state) == {"fc.weight", "fc.bias"}

    def test_creates_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "m.npz")
        nn.save_checkpoint(path, SmallNet())
        state, _ = nn.load_checkpoint(path)
        assert "fc.weight" in state

    def test_atomic_overwrite(self, tmp_path):
        path = str(tmp_path / "m.npz")
        first = SmallNet(seed=1)
        second = SmallNet(seed=2)
        nn.save_checkpoint(path, first)
        nn.save_checkpoint(path, second)
        state, _ = nn.load_checkpoint(path)
        assert np.allclose(state["fc.weight"], second.fc.weight.data)

    def test_metadata_json_types(self, tmp_path):
        path = str(tmp_path / "m.npz")
        meta = {"keep_ratios": [0.7, 0.5], "stage": "final",
                "latency_ms": 3.5}
        nn.save_checkpoint(path, SmallNet(), metadata=meta)
        _, loaded = nn.load_checkpoint(path)
        assert loaded == meta

    def test_vit_roundtrip(self, tmp_path, tiny_backbone, tiny_config):
        from repro.vit import VisionTransformer
        path = str(tmp_path / "vit.npz")
        nn.save_checkpoint(path, tiny_backbone)
        fresh = VisionTransformer(tiny_config,
                                  rng=np.random.default_rng(99))
        nn.load_into(path, fresh)
        images = np.random.default_rng(0).normal(size=(2, 3, 16, 16))
        with nn.no_grad():
            a = tiny_backbone(images).data
            b = fresh(images).data
        assert np.allclose(a, b)
