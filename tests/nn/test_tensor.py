"""Unit tests for the autodiff Tensor: forward semantics + exact grads."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor

from tests.conftest import finite_difference


def gradcheck(build, x0, atol=1e-5):
    """Compare autodiff gradient with central finite differences."""
    x = Tensor(x0.copy(), requires_grad=True)
    out = build(x)
    out.backward()
    numeric = finite_difference(lambda v: float(build(Tensor(v)).data),
                                x0)
    assert np.allclose(x.grad, numeric, atol=atol), (
        f"max err {np.abs(x.grad - numeric).max()}")


class TestForward:
    def test_add_broadcast(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        b = Tensor(rng.normal(size=(4,)))
        assert np.allclose((a + b).data, a.data + b.data)

    def test_scalar_ops(self):
        t = Tensor([1.0, 2.0])
        assert np.allclose((2.0 * t + 1.0).data, [3.0, 5.0])
        assert np.allclose((1.0 - t).data, [0.0, -1.0])
        assert np.allclose((1.0 / t).data, [1.0, 0.5])

    def test_matmul_shapes(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)))
        b = Tensor(rng.normal(size=(4, 5)))
        assert (a @ b).shape == (2, 3, 5)

    def test_matmul_vector_cases(self, rng):
        a = rng.normal(size=4)
        m = rng.normal(size=(4, 3))
        assert np.allclose((Tensor(a) @ Tensor(m)).data, a @ m)
        assert np.allclose((Tensor(m.T) @ Tensor(a)).data, m.T @ a)
        assert np.isclose(float((Tensor(a) @ Tensor(a)).data), a @ a)

    def test_reshape_transpose(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)))
        assert x.reshape(6, 4).shape == (6, 4)
        assert x.transpose(2, 0, 1).shape == (4, 2, 3)
        assert x.swapaxes(0, 2).shape == (4, 3, 2)
        assert x.T.shape == (4, 3, 2)

    def test_getitem(self, rng):
        x = Tensor(rng.normal(size=(5, 4)))
        assert x[1:3].shape == (2, 4)
        assert x[:, 0].shape == (5,)

    def test_concat_stack(self, rng):
        a = Tensor(rng.normal(size=(2, 3)))
        b = Tensor(rng.normal(size=(2, 3)))
        assert Tensor.concatenate([a, b], axis=0).shape == (4, 3)
        assert Tensor.stack([a, b], axis=0).shape == (2, 2, 3)

    def test_reductions(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        assert np.isclose(float(x.sum().data), x.data.sum())
        assert np.allclose(x.mean(axis=0).data, x.data.mean(axis=0))
        assert np.allclose(x.var(axis=1).data, x.data.var(axis=1))
        assert np.allclose(x.max(axis=1).data, x.data.max(axis=1))

    def test_comparisons_plain_arrays(self):
        x = Tensor([1.0, 2.0, 3.0])
        assert (x > 1.5).tolist() == [False, True, True]
        assert (x <= 2.0).tolist() == [True, True, False]

    def test_where(self, rng):
        x = Tensor(rng.normal(size=(4,)))
        y = Tensor(np.zeros(4))
        cond = x.data > 0
        out = x.where(cond, y)
        assert np.allclose(out.data, np.where(cond, x.data, 0.0))

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2.0).detach()
        z = y * 3.0
        assert not z.requires_grad

    def test_repr_and_item(self):
        t = Tensor(3.0, requires_grad=True)
        assert "requires_grad" in repr(t)
        assert t.item() == 3.0


class TestBackward:
    def test_add(self, rng):
        gradcheck(lambda x: (x + x * 2.0).sum(), rng.normal(size=(3, 2)))

    def test_mul_broadcast(self, rng):
        w = Tensor(rng.normal(size=(4,)), requires_grad=True)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        (x * w).sum().backward()
        assert np.allclose(w.grad, x.data.sum(axis=0))
        assert np.allclose(x.grad, np.broadcast_to(w.data, (3, 4)))

    def test_div(self, rng):
        gradcheck(lambda x: (x / (x * x + 2.0)).sum(),
                  rng.normal(size=(4,)))

    def test_pow(self, rng):
        gradcheck(lambda x: (x ** 3).sum(), rng.normal(size=(3,)))

    def test_matmul(self, rng):
        a0 = rng.normal(size=(3, 4))
        b = Tensor(rng.normal(size=(4, 2)))
        gradcheck(lambda x: (x @ b).sum(), a0)

    def test_batched_matmul(self, rng):
        b = Tensor(rng.normal(size=(2, 4, 3)))
        gradcheck(lambda x: (x @ b).sum(), rng.normal(size=(2, 5, 4)))

    def test_matmul_broadcast_weight_grad(self, rng):
        w = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        x = Tensor(rng.normal(size=(2, 5, 4)))
        (x @ w).sum().backward()
        expected = x.data.reshape(-1, 4).T @ np.ones((10, 3))
        assert np.allclose(w.grad, expected)

    def test_exp_log_sqrt_tanh(self, rng):
        x0 = np.abs(rng.normal(size=(4,))) + 0.5
        gradcheck(lambda x: x.exp().sum(), x0)
        gradcheck(lambda x: x.log().sum(), x0)
        gradcheck(lambda x: x.sqrt().sum(), x0)
        gradcheck(lambda x: x.tanh().sum(), x0)

    def test_clip_abs(self, rng):
        x0 = rng.normal(size=(6,)) * 2
        x0 = x0[np.abs(np.abs(x0) - 1.0) > 1e-3]  # keep off the kink
        gradcheck(lambda x: x.clip(-1.0, 1.0).sum(), x0)
        gradcheck(lambda x: x.abs().sum(), x0)

    def test_reductions_grad(self, rng):
        gradcheck(lambda x: x.mean(), rng.normal(size=(3, 4)))
        gradcheck(lambda x: x.var(axis=1).sum(), rng.normal(size=(3, 4)))
        gradcheck(lambda x: x.sum(axis=0, keepdims=True).sum(),
                  rng.normal(size=(3, 4)))

    def test_max_grad_routes_to_argmax(self):
        x = Tensor([[1.0, 5.0], [7.0, 2.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0, 1], [1, 0]])

    def test_getitem_grad(self, rng):
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        x[1:4].sum().backward()
        expected = np.zeros((5, 3))
        expected[1:4] = 1.0
        assert np.allclose(x.grad, expected)

    def test_concat_grad(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=0)
        (out * 2.0).sum().backward()
        assert np.allclose(a.grad, 2.0 * np.ones((2, 3)))
        assert np.allclose(b.grad, 2.0 * np.ones((4, 3)))

    def test_grad_accumulates_across_backward(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        (x * 3.0).backward()
        assert np.allclose(x.grad, [5.0])

    def test_diamond_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0
        z = y + y * y
        z.backward()
        # dz/dx = 3 + 2*y*3 = 3 + 36 = 39
        assert np.allclose(x.grad, [39.0])

    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with nn.no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert nn.is_grad_enabled()

    def test_transpose_reshape_grad(self, rng):
        gradcheck(lambda x: (x.transpose(1, 0).reshape(2, 6) * 3.0).sum(),
                  rng.normal(size=(4, 3)))


class TestErrors:
    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_load_into_tensor_from_tensor(self):
        t = Tensor(Tensor([1.0, 2.0]))
        assert t.shape == (2,)
