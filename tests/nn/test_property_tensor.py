"""Property-based tests (hypothesis) for the autodiff engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from tests.conftest import finite_difference

SHAPES = st.sampled_from([(3,), (2, 3), (4, 1), (2, 3, 2)])


def arrays(shape):
    return hnp.arrays(np.float64, shape,
                      elements=st.floats(-3.0, 3.0, allow_nan=False))


@st.composite
def tensor_pair(draw):
    shape = draw(SHAPES)
    return draw(arrays(shape)), draw(arrays(shape))


class TestAlgebraicProperties:
    @given(tensor_pair())
    @settings(max_examples=30, deadline=None)
    def test_add_commutes(self, pair):
        a, b = pair
        assert np.allclose((Tensor(a) + Tensor(b)).data,
                           (Tensor(b) + Tensor(a)).data)

    @given(tensor_pair())
    @settings(max_examples=30, deadline=None)
    def test_sub_add_inverse(self, pair):
        a, b = pair
        out = (Tensor(a) - Tensor(b)) + Tensor(b)
        assert np.allclose(out.data, a, atol=1e-12)

    @given(arrays((3, 4)))
    @settings(max_examples=30, deadline=None)
    def test_double_transpose_identity(self, a):
        assert np.allclose(Tensor(a).T.T.data, a)

    @given(arrays((2, 3)))
    @settings(max_examples=30, deadline=None)
    def test_sum_equals_numpy(self, a):
        assert np.isclose(float(Tensor(a).sum().data), a.sum())

    @given(arrays((4, 3)))
    @settings(max_examples=30, deadline=None)
    def test_softmax_simplex(self, a):
        out = F.softmax(Tensor(a), axis=-1).data
        assert np.all(out >= 0)
        assert np.allclose(out.sum(axis=-1), 1.0)

    @given(arrays((4, 3)), st.floats(0.1, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_softmax_shift_invariance(self, a, shift):
        base = F.softmax(Tensor(a)).data
        shifted = F.softmax(Tensor(a + shift)).data
        assert np.allclose(base, shifted, atol=1e-10)


class TestGradientProperties:
    @given(arrays((3, 2)))
    @settings(max_examples=15, deadline=None)
    def test_elementwise_chain_grad(self, a):
        def build(x):
            return (x.tanh() * x + x.exp() * 0.1).sum()

        x = Tensor(a.copy(), requires_grad=True)
        build(x).backward()
        numeric = finite_difference(
            lambda v: float(build(Tensor(v)).data), a)
        assert np.allclose(x.grad, numeric, atol=1e-4)

    @given(arrays((2, 3)))
    @settings(max_examples=15, deadline=None)
    def test_matmul_grad(self, a):
        w = np.linspace(-1, 1, 6).reshape(3, 2)

        def build(x):
            return ((x @ Tensor(w)) ** 2).sum()

        x = Tensor(a.copy(), requires_grad=True)
        build(x).backward()
        numeric = finite_difference(
            lambda v: float(build(Tensor(v)).data), a)
        assert np.allclose(x.grad, numeric, atol=1e-4)

    @given(arrays((4,)))
    @settings(max_examples=15, deadline=None)
    def test_gradient_linearity(self, a):
        """grad of (2f) equals 2 * grad of f."""
        x1 = Tensor(a.copy(), requires_grad=True)
        (x1.tanh().sum() * 2.0).backward()
        x2 = Tensor(a.copy(), requires_grad=True)
        x2.tanh().sum().backward()
        assert np.allclose(x1.grad, 2.0 * x2.grad)
