"""Unit tests for Module/Parameter containers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TwoLayer(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 8, rng=np.random.default_rng(0))
        self.fc2 = nn.Linear(8, 2, rng=np.random.default_rng(1))
        self.drop = nn.Dropout(0.5, rng=np.random.default_rng(2))

    def forward(self, x):
        return self.fc2(self.drop(self.fc1(x)))


class TestRegistration:
    def test_named_parameters(self):
        model = TwoLayer()
        names = dict(model.named_parameters())
        assert set(names) == {"fc1.weight", "fc1.bias",
                              "fc2.weight", "fc2.bias"}

    def test_num_parameters(self):
        model = TwoLayer()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_named_modules(self):
        model = TwoLayer()
        names = [name for name, _ in model.named_modules()]
        assert "" in names and "fc1" in names and "drop" in names

    def test_children(self):
        model = TwoLayer()
        assert len(list(model.children())) == 3


class TestModes:
    def test_train_eval_propagates(self):
        model = TwoLayer()
        model.eval()
        assert not model.training and not model.drop.training
        model.train()
        assert model.training and model.drop.training

    def test_freeze_unfreeze(self):
        model = TwoLayer()
        model.freeze()
        assert all(not p.requires_grad for p in model.parameters())
        model.unfreeze()
        assert all(p.requires_grad for p in model.parameters())

    def test_zero_grad(self):
        model = TwoLayer()
        model.eval()
        out = model(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self):
        a = TwoLayer()
        b = TwoLayer()
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(),
                                    b.named_parameters()):
            assert np.allclose(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        model = TwoLayer()
        state = model.state_dict()
        state["fc1.weight"][:] = 0.0
        assert not np.allclose(model.fc1.weight.data, 0.0)

    def test_missing_key_raises(self):
        model = TwoLayer()
        state = model.state_dict()
        del state["fc1.bias"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = TwoLayer()
        state = model.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestContainers:
    def test_sequential_order(self):
        seq = nn.Sequential(nn.Linear(3, 5), nn.ReLU(), nn.Linear(5, 2))
        out = seq(Tensor(np.ones((1, 3))))
        assert out.shape == (1, 2)
        assert len(seq) == 3
        assert isinstance(seq[1], nn.ReLU)

    def test_sequential_registers_params(self):
        seq = nn.Sequential(nn.Linear(3, 5), nn.Linear(5, 2))
        assert len(list(seq.parameters())) == 4

    def test_module_list(self):
        layers = nn.ModuleList([nn.Linear(2, 2) for _ in range(3)])
        assert len(layers) == 3
        layers.append(nn.Linear(2, 2))
        assert len(layers) == 4
        assert len(list(layers.parameters())) == 8
        assert isinstance(layers[0], nn.Linear)
        assert len(layers[1:3]) == 2
