"""Unit tests for optimizers and the learning-rate schedule."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter


def quadratic_loss(param, target):
    diff = param - nn.Tensor(target)
    return (diff * diff).sum()


def run_steps(optimizer_cls, steps=200, **kwargs):
    target = np.array([3.0, -2.0, 0.5])
    param = Parameter(np.zeros(3))
    optimizer = optimizer_cls([param], **kwargs)
    for _ in range(steps):
        loss = quadratic_loss(param, target)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return param.data, target


class TestSGD:
    def test_converges(self):
        value, target = run_steps(nn.SGD, lr=0.1)
        assert np.allclose(value, target, atol=1e-3)

    def test_momentum_converges(self):
        value, target = run_steps(nn.SGD, lr=0.05, momentum=0.9)
        assert np.allclose(value, target, atol=1e-3)

    def test_weight_decay_shrinks(self):
        param = Parameter(np.array([10.0]))
        opt = nn.SGD([param], lr=0.1, weight_decay=1.0)
        loss = (param * 0.0).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert param.data[0] < 10.0

    def test_skips_frozen_params(self):
        param = Parameter(np.array([1.0]))
        opt = nn.SGD([param], lr=0.1)
        loss = (param * 2.0).sum()
        loss.backward()
        param.requires_grad = False
        opt.step()
        assert param.data[0] == 1.0


class TestAdam:
    def test_converges(self):
        value, target = run_steps(nn.Adam, lr=0.1)
        assert np.allclose(value, target, atol=1e-2)

    def test_adamw_decoupled_decay(self):
        # With zero gradient, AdamW still decays weights; Adam does not.
        p1 = Parameter(np.array([5.0]))
        p2 = Parameter(np.array([5.0]))
        adam = nn.Adam([p1], lr=0.1, weight_decay=0.0)
        adamw = nn.AdamW([p2], lr=0.1, weight_decay=0.1)
        for param, opt in ((p1, adam), (p2, adamw)):
            param.grad = np.zeros(1)
            opt.step()
        assert p1.data[0] == 5.0
        assert p2.data[0] < 5.0

    def test_adamw_restores_decay_value(self):
        p = Parameter(np.array([1.0]))
        opt = nn.AdamW([p], lr=0.1, weight_decay=0.3)
        p.grad = np.ones(1)
        opt.step()
        assert opt.weight_decay == 0.3


class TestSchedule:
    def test_warmup_then_decay(self):
        param = Parameter(np.zeros(1))
        opt = nn.SGD([param], lr=1.0)
        sched = nn.CosineSchedule(opt, base_lr=1.0, total_steps=100,
                                  warmup_steps=10)
        lrs = [sched.step() for _ in range(100)]
        assert lrs[0] < lrs[9]                # warming up
        assert np.isclose(max(lrs), 1.0, atol=0.01)
        assert lrs[-1] < 0.01                 # decayed to ~0

    def test_min_lr_floor(self):
        param = Parameter(np.zeros(1))
        opt = nn.SGD([param], lr=1.0)
        sched = nn.CosineSchedule(opt, base_lr=1.0, total_steps=10,
                                  min_lr=0.1)
        for _ in range(20):
            lr = sched.step()
        assert lr >= 0.1 - 1e-9

    def test_invalid_total_steps(self):
        param = Parameter(np.zeros(1))
        opt = nn.SGD([param], lr=1.0)
        with pytest.raises(ValueError):
            nn.CosineSchedule(opt, 1.0, total_steps=0)


class TestClipGradNorm:
    def test_clips_to_max(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = nn.clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.isclose(np.linalg.norm(p.grad), 1.0)

    def test_no_clip_below_max(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])
        nn.clip_grad_norm([p], max_norm=1.0)
        assert np.allclose(p.grad, [0.3, 0.4])

    def test_empty_optimizer_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)
