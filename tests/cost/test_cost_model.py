"""Unit tests for the unified batch-aware cost model.

The one invariant everything downstream leans on: a ZERO-overhead
instance prices exactly like the legacy inline arithmetic
(``n * per_image``), so scheduler flushes, router feasibility, and
bucket plans are bit-identical to the pre-CostModel code under it;
overheads only ever ADD (and amortize with batch size).
"""

import numpy as np
import pytest

from repro.core.latency import (LatencySparsityTable,
                                latency_for_keep_ratios,
                                latency_from_stage_counts,
                                paper_latency_table)
from repro.cost import BatchCost, BatchPlan, CostModel, paper_cost_model

TABLE = LatencySparsityTable({0.5: 0.636, 0.7: 0.764, 1.0: 1.034})


def make_model(batch_overhead=0.0, bucket_overhead=0.0, **kwargs):
    return CostModel(TABLE, num_patches=196,
                     batch_overhead_ms=batch_overhead,
                     bucket_overhead_ms=bucket_overhead, **kwargs)


class TestBatchPlanAndCost:
    def test_batch_cost_terms(self):
        cost = BatchCost(overhead_ms=2.0, marginal_ms=6.0, num_images=3)
        assert cost.total_ms == 8.0
        assert cost.amortized_image_ms == pytest.approx(8.0 / 3)
        empty = BatchCost(overhead_ms=0.0, marginal_ms=0.0, num_images=0)
        assert empty.total_ms == 0.0
        assert empty.amortized_image_ms == 0.0

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            BatchPlan(num_images=-1, per_image_ms=1.0)
        with pytest.raises(ValueError):
            BatchPlan(num_images=1, per_image_ms=-1.0)
        with pytest.raises(ValueError):
            BatchPlan(num_images=1, per_image_ms=1.0, num_batches=0)
        with pytest.raises(ValueError):
            BatchPlan(num_images=1, per_image_ms=1.0, num_batches=-1)
        BatchPlan(num_images=0, per_image_ms=1.0, num_batches=0)  # ok


class TestCostModelValidation:
    def test_rejects_bad_arguments(self):
        with pytest.raises(TypeError):
            CostModel({0.5: 1.0}, num_patches=196)
        with pytest.raises(ValueError):
            CostModel(TABLE, num_patches=0)
        with pytest.raises(ValueError):
            CostModel(TABLE, num_patches=196, extra_tokens=-1)
        with pytest.raises(ValueError):
            CostModel(TABLE, num_patches=196, batch_overhead_ms=-1.0)
        with pytest.raises(ValueError):
            CostModel(TABLE, num_patches=196, bucket_overhead_ms=-0.1)
        with pytest.raises(TypeError):
            make_model().estimate("not a plan")
        with pytest.raises(ValueError):
            make_model().bucket_ms(10, -1)

    def test_repr_mentions_overheads(self):
        text = repr(make_model(batch_overhead=1.5, bucket_overhead=0.25))
        assert "1.5" in text and "0.25" in text


class TestZeroOverheadEquivalence:
    """The degenerate instance reproduces the legacy numbers exactly."""

    def test_estimate_is_n_times_per_image(self):
        model = CostModel.zero_overhead(TABLE, num_patches=196)
        assert model.is_zero_overhead
        for n in (0, 1, 7, 64):
            cost = model.estimate(BatchPlan(
                num_images=n, per_image_ms=1.034,
                num_batches=max(1, (n + 7) // 8) if n else 0))
            assert cost.total_ms == n * 1.034       # exact, not approx
            assert cost.overhead_ms == 0.0

    def test_image_ms_delegates_to_eq19(self):
        model = make_model()
        expected = latency_for_keep_ratios(TABLE, depth=12,
                                           selector_blocks=[3, 6, 9],
                                           keep_ratios=[0.7, 0.7, 0.7])
        assert model.image_ms(12, [3, 6, 9], [0.7, 0.7, 0.7]) == expected

    def test_image_ms_from_counts_delegates_to_eq18(self):
        model = make_model()
        counts = [np.array([150.0, 99.0]), np.array([80.0, 50.0])]
        expected = latency_from_stage_counts(
            TABLE, depth=12, selector_blocks=[3, 6],
            tokens_per_stage=counts, num_patches=196, extra=1)
        np.testing.assert_array_equal(
            model.image_ms_from_counts(12, [3, 6], counts), expected)

    def test_paper_cost_model_matches_table4(self):
        model = paper_cost_model("DeiT-T")
        assert model.is_zero_overhead
        assert model.num_patches == 196
        assert model.table.items() == paper_latency_table("DeiT-T").items()
        with pytest.raises(KeyError):
            paper_cost_model("ViT-H")


class TestOverheadPricing:
    def test_overhead_paid_per_batch(self):
        model = make_model(batch_overhead=5.0)
        one = model.estimate(BatchPlan(4, 1.0, num_batches=1))
        two = model.estimate(BatchPlan(4, 1.0, num_batches=2))
        assert one.total_ms == pytest.approx(9.0)
        assert two.total_ms == pytest.approx(14.0)

    def test_batch_ms_shorthand(self):
        model = make_model(batch_overhead=5.0)
        assert model.batch_ms(4, 1.0) == pytest.approx(9.0)
        assert model.batch_ms(0, 1.0) == 0.0

    def test_amortization_improves_with_batch(self):
        model = make_model(batch_overhead=5.0)
        costs = [model.estimate(BatchPlan(n, 1.0)).amortized_image_ms
                 for n in (1, 2, 8, 64)]
        assert costs == sorted(costs, reverse=True)
        assert costs[-1] == pytest.approx(1.0 + 5.0 / 64)

    def test_empty_batch_costs_nothing(self):
        model = make_model(batch_overhead=5.0, bucket_overhead=1.0)
        assert model.estimate(BatchPlan(0, 1.0, num_batches=0)).total_ms == 0
        assert model.bucket_ms(100, 0) == 0.0


class TestBucketPricing:
    def test_block_ms_maps_lengths_to_ratios(self):
        model = make_model()
        # 197 tokens = CLS + all 196 patches -> ratio 1.0.
        assert model.block_ms(197) == TABLE.latency(1.0)
        assert model.block_ms(99) == TABLE.latency(98 / 196)
        # Below the table floor: clipped, like every Eq. 18 lookup.
        assert model.block_ms(3) == TABLE.latency(0.5)

    def test_bucket_ms_prices_padded_length(self):
        model = make_model(bucket_overhead=0.5)
        padded = model.bucket_ms(197, 3)
        assert padded == pytest.approx(0.5 + 3 * TABLE.latency(1.0))
        # Members are priced at the PADDED length, not their own.
        assert model.bucket_ms(197, 3) > model.bucket_ms(99, 3)

    def test_stage_cost_sums_buckets(self):
        model = make_model(bucket_overhead=0.5)
        total = model.stage_cost_ms([(197, 2), (99, 4)])
        assert total == pytest.approx(model.bucket_ms(197, 2)
                                      + model.bucket_ms(99, 4))
