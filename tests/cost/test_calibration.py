"""Calibration smoke: the simulator-fitted cost model predicts the
batch-aware FPGA simulator within the acceptance bound.

``build_cost_model`` sweeps the simulator over batch sizes and fits
``latency(B) = overhead + B * marginal`` per keep ratio; these tests
build it for the tiny test config and assert the fit's prediction error
stays within 10% of directly simulated batch latency across batch sizes
1..64 (the ISSUE acceptance bound), that the fitted overheads are real
(positive: weight loads amortize), and that the fitted marginal table
keeps the Eq. 18 monotonicity contract.
"""

import numpy as np
import pytest

from repro.hardware.latency_table import (DEFAULT_BATCH_SIZES,
                                          block_latency_ms,
                                          build_cost_model,
                                          build_latency_table,
                                          cost_model_prediction_error,
                                          simulated_model_batch_ms)


@pytest.fixture(scope="module")
def cost_model(tiny_config):
    return build_cost_model(tiny_config)


class TestCalibrationSmoke:
    def test_prediction_error_within_10_percent(self, tiny_config,
                                                cost_model):
        """Acceptance bound: within 10% across batch sizes 1-64."""
        errors = cost_model_prediction_error(
            tiny_config, cost_model, batch_sizes=range(1, 65))
        assert errors["max"] <= 0.10
        assert errors["mean"] <= 0.02

    def test_whole_model_batch_prediction(self, tiny_config, cost_model):
        """depth x per-bucket overhead + B x Eq. 19 marginal tracks the
        directly simulated whole-model batch latency."""
        selector_blocks, keep_ratios = [2], [0.8]
        per_image = cost_model.image_ms(tiny_config.depth,
                                        selector_blocks, keep_ratios)
        for batch in (1, 4, 16, 64):
            predicted = (cost_model.batch_overhead_ms
                         + batch * per_image)
            measured = simulated_model_batch_ms(
                tiny_config, batch, selector_blocks=selector_blocks,
                keep_ratios=keep_ratios)
            assert predicted == pytest.approx(measured, rel=0.10)

    def test_overheads_are_positive_and_consistent(self, tiny_config,
                                                   cost_model):
        """Weight loading / pipeline fill really amortizes: a nonzero
        per-launch intercept, scaled by depth for the whole model."""
        assert cost_model.bucket_overhead_ms > 0
        assert cost_model.batch_overhead_ms == pytest.approx(
            tiny_config.depth * cost_model.bucket_overhead_ms)

    def test_marginal_below_single_image_latency(self, tiny_config,
                                                 cost_model):
        """The fitted slope strips the per-launch overhead, so it sits
        below the B=1 measurement (which pays overhead + marginal) --
        the economy of scale the old per-image table could not express."""
        single = build_latency_table(tiny_config)
        for ratio, marginal in cost_model.table.items():
            assert marginal < single.latency(ratio)
            assert marginal > 0

    def test_table_monotone_in_keep_ratio(self, cost_model):
        latencies = [lat for _, lat in cost_model.table.items()]
        assert latencies == sorted(latencies)

    def test_batch_one_matches_legacy_block_latency(self, tiny_config):
        """batch=1 is the paper's Table IV setting: the batch-aware
        simulator collapses to the per-image numbers exactly."""
        for ratio in (0.5, 0.8, 1.0):
            assert block_latency_ms(tiny_config, ratio, batch=1) == (
                block_latency_ms(tiny_config, ratio))

    def test_build_cost_model_validation(self, tiny_config):
        with pytest.raises(ValueError):
            build_cost_model(tiny_config, batch_sizes=(4,))
        with pytest.raises(ValueError):
            build_cost_model(tiny_config, batch_sizes=(0, 8))
        with pytest.raises(ValueError):
            block_latency_ms(tiny_config, 1.0, batch=0)

    def test_simulated_model_batch_validation(self, tiny_config):
        with pytest.raises(ValueError):
            simulated_model_batch_ms(tiny_config, 4, selector_blocks=[1],
                                     keep_ratios=[])

    def test_default_sweep_is_sane(self):
        assert DEFAULT_BATCH_SIZES[0] == 1
        assert DEFAULT_BATCH_SIZES[-1] == 64
        assert list(DEFAULT_BATCH_SIZES) == sorted(DEFAULT_BATCH_SIZES)
