"""Property-based tests (hypothesis) for the online cost estimator.

The ISSUE-8 acceptance invariants, over random planted laws, noise, and
observation schedules: the RLS fit converges to a planted (overhead,
marginal) pair under bounded noise; the wrapper answers with the prior
verbatim below the sample threshold; predictions are always
non-negative and monotone non-decreasing in both batch shape terms
whatever was observed; and a snapshot round-trips bitwise, including
identical future updates.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency import LatencySparsityTable
from repro.cost import (BatchPlan, CostModel, OnlineCostModel,
                        OnlineEstimator)

planted = st.tuples(
    st.floats(0.1, 20.0, allow_nan=False),       # overhead per launch
    st.floats(0.05, 5.0, allow_nan=False))       # marginal per image

observations = st.lists(
    st.tuples(st.integers(1, 4),                 # launches
              st.integers(1, 64),                # images
              st.floats(0.0, 500.0, allow_nan=False)),   # wall ms
    min_size=0, max_size=60)


def make_prior(seed):
    rng = np.random.default_rng(seed)
    grid = (0.5, 0.75, 1.0)
    latencies = np.cumsum(rng.uniform(0.1, 2.0, len(grid)))
    table = LatencySparsityTable(dict(zip(grid, latencies)))
    return CostModel(table, num_patches=196,
                     batch_overhead_ms=float(rng.uniform(0, 10)),
                     bucket_overhead_ms=float(rng.uniform(0, 2)))


@settings(max_examples=40, deadline=None)
@given(law=planted, seed=st.integers(0, 2**32 - 1))
def test_converges_to_planted_law_under_noise(law, seed):
    """Enough varied samples of ``o*b + m*n`` plus small noise recover
    (o, m) to a few percent -- the estimator actually *fits*, it does
    not merely smooth."""
    overhead, marginal = law
    rng = np.random.default_rng(seed)
    est = OnlineEstimator(forgetting=1.0, min_samples=8)
    for _ in range(600):
        launches = int(rng.integers(1, 5))
        images = int(rng.integers(1, 65))
        truth = overhead * launches + marginal * images
        noise = rng.normal(0.0, 0.02 * truth)
        est.observe(images, max(truth + noise, 0.0), launches=launches)
    assert est.confident
    # A coefficient smaller than the other term's noise floor cannot be
    # pinned to a pure relative tolerance (the marginal term dominates
    # the design matrix at 1..64 images, so a small overhead soaks up
    # most of the residual); allow 5% of the law's scale as absolute
    # slack on each.  The joint prediction below stays tight -- that is
    # the quantity serving decisions consume.
    scale = overhead + marginal
    assert est.overhead_ms == pytest.approx(overhead, rel=0.2,
                                            abs=0.05 * scale)
    assert est.marginal_ms == pytest.approx(marginal, rel=0.2,
                                            abs=0.05 * scale)
    prediction = est.predict(40, launches=2)
    truth = overhead * 2 + marginal * 40
    assert prediction == pytest.approx(truth, rel=0.05)


@settings(max_examples=50, deadline=None)
@given(samples=st.integers(0, 7), seed=st.integers(0, 2**32 - 1),
       images=st.integers(1, 64))
def test_prior_fallback_below_threshold(samples, seed, images):
    """Below ``min_samples`` observations every estimate is the prior's
    answer bit-for-bit, however wild the measurements were."""
    prior = make_prior(seed)
    online = OnlineCostModel(prior, min_samples=8).bind("key")
    rng = np.random.default_rng(seed)
    for _ in range(samples):
        online.observe_batch(int(rng.integers(1, 65)),
                             float(rng.uniform(0, 1e4)))
    plan = BatchPlan(num_images=images, per_image_ms=1.25, num_batches=2)
    assert not online.confident()
    assert online.estimate(plan).total_ms == prior.estimate(plan).total_ms
    assert online.bucket_ms(100, images) == prior.bucket_ms(100, images)
    assert online.block_ms(150) == prior.block_ms(150)


@settings(max_examples=60, deadline=None)
@given(history=observations,
       probe=st.tuples(st.integers(0, 3), st.integers(0, 100)))
def test_predictions_non_negative_and_monotone(history, probe):
    """Whatever was observed -- including adversarial walls that drive
    a raw least-squares coefficient negative -- predictions are >= 0
    and monotone non-decreasing in launches and images."""
    est = OnlineEstimator(min_samples=1)
    for launches, images, wall in history:
        est.observe(images, wall, launches=launches)
    launches, images = probe
    base = est.predict(images, launches=launches)
    assert base >= 0.0
    assert est.predict(images + 1, launches=launches) >= base
    assert est.predict(images, launches=launches + 1) >= base


@settings(max_examples=50, deadline=None)
@given(history=observations,
       future=st.tuples(st.integers(1, 4), st.integers(1, 64),
                        st.floats(0.0, 500.0, allow_nan=False)))
def test_snapshot_round_trip_bitwise(history, future):
    """Snapshot/restore reproduces state, predictions, and future
    updates bitwise for any observation history."""
    est = OnlineEstimator()
    for launches, images, wall in history:
        est.observe(images, wall, launches=launches)
    clone = OnlineEstimator.from_snapshot(est.snapshot())
    np.testing.assert_array_equal(clone.theta, est.theta)
    np.testing.assert_array_equal(clone.cov, est.cov)
    assert clone.count == est.count
    assert clone.residual_var == est.residual_var
    assert clone.predict(17, launches=2) == est.predict(17, launches=2)
    launches, images, wall = future
    assert clone.observe(images, wall, launches=launches) == (
        est.observe(images, wall, launches=launches))
    np.testing.assert_array_equal(clone.theta, est.theta)
    np.testing.assert_array_equal(clone.cov, est.cov)
