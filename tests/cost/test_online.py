"""Unit tests for the online cost model (repro.cost.online).

Covers the RLS estimator's fit/confidence/serialization contract and
the OnlineCostModel's behavioral spec: prior fallback below the sample
threshold, learned batch and bucket pricing once confident, per-key
isolation, drift-gated versioning, and worker-rebuild serialization
(pickle and snapshot).  Statistical convergence under noise lives in
test_property_online.py.
"""

import pickle

import numpy as np
import pytest

from repro.cost import (BatchPlan, CostModel, OnlineCostModel,
                        OnlineEstimator, keep_ratio_bucket,
                        paper_cost_model)
from repro.core.latency import LatencySparsityTable


def make_prior(batch_overhead_ms=3.0, bucket_overhead_ms=0.5):
    table = LatencySparsityTable({0.25: 0.5, 0.5: 1.0, 1.0: 2.0})
    return CostModel(table, num_patches=16,
                     batch_overhead_ms=batch_overhead_ms,
                     bucket_overhead_ms=bucket_overhead_ms,
                     name="unit-prior")


def feed_linear(estimator, overhead, marginal, shapes):
    for launches, units in shapes:
        estimator.observe(units, overhead * launches + marginal * units,
                          launches=launches)


class TestOnlineEstimator:
    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineEstimator(forgetting=0.0)
        with pytest.raises(ValueError):
            OnlineEstimator(forgetting=1.5)
        with pytest.raises(ValueError):
            OnlineEstimator(ridge=0.0)
        with pytest.raises(ValueError):
            OnlineEstimator(min_samples=0)
        with pytest.raises(ValueError):
            OnlineEstimator(variance_smoothing=0.0)
        est = OnlineEstimator()
        with pytest.raises(ValueError):
            est.observe(-1, 1.0)
        with pytest.raises(ValueError):
            est.observe(1, -1.0)
        with pytest.raises(ValueError):
            est.predict(-1)

    def test_exact_fit_on_noiseless_line(self):
        est = OnlineEstimator(forgetting=1.0, ridge=1e8, min_samples=2)
        feed_linear(est, 4.0, 0.25,
                    [(1, 1), (1, 8), (2, 16), (1, 32), (3, 48)])
        assert est.overhead_ms == pytest.approx(4.0, rel=1e-3)
        assert est.marginal_ms == pytest.approx(0.25, rel=1e-3)
        assert est.predict(10, launches=2) == pytest.approx(10.5, rel=1e-3)

    def test_confidence_threshold(self):
        est = OnlineEstimator(min_samples=3)
        assert not est.confident
        est.observe(4, 2.0)
        est.observe(8, 4.0)
        assert not est.confident
        est.observe(16, 8.0)
        assert est.confident

    def test_negative_coefficients_clip_to_zero(self):
        est = OnlineEstimator(min_samples=1)
        est.theta = np.array([-5.0, -1.0])
        assert est.overhead_ms == 0.0
        assert est.marginal_ms == 0.0
        assert est.predict(100, launches=7) == 0.0

    def test_variance_tracks_residual_scale(self):
        rng = np.random.default_rng(3)
        noisy = OnlineEstimator()
        quiet = OnlineEstimator()
        for _ in range(100):
            n = int(rng.integers(1, 33))
            truth = 2.0 + 0.5 * n
            noisy.observe(n, truth + rng.normal(0, 2.0))
            quiet.observe(n, truth + rng.normal(0, 0.01))
        assert noisy.variance_ms2 > quiet.variance_ms2

    def test_covariance_trace_capped(self):
        est = OnlineEstimator(max_gain=1e4)
        # Identical shapes leave one direction unexcited; with decay
        # the covariance would grow without bound there.
        for _ in range(2000):
            est.observe(8, 6.0)
        assert float(np.trace(est.cov)) <= 1e4 + 1e-6

    def test_snapshot_round_trip_bitwise(self):
        est = OnlineEstimator()
        feed_linear(est, 3.0, 0.5, [(1, 4), (2, 9), (1, 30)])
        clone = OnlineEstimator.from_snapshot(est.snapshot())
        np.testing.assert_array_equal(clone.theta, est.theta)
        np.testing.assert_array_equal(clone.cov, est.cov)
        assert clone.count == est.count
        assert clone.residual_var == est.residual_var
        assert clone.predict(13, launches=2) == est.predict(13, launches=2)
        # Future updates stay bitwise locked too.
        r1 = est.observe(5, 7.0)
        r2 = clone.observe(5, 7.0)
        assert r1 == r2
        np.testing.assert_array_equal(clone.theta, est.theta)
        np.testing.assert_array_equal(clone.cov, est.cov)

    def test_snapshot_is_a_copy(self):
        est = OnlineEstimator()
        est.observe(4, 2.0)
        snap = est.snapshot()
        est.observe(9, 30.0)
        clone = OnlineEstimator.from_snapshot(snap)
        assert clone.count == 1
        assert clone.count != est.count


class TestOnlineCostModelGating:
    def test_requires_cost_model_prior(self):
        with pytest.raises(TypeError):
            OnlineCostModel(object())

    def test_rejects_double_wrapping(self):
        online = OnlineCostModel(make_prior())
        with pytest.raises(TypeError):
            OnlineCostModel(online)

    def test_is_a_cost_model_with_prior_terms(self):
        prior = make_prior()
        online = OnlineCostModel(prior)
        assert isinstance(online, CostModel)
        assert online.table is prior.table
        assert online.batch_overhead_ms == prior.batch_overhead_ms
        assert online.extra_tokens == prior.extra_tokens

    def test_prior_answers_below_sample_threshold(self):
        prior = make_prior()
        online = OnlineCostModel(prior, min_samples=5).bind("key")
        plan = BatchPlan(num_images=8, per_image_ms=1.5, num_batches=2)
        for _ in range(4):
            online.observe_batch(8, 100.0, num_batches=2)
            cost = online.estimate(plan)
            assert cost.total_ms == prior.estimate(plan).total_ms
            assert not online.confident()
        online.observe_batch(8, 100.0, num_batches=2)
        assert online.confident()
        assert online.estimate(plan).total_ms != prior.estimate(plan).total_ms

    def test_learned_batch_pricing_matches_planted_law(self):
        online = OnlineCostModel(make_prior(), min_samples=4,
                                 forgetting=1.0).bind("k")
        for launches, images in [(1, 2), (1, 8), (2, 20), (1, 32),
                                 (2, 40), (1, 16)]:
            online.observe_batch(images, 5.0 * launches + 0.75 * images,
                                 num_batches=launches)
        cost = online.estimate(BatchPlan(num_images=10, per_image_ms=9.9,
                                         num_batches=2))
        assert cost.total_ms == pytest.approx(2 * 5.0 + 10 * 0.75, rel=1e-3)
        # per_image_ms (the prior's marginal) is ignored once learned.
        assert cost.overhead_ms == pytest.approx(10.0, rel=1e-3)

    def test_empty_plan_prices_zero(self):
        online = OnlineCostModel(make_prior(), min_samples=1).bind("k")
        online.observe_batch(8, 10.0)
        cost = online.estimate(BatchPlan(num_images=0, per_image_ms=1.0,
                                         num_batches=0))
        assert cost.total_ms == 0.0

    def test_degenerate_observations_ignored(self):
        online = OnlineCostModel(make_prior(), min_samples=1).bind("k")
        online.observe_batch(0, 5.0)
        online.observe_bucket(10, 0, 4, 5.0)
        online.observe_bucket(10, 4, 0, 5.0)
        assert online.samples() == (0, 0)

    def test_keys_learn_independently(self):
        online = OnlineCostModel(make_prior(), min_samples=2)
        online.bind("slow")
        for _ in range(3):
            online.observe_batch(8, 80.0)
        online.bind("fast")
        for _ in range(3):
            online.observe_batch(8, 8.0)
        plan = BatchPlan(num_images=8, per_image_ms=1.0)
        fast_ms = online.estimate(plan).total_ms
        online.bind("slow")
        slow_ms = online.estimate(plan).total_ms
        assert slow_ms > 5 * fast_ms
        assert set(online.keys) == {"slow", "fast"}
        assert online.samples("fast") == (3, 0)
        # Rebinding resumes the old estimator rather than refitting.
        online.bind("fast")
        assert online.confident()

    def test_explicit_key_overrides_bound(self):
        online = OnlineCostModel(make_prior(), min_samples=1).bind("a")
        online.observe_batch(4, 40.0, key="b")
        assert online.samples("b") == (1, 0)
        assert online.samples("a") == (0, 0)
        assert not online.confident()
        assert online.confident("b")

    def test_coefficients_inspection(self):
        online = OnlineCostModel(make_prior(), min_samples=2).bind("k")
        assert online.coefficients() is None
        online.observe_batch(8, 10.0)
        online.observe_batch(16, 18.0)
        coeffs = online.coefficients()
        assert coeffs["batch_samples"] == 2
        assert coeffs["batch_confident"]
        assert coeffs["overhead_ms"] >= 0.0
        assert coeffs["marginal_ms"] >= 0.0
        assert not coeffs["bucket_confident"]


class TestOnlineBucketPricing:
    def test_prior_bucket_pricing_until_confident(self):
        prior = make_prior()
        online = OnlineCostModel(prior, min_samples=3).bind("k")
        assert online.block_ms(9) == prior.block_ms(9)
        assert online.bucket_ms(9, 4) == prior.bucket_ms(9, 4)
        assert online.stage_cost_ms([(9, 4), (17, 2)]) == pytest.approx(
            prior.stage_cost_ms([(9, 4), (17, 2)]))

    def test_learned_bucket_pricing_scales_prior_shape(self):
        prior = make_prior()
        online = OnlineCostModel(prior, min_samples=2,
                                 forgetting=1.0).bind("k")
        # Planted law: each block launch costs 0.1 ms + 3x the prior's
        # marginal for the bucket's members.
        for padded, n, blocks in [(9, 4, 2), (17, 2, 3), (13, 8, 2),
                                  (9, 1, 4)]:
            marginal = n * blocks * prior.block_ms(padded)
            online.observe_bucket(padded, n, blocks,
                                  0.1 * blocks + 3.0 * marginal)
        assert online.block_ms(9) == pytest.approx(3.0 * prior.block_ms(9),
                                                   rel=1e-3)
        expected = 0.1 + 3.0 * 4 * prior.block_ms(9)
        assert online.bucket_ms(9, 4) == pytest.approx(expected, rel=1e-3)
        assert online.bucket_ms(9, 0) == 0.0
        with pytest.raises(ValueError):
            online.bucket_ms(9, -1)

    def test_zero_overhead_reflects_learned_fit(self):
        table = LatencySparsityTable({0.5: 1.0, 1.0: 2.0})
        prior = CostModel.zero_overhead(table, num_patches=16)
        online = OnlineCostModel(prior, min_samples=1).bind("k")
        assert online.is_zero_overhead          # prior answers
        online.observe_bucket(9, 4, 2, 5.0)
        assert not online.is_zero_overhead      # learned fit is not free


class TestDriftVersioning:
    def test_version_bumps_on_first_confidence(self):
        online = OnlineCostModel(make_prior(), min_samples=3).bind("k")
        v0 = online.version
        online.observe_batch(8, 10.0)
        online.observe_batch(8, 10.0)
        assert online.version == v0
        online.observe_batch(8, 10.0)
        assert online.version == v0 + 1

    def test_version_stable_under_steady_observations(self):
        online = OnlineCostModel(make_prior(), min_samples=3,
                                 drift_threshold=0.1).bind("k")
        for _ in range(10):
            online.observe_batch(8, 10.0)
        settled = online.version
        for _ in range(200):
            online.observe_batch(8, 10.0)
        assert online.version == settled

    def test_version_bumps_on_significant_drift(self):
        online = OnlineCostModel(make_prior(), min_samples=2,
                                 drift_threshold=0.1).bind("k")
        for _ in range(10):
            online.observe_batch(8, 10.0)
        settled = online.version
        # The workload gets 10x slower: the canonical prediction moves
        # far past the 10% drift threshold.
        for _ in range(50):
            online.observe_batch(8, 100.0)
        assert online.version > settled


class TestSerialization:
    def build_warm(self):
        online = OnlineCostModel(make_prior(), min_samples=2,
                                 forgetting=0.99).bind(
                                     ("fastpath", "float32",
                                      keep_ratio_bucket([0.7])))
        for images in (4, 8, 16, 32):
            online.observe_batch(images, 2.0 + 0.5 * images)
            online.observe_bucket(9, images, 2, 0.2 + 0.1 * images)
        return online

    def test_pickle_preserves_learned_state(self):
        online = self.build_warm()
        clone = pickle.loads(pickle.dumps(online))
        plan = BatchPlan(num_images=12, per_image_ms=1.0, num_batches=1)
        assert clone.estimate(plan).total_ms == online.estimate(plan).total_ms
        assert clone.version == online.version
        assert clone.bound_key == online.bound_key
        assert clone.samples() == online.samples()
        assert clone.bucket_ms(9, 3) == online.bucket_ms(9, 3)

    def test_snapshot_restore_bitwise(self):
        online = self.build_warm()
        restored = OnlineCostModel.from_snapshot(make_prior(),
                                                 online.snapshot())
        plan = BatchPlan(num_images=12, per_image_ms=1.0, num_batches=1)
        assert restored.estimate(plan).total_ms == (
            online.estimate(plan).total_ms)
        assert restored.version == online.version
        # Future updates evolve identically from the restored state.
        online.observe_batch(24, 15.0)
        restored.observe_batch(24, 15.0)
        assert restored.estimate(plan).total_ms == (
            online.estimate(plan).total_ms)
        assert restored.version == online.version


class TestKeepRatioBucket:
    def test_discretizes_to_grid(self):
        assert keep_ratio_bucket([0.7, 0.49]) == (14, 10)
        assert keep_ratio_bucket([0.7001, 0.5001]) == (14, 10)
        assert keep_ratio_bucket([]) == ()
        with pytest.raises(ValueError):
            keep_ratio_bucket([0.5], grid=0)

    def test_paper_model_wraps(self):
        online = OnlineCostModel(paper_cost_model(), min_samples=1)
        plan = BatchPlan(num_images=4, per_image_ms=2.0)
        assert online.estimate(plan).total_ms == 8.0   # zero-overhead prior
