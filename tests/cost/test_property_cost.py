"""Property-based tests (hypothesis) for the batch-aware cost model.

The acceptance-criteria invariants, over random tables, overheads, and
workloads: batch cost is monotone in batch size and padded length, a
zero-overhead instance reproduces the legacy ``n * per_image`` numbers
*exactly* (bit-equal, not approximately), and the cost-aware bucket
planner never produces a plan pricing worse than the pure length-gap
heuristic it replaces (and produces the identical plan under zero
overhead).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency import LatencySparsityTable
from repro.cost import BatchPlan, CostModel
from repro.engine import BucketingPolicy, plan_buckets, plan_cost_ms

RATIO_GRID = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@st.composite
def cost_models(draw, zero_overhead=False):
    steps = draw(st.lists(
        st.floats(0.0, 2.0, allow_nan=False, allow_infinity=False),
        min_size=len(RATIO_GRID), max_size=len(RATIO_GRID)))
    base = draw(st.floats(0.01, 5.0, allow_nan=False))
    latencies = np.cumsum([base] + steps[1:])
    table = LatencySparsityTable(dict(zip(RATIO_GRID, latencies)))
    if zero_overhead:
        return CostModel.zero_overhead(table, num_patches=196)
    return CostModel(
        table, num_patches=196,
        batch_overhead_ms=draw(st.floats(0.0, 20.0, allow_nan=False)),
        bucket_overhead_ms=draw(st.floats(0.0, 5.0, allow_nan=False)))


lengths_strategy = st.lists(st.integers(2, 200), min_size=0, max_size=60)

policy_strategy = st.builds(
    BucketingPolicy,
    allow_padding=st.booleans(),
    pad_limit=st.integers(0, 32),
    max_pad_fraction=st.floats(0.0, 1.0, allow_nan=False),
    min_bucket=st.integers(1, 16),
)


class TestMonotonicity:
    @given(model=cost_models(),
           per_image=st.floats(0.0, 10.0, allow_nan=False),
           sizes=st.lists(st.integers(0, 256), min_size=2, max_size=20),
           chunk=st.integers(1, 64))
    @settings(max_examples=200, deadline=None)
    def test_batch_cost_monotone_in_batch_size(self, model, per_image,
                                               sizes, chunk):
        """More images never price cheaper (chunk overheads included)."""
        costs = []
        for n in sorted(sizes):
            batches = -(-n // chunk)           # ceil; 0 batches for n=0
            costs.append(model.estimate(BatchPlan(
                num_images=n, per_image_ms=per_image,
                num_batches=batches)).total_ms)
        assert all(a <= b + 1e-12 for a, b in zip(costs, costs[1:]))

    @given(model=cost_models(),
           lengths=st.lists(st.integers(1, 197), min_size=2, max_size=20),
           count=st.integers(1, 64))
    @settings(max_examples=200, deadline=None)
    def test_bucket_cost_monotone_in_padded_length(self, model, lengths,
                                                   count):
        """Padding a bucket longer never prices cheaper."""
        costs = [model.bucket_ms(length, count)
                 for length in sorted(lengths)]
        assert all(a <= b + 1e-12 for a, b in zip(costs, costs[1:]))


class TestZeroOverheadExactness:
    @given(model=cost_models(zero_overhead=True),
           per_image=st.floats(0.0, 50.0, allow_nan=False),
           n=st.integers(0, 512), batches=st.integers(1, 16))
    @settings(max_examples=300, deadline=None)
    def test_reproduces_legacy_arithmetic_exactly(self, model, per_image,
                                                  n, batches):
        """total == n * per_image bit-for-bit: the refactor cannot have
        changed any decision made under the old inline pricing."""
        cost = model.estimate(BatchPlan(
            num_images=n, per_image_ms=per_image,
            num_batches=batches if n else 0))
        assert cost.total_ms == per_image * n
        assert cost.overhead_ms == 0.0


class TestCostAwarePlanning:
    @given(model=cost_models(), lengths=lengths_strategy,
           policy=policy_strategy)
    @settings(max_examples=200, deadline=None)
    def test_never_prices_worse_than_heuristic(self, model, lengths,
                                               policy):
        lengths = np.asarray(lengths, dtype=int)
        heuristic = plan_buckets(lengths, policy)
        cost_aware = plan_buckets(lengths, policy, cost_model=model)
        if lengths.size == 0:
            assert cost_aware == []
            return
        assert (plan_cost_ms(cost_aware, model)
                <= plan_cost_ms(heuristic, model) + 1e-9)
        covered = sorted(int(i) for plan in cost_aware
                         for i in plan.indices)
        assert covered == list(range(lengths.size))

    @given(model=cost_models(zero_overhead=True),
           lengths=lengths_strategy, policy=policy_strategy)
    @settings(max_examples=200, deadline=None)
    def test_zero_overhead_keeps_heuristic_decisions(self, model, lengths,
                                                     policy):
        """With nothing to save per bucket, the cost branch can never
        fire: the plan is IDENTICAL to the pure length-gap one."""
        lengths = np.asarray(lengths, dtype=int)
        heuristic = plan_buckets(lengths, policy)
        cost_aware = plan_buckets(lengths, policy, cost_model=model)
        assert len(cost_aware) == len(heuristic)
        for ours, theirs in zip(cost_aware, heuristic):
            assert ours.padded_length == theirs.padded_length
            np.testing.assert_array_equal(ours.indices, theirs.indices)

    @given(lengths=lengths_strategy, policy=policy_strategy,
           model=cost_models())
    @settings(max_examples=100, deadline=None)
    def test_no_padding_policy_is_a_hard_constraint(self, lengths, policy,
                                                    model):
        """allow_padding=False survives any overhead: cost merges are an
        optimization, not a way around the policy's hard switch."""
        policy = BucketingPolicy(allow_padding=False,
                                 pad_limit=policy.pad_limit,
                                 max_pad_fraction=policy.max_pad_fraction,
                                 min_bucket=policy.min_bucket)
        for plan in plan_buckets(lengths, policy, cost_model=model):
            assert not plan.needs_padding
