"""Shared fixtures: tiny trainable models and datasets for fast tests."""

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate_dataset
from repro.vit import VisionTransformer, ViTConfig


TINY_CONFIG = ViTConfig(name="test-tiny", image_size=16, patch_size=4,
                        embed_dim=24, depth=4, num_heads=3, num_classes=4)


@pytest.fixture(scope="session")
def tiny_config():
    return TINY_CONFIG


@pytest.fixture(scope="session")
def tiny_dataset():
    rng = np.random.default_rng(1234)
    config = SyntheticConfig(image_size=16, num_classes=4)
    return generate_dataset(config, 48, rng)


@pytest.fixture(scope="session")
def tiny_backbone(tiny_config):
    rng = np.random.default_rng(7)
    model = VisionTransformer(tiny_config, rng=rng)
    model.eval()
    return model


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


def finite_difference(fn, x, eps=1e-6):
    """Central finite-difference gradient of scalar-valued fn at x."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        hi = fn(x)
        flat[i] = old - eps
        lo = fn(x)
        flat[i] = old
        gflat[i] = (hi - lo) / (2 * eps)
    return grad
